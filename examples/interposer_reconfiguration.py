"""Watch ReSiPI reconfigure the photonic interposer during inference.

Assembles the simulation stack by hand (environment, floorplan, fabric,
ReSiPI controller, engine) so the controller's epoch-by-epoch decisions
stay accessible, runs MobileNetV2, and prints how the number of active
gateways tracked the traffic — the mechanism behind the paper's power
savings on small models.

Run:  python examples/interposer_reconfiguration.py
"""

from repro.config import DEFAULT_PLATFORM
from repro.core.engine import InferenceEngine
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.interposer.photonic.controllers import ReSiPIController
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import KernelMatchMapper
from repro.sim.core import Environment


def main():
    config = DEFAULT_PLATFORM
    workload = extract_workload(zoo.build("MobileNetV2"))

    env = Environment()
    floorplan = build_floorplan(config)
    fabric = PhotonicInterposerFabric(env, config, floorplan)
    controller = ReSiPIController(env, fabric, config)
    mapping = KernelMatchMapper(config, floorplan).map_workload(workload)
    engine = InferenceEngine(env, config, fabric)

    latency = engine.run(mapping)
    print(f"MobileNetV2 on 2.5D-CrossLight-SiPh: {latency * 1e3:.3f} ms, "
          f"{fabric.reconfiguration_count} reconfigurations, "
          f"{fabric.pcmc_energy_j * 1e9:.1f} nJ of PCMC switching energy\n")

    # Down-sample the epoch log for display.
    log = controller.decision_log
    step = max(1, len(log) // 24)
    print(f"{'epoch':>6}{'t(us)':>9}{'mem gw':>8}{'total chiplet gw':>18}")
    print("-" * 42)
    for index in range(0, len(log), step):
        decisions = log[index]
        chiplet_total = sum(
            count for key, count in decisions.items() if key != "mem"
        )
        time_us = (index + 1) * config.resipi_epoch_s * 1e6
        print(f"{index:>6}{time_us:>9.1f}{decisions['mem']:>8}"
              f"{chiplet_total:>18}")

    peak_mem = max(d["mem"] for d in log)
    idle_epochs = sum(1 for d in log if d["mem"] == 1)
    print(f"\npeak memory gateways: {peak_mem} / "
          f"{config.n_memory_write_gateways}")
    print(f"epochs at minimum configuration: {idle_epochs}/{len(log)}")


if __name__ == "__main__":
    main()
