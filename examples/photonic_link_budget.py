"""Tour of the photonic device models and the interposer link budget.

Walks the Section II device stack: microring spectra and weighting,
WDM grid sizing against FSR and crosstalk, PCM coupler states, and the
end-to-end SWMR/SWSR link budgets that set the interposer laser power.

Run:  python examples/photonic_link_budget.py
"""

from repro.config import DEFAULT_PLATFORM
from repro.interposer.photonic.links import (
    swmr_read_budget,
    swsr_write_budget,
)
from repro.interposer.topology import build_floorplan
from repro.photonics import (
    LaserSource,
    MicroringResonator,
    PCMCoupler,
    PCMCState,
    Photodetector,
    WDMGrid,
    max_channels_for_crosstalk,
)


def main():
    ring = MicroringResonator()
    print("Microring resonator (Q = {:.0f}, R = {:.0f} um)".format(
        ring.quality_factor, ring.radius_m * 1e6))
    print(f"  FWHM               : {ring.fwhm_m * 1e9:8.3f} nm")
    print(f"  FSR                : {ring.free_spectral_range_m * 1e9:8.3f} nm")
    print(f"  finesse            : {ring.finesse:8.1f}")
    for weight in (1.0, 0.5, 0.1):
        detuning = ring.detuning_for_weight(weight)
        power = ring.weighting_power_w(weight)
        print(f"  weight {weight:>4.1f} -> detune {detuning * 1e9:6.3f} nm, "
              f"tuning power {power * 1e3:6.3f} mW")
    print()

    grid = WDMGrid(n_channels=DEFAULT_PLATFORM.n_wavelengths)
    print(f"DWDM grid: {grid.n_channels} channels @ "
          f"{grid.channel_spacing_hz / 1e9:.0f} GHz")
    print(f"  span               : {grid.span_m * 1e9:8.2f} nm")
    print(f"  fits in ring FSR   : {grid.fits_in_fsr(ring)}")
    print(f"  adjacent crosstalk : "
          f"{grid.worst_case_crosstalk_db(ring):8.2f} dB")
    print(f"  max channels for -20 dB crosstalk within FSR: "
          f"{max_channels_for_crosstalk(ring)}")
    print()

    pcmc = PCMCoupler()
    print("PCM coupler (gateway activation switch)")
    for state in PCMCState:
        pcmc.state = state
        print(f"  {state.value:<24} bar {pcmc.bar_fraction:5.3f}   "
              f"cross {pcmc.cross_fraction:5.3f}")
    energy, time = PCMCoupler().activate()
    print(f"  switching cost: {energy * 1e9:.0f} nJ, {time * 1e6:.1f} us, "
          f"zero static hold power")
    print()

    floorplan = build_floorplan(DEFAULT_PLATFORM)
    detector = Photodetector()
    laser = LaserSource.off_chip()
    read = swmr_read_budget(DEFAULT_PLATFORM, floorplan)
    print("SWMR read channel budget (memory -> farthest compute reader)")
    for name, loss in read.breakdown().items():
        print(f"  {name:<24}{loss:8.3f} dB")
    print(f"  {'TOTAL':<24}{read.total_loss_db:8.3f} dB")
    per_lambda = read.required_on_chip_power_w(detector)
    electrical = read.required_laser_electrical_power_w(
        laser, detector, DEFAULT_PLATFORM.n_wavelengths
    )
    print(f"  per-wavelength on-chip laser power : "
          f"{per_lambda * 1e6:8.2f} uW")
    print(f"  laser electrical power (64 lambda) : "
          f"{electrical * 1e3:8.2f} mW")
    print()

    write = swsr_write_budget(DEFAULT_PLATFORM, floorplan, "3x3 conv-0")
    print(f"SWSR write channel ('3x3 conv-0' -> memory): "
          f"{write.total_loss_db:.2f} dB total")


if __name__ == "__main__":
    main()
