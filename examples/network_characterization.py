"""Characterise the four interposer fabrics with synthetic traffic.

Sweeps offered load under the DNN-like hotspot pattern (every compute
chiplet reading from the memory chiplet) and prints latency-vs-load and
saturation for: the ReSiPI photonic fabric, the same fabric without
reconfiguration, an AWGR all-to-all interposer, and the electrical mesh.

Run:  python examples/network_characterization.py        (~10 s)
"""

from repro.experiments.network_characterization import (
    characterize_all,
    render_characterization,
)


def main():
    loads = (0.1e12, 0.2e12, 0.5e12, 1e12, 2e12, 4e12)
    curves = characterize_all(loads_bps=loads)
    print(render_characterization(curves))

    print()
    print("Reading the curves:")
    print(" * the photonic fabrics saturate at the HBM's 3.2 Tb/s —")
    print("   the interposer itself is no longer the bottleneck;")
    print(" * the AWGR caps at its fixed per-pair wavelength slices")
    print("   (~0.67 Tb/s aggregate for the memory hub pattern);")
    print(" * the electrical mesh saturates at the memory chiplet's")
    print("   single injection port — the paper's 34x latency story;")
    print(" * ReSiPI tracks the static fabric's throughput while paying")
    print("   a small latency premium for gateway wake-up ramps.")


if __name__ == "__main__":
    main()
