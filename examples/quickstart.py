"""Quickstart: simulate one DNN inference on the three platforms.

Builds LeNet-5 from the model zoo, runs it through the monolithic
CrossLight baseline, the 2.5D electrical-interposer variant, and the
proposed 2.5D silicon-photonic platform, then prints the comparison and
the photonic platform's per-layer timeline.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CrossLight25DElec,
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from repro.dnn import zoo


def main():
    model = zoo.build("LeNet5")
    print(model.summary())
    print()

    header = (
        f"{'platform':<28}{'model':<14}{'power':>11}{'latency':>14}"
        f"{'EPB':>12}"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for platform_cls in (MonolithicCrossLight, CrossLight25DElec,
                         CrossLight25DSiPh):
        platform = platform_cls()
        result = platform.run_model(model)
        results[result.platform] = result
        print(result.summary_row())

    siph = results["2.5D-CrossLight-SiPh"]
    print()
    print("2.5D-CrossLight-SiPh per-layer timeline:")
    print(f"{'layer':<10}{'start(us)':>12}{'end(us)':>12}{'chiplets':<40}")
    for timing in siph.layer_timeline:
        chiplets = ", ".join(timing.chiplets)
        print(
            f"{timing.name:<10}{timing.start_s * 1e6:>12.3f}"
            f"{timing.end_s * 1e6:>12.3f}  {chiplets:<40}"
        )
    print()
    print(
        f"ReSiPI reconfigured the interposer {siph.reconfigurations} times "
        f"during this inference."
    )


if __name__ == "__main__":
    main()
