"""Physical-design studies: signal integrity, variation, thermal, PAM-4.

Four device-level analyses that close the loop between the architecture
(Table 1) and the photonics underneath it:

1. why 64 wavelengths need second-order gateway filters (crosstalk/BER),
2. what process variation costs in trimming power, per die,
3. the thermal trimming fixed point of each chiplet class,
4. whether PAM-4 signalling would beat OOK on the interposer links.

Run:  python examples/physical_design_studies.py
"""

from repro.config import DEFAULT_PLATFORM
from repro.core.accuracy import model_accuracy_report, worst_layer
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.interposer.photonic.links import swmr_read_budget
from repro.interposer.topology import build_floorplan
from repro.photonics import (
    TuningMechanism,
    interposer_grid,
    link_signal_report,
    max_wavelengths_for_ber,
    pam4_tradeoff,
    platform_trimming_power_w,
    thermal_operating_point,
    trimming_report,
)


def main():
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    budget = swmr_read_budget(DEFAULT_PLATFORM, floorplan)

    print("1. Signal integrity of the 64-wavelength comb")
    for order in (1, 2):
        report = link_signal_report(
            budget, interposer_grid(64), n_rings_passed=8,
            filter_order=order,
        )
        print(f"   order-{order} gateway filters: Q = {report.q_factor:5.2f},"
              f" BER = {report.ber:.2e}"
              f" {'(closes)' if report.meets_1e12 else '(fails)'}")
    print(f"   max comb @ BER 1e-12 with order-2 filters: "
          f"{max_wavelengths_for_ber(budget, filter_order=2)} wavelengths "
          f"(Table 1 uses {DEFAULT_PLATFORM.n_wavelengths})")
    print()

    print("2. Process-variation trimming cost")
    bank = trimming_report(2 * 44 * 9, TuningMechanism.THERMO_OPTIC)
    print(f"   one 3x3 chiplet's MAC rings ({bank.n_rings} rings): "
          f"{bank.total_power_w:.2f} W thermal trimming, "
          f"{bank.fsr_hop_fraction:.1%} of rings lock to the next FSR")
    per_die = platform_trimming_power_w(
        {f"3x3 conv-{i}": 792 for i in range(3)}
    )
    for die, power in per_die.items():
        print(f"   {die}: {power:.2f} W")
    print()

    print("3. Thermal closure per chiplet class")
    for name, (power, rings) in {
        "3x3 conv chiplet": (6.0, 792),
        "dense100 chiplet": (5.0, 800),
        "memory MRG stack": (8.0, 2560),
    }.items():
        point = thermal_operating_point(power, rings)
        print(f"   {name:<18} rise {point.temperature_rise_k:5.2f} K, "
              f"drift {point.resonance_drift_nm:5.3f} nm, "
              f"extra trimming {point.thermal_trimming_power_w:5.3f} W")
    print()

    print("4. PAM-4 vs OOK on the SWMR read channel")
    trade = pam4_tradeoff(budget)
    print(f"   OOK : {trade.ook.data_rate_bps / 1e9:6.0f} Gb/s, "
          f"{trade.ook.energy_per_bit_j * 1e12:5.2f} pJ/bit")
    print(f"   PAM4: {trade.pam4.data_rate_bps / 1e9:6.0f} Gb/s, "
          f"{trade.pam4.energy_per_bit_j * 1e12:5.2f} pJ/bit "
          f"({trade.laser_power_ratio:.1f}x laser power)")
    print(f"   PAM-4 wins energy per bit: {trade.pam4_wins_energy}")
    print()

    print("5. Analog accuracy of the MAC datapath (LeNet5, 8-bit)")
    report = model_accuracy_report(extract_workload(zoo.build("LeNet5")))
    for entry in report:
        print(f"   {entry.name:<8} dot length {entry.dot_length:>5}: "
              f"{entry.snr_db:5.1f} dB SNR "
              f"({entry.effective_bits:.1f} effective bits)")
    limiting = worst_layer(report)
    print(f"   accuracy-limiting layer: {limiting.name} "
          f"({limiting.effective_bits:.1f} effective bits)")


if __name__ == "__main__":
    main()
