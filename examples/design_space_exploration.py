"""Design-space exploration of the 2.5D photonic platform.

The paper's conclusions (Section VII) call for exploration of the number
of wavelengths, gateways per chiplet, and the interposer control policy.
This example runs all three sweeps on ResNet-50 and prints the resulting
latency / power / energy-per-bit trade-offs.  Sweep points fan out over
``JOBS`` worker processes and land in a persistent result cache, so a
second run returns instantly.

Run:  python examples/design_space_exploration.py        (~20 s cold)
"""

import os

from repro.experiments.dse import (
    controller_ablation,
    mapping_ablation,
    render_sweep,
    sweep_gateways,
    sweep_wavelengths,
)

JOBS = min(4, os.cpu_count() or 1)
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def main():
    print(render_sweep(
        "Wavelengths per waveguide (ResNet50 on 2.5D-SiPh)",
        sweep_wavelengths("ResNet50", values=(8, 16, 32, 64, 128),
                          jobs=JOBS, cache_dir=CACHE_DIR),
    ))
    print()
    print(render_sweep(
        "Gateways per compute chiplet (ResNet50 on 2.5D-SiPh)",
        sweep_gateways("ResNet50", values=(1, 2, 4),
                       jobs=JOBS, cache_dir=CACHE_DIR),
    ))
    print()

    print("Interposer control policy ablation")
    print(f"{'policy':<12}{'model':<12}{'latency(ms)':>14}{'power(W)':>10}"
          f"{'reconfigs':>10}")
    print("-" * 58)
    for (policy, model), result in sorted(
        controller_ablation(model_names=("LeNet5", "ResNet50"),
                            jobs=JOBS, cache_dir=CACHE_DIR).items()
    ):
        print(f"{policy:<12}{model:<12}{result.latency_s * 1e3:>14.4f}"
              f"{result.average_power_w:>10.2f}"
              f"{result.reconfigurations:>10d}")
    print()

    print("Mapping policy ablation (spillover vs strict kernel matching)")
    print(f"{'mapping':<12}{'model':<12}{'latency(ms)':>14}{'power(W)':>10}")
    print("-" * 48)
    for (policy, model), result in sorted(
        mapping_ablation(model_names=("ResNet50", "VGG16")).items()
    ):
        print(f"{policy:<12}{model:<12}{result.latency_s * 1e3:>14.4f}"
              f"{result.average_power_w:>10.2f}")


if __name__ == "__main__":
    main()
