"""Functional demo: analog inference through the photonic MAC models.

The MAC unit model is not just a performance abstraction — it computes
numerically through the device transfer functions (quantised DACs,
Lorentzian microring weighting, photodetector accumulation).  This
example runs a tiny two-layer classifier through a 3x3-conv-sized MAC
unit (9 lanes, chunked channel-major) and compares the analog result
against exact floating-point inference.

Run:  python examples/photonic_matvec.py
"""

import numpy as np

from repro.core.mac_unit import MacUnitSpec, PhotonicMacUnit


def relu(x):
    return np.maximum(x, 0.0)


def main():
    rng = np.random.default_rng(2023)
    # A small dense network: 16 -> 12 -> 4, weights in [-1, 1].
    w1 = rng.uniform(-1, 1, (12, 16))
    w2 = rng.uniform(-1, 1, (4, 12))
    x = rng.uniform(0, 1, 16)

    # Exact digital reference.
    h_ref = relu(w1 @ x)
    y_ref = w2 @ h_ref

    # Photonic execution on one 9-lane unit (dots chunked into <=9 lanes,
    # partial sums accumulated electronically, as the tiler counts).
    unit = PhotonicMacUnit(MacUnitSpec(vector_length=9, kernel_size=3))
    h_analog = relu(unit.matvec(w1, x))
    # Activations can exceed 1 after accumulation; rescale into the
    # modulator's dynamic range, compute, and scale back.
    scale = max(1.0, float(np.max(np.abs(h_analog))))
    y_analog = unit.matvec(w2, h_analog / scale) * scale

    print(f"{'output':<8}{'digital':>12}{'photonic':>12}{'error':>10}")
    print("-" * 42)
    for index, (ref, analog) in enumerate(zip(y_ref, y_analog)):
        print(f"y[{index}]    {ref:>12.4f}{analog:>12.4f}"
              f"{abs(ref - analog):>10.4f}")

    rms = float(np.sqrt(np.mean((y_ref - y_analog) ** 2)))
    print(f"\nRMS error: {rms:.4f} "
          f"(8-bit DACs/ADC, Lorentzian ring weighting)")

    ops = unit.spec.ops_per_second
    energy = unit.energy_per_vector_op_j()
    print(f"unit throughput: {ops / 1e9:.1f} GMAC/s at "
          f"{unit.spec.mac_rate_hz / 1e9:.0f} GHz, "
          f"{energy * 1e12:.1f} pJ per vector pass")

    assert rms < 0.2, "analog inference diverged from digital reference"


if __name__ == "__main__":
    main()
