"""Reproduce every evaluation artefact of the paper in one run.

Regenerates Table 1, Table 2, Fig. 7 (all three panels) and Table 3 with
the headline ratios, then prints the calibration report comparing each
measured value against the paper's and checking every qualitative claim.

The evaluation matrix fans out over ``JOBS`` worker processes and is
cached on disk, so re-runs skip straight to the report.

Run:  python examples/reproduce_paper.py        (~10 s cold)
"""

import os

from repro.experiments import (
    ExperimentRunner,
    calibration_report,
    fig7_all,
    render_fig7,
    render_table1,
    render_table2,
)

JOBS = min(4, os.cpu_count() or 1)
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def main():
    print(render_table1())
    print()
    print(render_table2())
    print()

    runner = ExperimentRunner(jobs=JOBS, cache_dir=CACHE_DIR)
    for panel in fig7_all(runner).values():
        print(render_fig7(panel))
        print()

    print(calibration_report(runner))


if __name__ == "__main__":
    main()
