"""Reproduce every evaluation artefact of the paper in one run.

Regenerates Table 1, Table 2, Fig. 7 (all three panels) and Table 3 with
the headline ratios, then prints the calibration report comparing each
measured value against the paper's and checking every qualitative claim.

Run:  python examples/reproduce_paper.py        (~10 s)
"""

from repro.experiments import (
    ExperimentRunner,
    calibration_report,
    fig7_all,
    render_fig7,
    render_table1,
    render_table2,
)


def main():
    print(render_table1())
    print()
    print(render_table2())
    print()

    runner = ExperimentRunner()
    for panel in fig7_all(runner).values():
        print(render_fig7(panel))
        print()

    print(calibration_report(runner))


if __name__ == "__main__":
    main()
