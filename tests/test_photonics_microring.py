"""Microring resonator physics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.photonics.microring import MicroringResonator, TuningMechanism


@pytest.fixture
def ring():
    return MicroringResonator()


class TestSpectralGeometry:
    def test_fwhm_follows_q(self, ring):
        assert ring.fwhm_m == pytest.approx(
            ring.resonance_wavelength_m / ring.quality_factor
        )

    def test_fsr_for_10um_ring(self, ring):
        # lambda^2 / (n_g * 2*pi*R) ~ 9.1 nm for R = 10 um, n_g = 4.2.
        assert ring.free_spectral_range_m == pytest.approx(9.1e-9, rel=0.05)

    def test_finesse_is_fsr_over_fwhm(self, ring):
        assert ring.finesse == pytest.approx(
            ring.free_spectral_range_m / ring.fwhm_m
        )

    def test_smaller_ring_has_larger_fsr(self):
        small = MicroringResonator(radius_m=5e-6)
        large = MicroringResonator(radius_m=20e-6)
        assert small.free_spectral_range_m > large.free_spectral_range_m

    def test_invalid_quality_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroringResonator(quality_factor=0)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroringResonator(radius_m=-1e-6)


class TestSpectralResponse:
    def test_drop_peaks_at_resonance(self, ring):
        on_peak = ring.drop_transmission(ring.resonance_wavelength_m)
        detuned = ring.drop_transmission(
            ring.resonance_wavelength_m + ring.fwhm_m
        )
        assert on_peak > detuned

    def test_drop_peak_equals_insertion_loss(self, ring):
        peak = ring.drop_transmission(ring.resonance_wavelength_m)
        assert peak == pytest.approx(10 ** (-ring.drop_loss_db / 10))

    def test_half_power_at_half_fwhm(self, ring):
        peak = ring.drop_transmission(ring.resonance_wavelength_m)
        half = ring.drop_transmission(
            ring.resonance_wavelength_m + ring.fwhm_m / 2
        )
        assert half == pytest.approx(peak / 2)

    def test_through_dips_at_resonance(self, ring):
        on_res = ring.through_transmission(ring.resonance_wavelength_m)
        far = ring.through_transmission(
            ring.resonance_wavelength_m + 50 * ring.fwhm_m
        )
        assert on_res < 0.01
        assert far > 0.99 * 10 ** (-ring.through_loss_db / 10)

    @given(st.floats(min_value=-5e-9, max_value=5e-9))
    def test_energy_never_created(self, detuning):
        ring = MicroringResonator()
        wavelength = ring.resonance_wavelength_m + detuning
        total = ring.drop_transmission(wavelength) + ring.through_transmission(
            wavelength
        )
        assert total <= 1.0 + 1e-12

    def test_crosstalk_negative_and_improves_with_spacing(self, ring):
        near = ring.crosstalk_db(0.4e-9)
        far = ring.crosstalk_db(1.6e-9)
        assert near < 0
        assert far < near

    def test_crosstalk_rejects_nonpositive_spacing(self, ring):
        with pytest.raises(ConfigurationError):
            ring.crosstalk_db(0.0)


class TestWeighting:
    def test_full_weight_means_zero_detuning(self, ring):
        assert ring.detuning_for_weight(1.0) == pytest.approx(0.0)

    def test_half_weight_detunes_half_fwhm(self, ring):
        assert ring.detuning_for_weight(0.5) == pytest.approx(
            ring.fwhm_m / 2
        )

    @given(st.floats(min_value=1e-3, max_value=1.0))
    def test_weight_roundtrip(self, weight):
        ring = MicroringResonator()
        detuning = ring.detuning_for_weight(weight)
        assert ring.weight_for_detuning(detuning) == pytest.approx(
            weight, rel=1e-9
        )

    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=1e-3, max_value=1.0),
    )
    def test_weighting_monotonic(self, w1, w2):
        ring = MicroringResonator()
        d1 = ring.detuning_for_weight(w1)
        d2 = ring.detuning_for_weight(w2)
        if w1 < w2:
            assert d1 >= d2
        else:
            assert d1 <= d2

    def test_weight_out_of_range_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            ring.detuning_for_weight(0.0)
        with pytest.raises(ConfigurationError):
            ring.detuning_for_weight(1.5)

    def test_smaller_weight_costs_more_tuning_power(self, ring):
        assert ring.weighting_power_w(0.1) > ring.weighting_power_w(0.9)


class TestTuning:
    def test_eo_faster_than_to(self):
        eo = MicroringResonator(tuning=TuningMechanism.ELECTRO_OPTIC)
        to = MicroringResonator(tuning=TuningMechanism.THERMO_OPTIC)
        assert eo.tuning_time_s < to.tuning_time_s

    def test_to_more_power_per_nm_than_eo(self):
        eo = MicroringResonator(tuning=TuningMechanism.ELECTRO_OPTIC)
        to = MicroringResonator(tuning=TuningMechanism.THERMO_OPTIC)
        assert to.tuning_power_w_per_nm > eo.tuning_power_w_per_nm

    def test_tuning_power_linear_in_shift(self, ring):
        one = ring.tuning_power_w(0.1e-9)
        two = ring.tuning_power_w(0.2e-9)
        assert two == pytest.approx(2 * one)

    def test_tuning_power_symmetric_in_sign(self, ring):
        assert ring.tuning_power_w(-0.3e-9) == ring.tuning_power_w(0.3e-9)

    def test_trimming_power_positive(self, ring):
        assert ring.trimming_power_w() > 0
