"""Transformer serving: layers, decode costing, KV residency, specs.

Covers the autoregressive serving subsystem end to end: attention /
MLP-block layer accounting and the pinned transformer zoo, the
decode-step and width-aware workload derivations, KV-cache admission
edges (refusal, pressure eviction, the never-fits ``AdmissionError``),
decode determinism across serial / parallel / cached execution, the
byte-identical legacy cache keys of degenerate (single-step) specs,
typed rejection of transformer-incompatible features, and the quota /
starvation-guard satellites.
"""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.dnn import zoo
from repro.dnn.layers import (
    LayerNormalization,
    MultiHeadAttention,
    TransformerMLP,
)
from repro.dnn.workload import (
    decode_workload,
    extract_workload,
    widened_workload,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ShapeError,
    SpecError,
)
from repro.experiments.export import (
    serving_results_to_csv,
    serving_results_to_json,
)
from repro.experiments.serving_study import ScenarioCell, ServingCell
from repro.mapping.residency import KVCacheResidency, WeightResidency
from repro.serving.scheduler import BatchPolicy
from repro.sim.core import Environment
from repro.studies.compile import (
    is_classic_serving,
    lower_study,
    render_study,
    resolve_config,
    run_study,
)
from repro.studies.spec import (
    ModelTraffic,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)

TINY = extract_workload(zoo.build("TransformerTiny"))


def sequence_spec(**overrides) -> StudySpec:
    workload_kwargs = dict(
        models=(
            ModelTraffic(model="TransformerTiny", fraction=0.6,
                         prompt_tokens=16, output_tokens=8),
            ModelTraffic(model="LeNet5", fraction=0.4),
        ),
        rate_rps=40e3, duration_s=0.5e-3,
    )
    workload_kwargs.update(overrides.pop("workload", {}))
    kwargs = dict(
        name="seq",
        kind="serving",
        workload=WorkloadSpec(**workload_kwargs),
        scheduler=SchedulerSpec(policy="continuous", max_batch=4),
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


# ---------------------------------------------------------------------------
# Layers and the transformer zoo.
# ---------------------------------------------------------------------------


class TestTransformerLayers:
    def test_attention_accounting(self):
        layer = MultiHeadAttention(num_heads=4)
        shapes = [(64, 128)]
        assert layer.infer_shape(shapes) == (64, 128)
        # Four d x d projections plus their biases.
        assert layer.param_count(shapes) == 4 * 128 * 128 + 4 * 128
        # Projections (4Td^2) plus scores + weighted sum (2T^2 d).
        assert layer.mac_count(shapes) == (
            4 * 64 * 128 * 128 + 2 * 64 * 64 * 128
        )

    def test_attention_rejects_indivisible_heads(self):
        with pytest.raises(ShapeError, match="heads"):
            MultiHeadAttention(num_heads=3).infer_shape([(64, 128)])

    def test_mlp_and_norm_accounting(self):
        shapes = [(64, 128)]
        mlp = TransformerMLP(hidden_units=512)
        assert mlp.param_count(shapes) == (
            128 * 512 + 512 + 512 * 128 + 128
        )
        assert mlp.mac_count(shapes) == 2 * 64 * 128 * 512
        norm = LayerNormalization()
        assert norm.param_count(shapes) == 2 * 128
        assert norm.mac_count(shapes) == 0

    def test_zoo_params_pinned(self):
        for name, expected in zoo.TRANSFORMER_PARAMS.items():
            assert zoo.build(name).total_params == expected

    def test_extraction_marks_kv_and_context(self):
        # Two blocks of d=128: each attention caches K and V rows.
        assert TINY.context_tokens == 64
        assert TINY.kv_bits_per_token == 2 * 2 * 128 * 8
        cnn = extract_workload(zoo.build("LeNet5"))
        assert cnn.kv_bits_per_token == 0
        assert cnn.context_tokens == 0


class TestDecodeWorkload:
    def test_decode_divides_activations_not_weights(self):
        decode = decode_workload(TINY)
        for full, step in zip(TINY.layers, decode.layers):
            assert step.weight_bits == full.weight_bits
            assert step.n_dots == max(1, full.n_dots // 64)
            assert step.input_bits <= full.input_bits

    def test_decode_rejects_non_transformer(self):
        with pytest.raises(ShapeError, match="no attention layers"):
            decode_workload(extract_workload(zoo.build("LeNet5")))

    def test_widened_scales_everything_but_weights(self):
        decode = decode_workload(TINY)
        wide = widened_workload(decode, 4)
        for one, four in zip(decode.layers, wide.layers):
            assert four.n_dots == 4 * one.n_dots
            assert four.macs == 4 * one.macs
            assert four.weight_bits == one.weight_bits


# ---------------------------------------------------------------------------
# KV-cache residency edges.
# ---------------------------------------------------------------------------


class TestKVCacheResidency:
    def test_never_fits_raises_admission_error(self):
        weights = WeightResidency(Environment(), capacity_bits=1000)
        kv = KVCacheResidency(weights)
        with pytest.raises(AdmissionError, match="total residency"):
            kv.admit(1, total_tokens=10, bits_per_token=200)

    def test_refusal_only_against_live_sequences(self):
        weights = WeightResidency(Environment(), capacity_bits=1000)
        kv = KVCacheResidency(weights)
        assert kv.admit(1, total_tokens=8, bits_per_token=100)
        assert not kv.admit(2, total_tokens=8, bits_per_token=100)
        assert kv.refusals == 1
        kv.release(1)
        assert kv.admit(2, total_tokens=8, bits_per_token=100)

    def test_admission_evicts_weights_under_pressure(self):
        weights = WeightResidency(Environment(), capacity_bits=1000)
        weights._bits["LeNet5"] = 600.0
        weights._lru = ["LeNet5"]
        kv = KVCacheResidency(weights)
        assert kv.admit(1, total_tokens=8, bits_per_token=100)
        assert weights.resident_bits == 0
        assert kv.pressure_evictions == 1

    def test_release_wakes_every_waiter(self):
        env = Environment()
        weights = WeightResidency(env, capacity_bits=1000)
        kv = KVCacheResidency(weights)
        kv.admit(1, total_tokens=10, bits_per_token=100)
        first, second = kv.wait_release(), kv.wait_release()
        kv.release(1)
        assert first.triggered and second.triggered

    def test_grow_clamps_to_reservation(self):
        kv = KVCacheResidency(WeightResidency(Environment()))
        kv.admit(1, total_tokens=4, bits_per_token=100)
        kv.grow(1, tokens=100, bits_per_token=100)
        assert kv.written_bits == 400.0

    def test_one_store_per_weight_residency(self):
        weights = WeightResidency(Environment())
        KVCacheResidency(weights)
        with pytest.raises(ConfigurationError, match="already"):
            KVCacheResidency(weights)


# ---------------------------------------------------------------------------
# Determinism: serial == parallel == cold/warm cache.
# ---------------------------------------------------------------------------


class TestDecodeDeterminism:
    def test_serial_parallel_and_cache_agree(self, tmp_path):
        spec = sequence_spec(sweep=SweepSpec(axes=(
            SweepAxis("scheduler.policy", ("continuous", "max-batch")),
        )))
        serial = run_study(spec)
        parallel = run_study(spec, jobs=4)
        cold = run_study(spec, cache_dir=tmp_path)
        warm = run_study(spec, cache_dir=tmp_path)
        assert serial.points == parallel.points
        assert serial.points == cold.points
        assert cold.points == warm.points
        for result in serial.serving_results():
            assert result.tokens_generated > 0
            assert result.tokens_per_s > 0
            assert result.ttft is not None
            assert result.token_latency is not None

    def test_geometric_lengths_are_seeded(self):
        spec = sequence_spec(
            workload={"length_distribution": "geometric"}
        )
        assert run_study(spec).points == run_study(spec).points


# ---------------------------------------------------------------------------
# Cache identity: degenerate specs keep pre-transformer keys.
# ---------------------------------------------------------------------------


# Pinned against the pre-transformer build (PR 7 HEAD): these literal
# digests must never move for single-step cells.
LEGACY_SERVING_KEY = (
    "bf49d6d94dd2b0b91118ec2bbddbba54dee01a50be501d95463f151e27874a78"
)
LEGACY_SCENARIO_KEY = (
    "17b297fe8fcf116f547cbdd5fbc0cc342ca46e6e0b7e8adfda348c7c34187250"
)


class TestLegacyKeys:
    def test_classic_serving_key_byte_identical(self):
        cell = ServingCell(
            platform="2.5D-CrossLight-SiPh", model="LeNet5",
            controller="resipi",
            policy=BatchPolicy.max_batch_with_timeout(max_batch=4),
            arrival_kind="poisson", rate_rps=50e3, duration_s=2e-3,
            seed=7, config=DEFAULT_PLATFORM,
        )
        assert cell.key() == LEGACY_SERVING_KEY

    def test_single_step_scenario_key_byte_identical(self):
        cell = ScenarioCell(
            platform="2.5D-CrossLight-SiPh",
            models=(("LeNet5", 0.7, 50e-6, 1), ("ResNet50", 0.3, None, 0)),
            controller="resipi", policy=BatchPolicy.fifo(),
            arrival_kind="mmpp", rate_rps=40e3, duration_s=1e-3, seed=7,
            config=DEFAULT_PLATFORM, residency_capacity_bits=1e9,
        )
        assert cell.key() == LEGACY_SCENARIO_KEY

    def test_degenerate_spec_lowers_to_classic_cell(self):
        spec = StudySpec(
            name="cnn", kind="serving",
            workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),),
                rate_rps=50e3, duration_s=2e-3,
            ),
            scheduler=SchedulerSpec(policy="max-batch", max_batch=4),
        )
        assert is_classic_serving(spec)
        (cell,) = lower_study(spec)[1][0]
        assert isinstance(cell, ServingCell)
        assert cell.key() == LEGACY_SERVING_KEY

    def test_degenerate_fidelity_keeps_sequence_keys(self):
        # A `mode: "des"` fidelity block is inert: the sequence cell it
        # lowers to must reuse the exact pre-fidelity cache key.
        from repro.studies.spec import FidelitySpec
        (plain,) = lower_study(sequence_spec())[1][0]
        (degenerate,) = lower_study(
            sequence_spec(fidelity=FidelitySpec())
        )[1][0]
        assert degenerate.fidelity is None
        assert degenerate.key() == plain.key()

    def test_sequence_fields_fork_scenario_keys(self):
        base = ScenarioCell(
            platform="2.5D-CrossLight-SiPh",
            models=(("TransformerTiny", 1.0, None, 0),),
            controller="resipi", policy=BatchPolicy.fifo(),
            arrival_kind="poisson", rate_rps=40e3, duration_s=1e-3,
            seed=7, config=DEFAULT_PLATFORM,
        )
        from dataclasses import replace
        with_seq = replace(base, sequences=((16, 8),))
        with_quota = replace(base, quotas=(4,))
        assert len({base.key(), with_seq.key(), with_quota.key()}) == 3


# ---------------------------------------------------------------------------
# Typed rejections.
# ---------------------------------------------------------------------------


class TestSpecRejections:
    def test_fluid_fidelity_accepted_on_sequences(self):
        # PR 9 lifted the sequence rejection: the fluid path now models
        # prefill + decode, so the spec lowers onto a fidelity-armed
        # scenario cell instead of raising.
        from repro.studies.spec import FidelitySpec
        spec = sequence_spec(fidelity=FidelitySpec(mode="fluid"))
        (cell,) = lower_study(spec)[1][0]
        assert isinstance(cell, ScenarioCell)
        assert cell.sequences
        assert cell.fidelity is not None

    def test_resilience_rejected_on_sequences(self):
        from repro.studies.spec import ResilienceSpec
        with pytest.raises(SpecError, match="resilience"):
            sequence_spec(resilience=ResilienceSpec(timeout_s=1e-3))

    def test_cluster_rejected_on_sequences(self):
        from repro.studies.spec import ClusterSpec
        with pytest.raises(SpecError, match="cluster"):
            sequence_spec(cluster=ClusterSpec(replicas=2))

    def test_continuous_requires_sequences(self):
        with pytest.raises(SpecError, match="continuous"):
            StudySpec(
                name="bad", kind="serving",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),)
                ),
                scheduler=SchedulerSpec(policy="continuous", max_batch=4),
            )

    def test_sequence_lengths_on_cnn_rejected_at_lowering(self):
        spec = sequence_spec(workload={"models": (
            ModelTraffic(model="LeNet5", prompt_tokens=16,
                         output_tokens=8),
        )}, scheduler=SchedulerSpec())
        with pytest.raises(SpecError, match="attention layers"):
            lower_study(spec)

    def test_transformer_without_lengths_rejected_at_lowering(self):
        spec = StudySpec(
            name="bad", kind="serving",
            workload=WorkloadSpec(
                models=(ModelTraffic(model="TransformerTiny"),)
            ),
        )
        with pytest.raises(SpecError, match="needs sequence lengths"):
            lower_study(spec)

    def test_prompt_without_output_rejected(self):
        with pytest.raises(SpecError, match="both positive"):
            WorkloadSpec(
                models=(ModelTraffic(model="TransformerTiny"),),
                prompt_tokens=16,
            )

    def test_length_distribution_inert_without_sequences(self):
        with pytest.raises(SpecError, match="length_distribution"):
            WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),),
                length_distribution="geometric",
            )

    def test_starvation_age_priority_only(self):
        with pytest.raises(SpecError, match="priority"):
            SchedulerSpec(policy="fifo", starvation_age_s=1e-3)

    def test_epoch_knob_rejected_on_static_controller(self):
        spec = sequence_spec(platform=PlatformSpec(
            controller="static", controller_epoch_s=2e-6,
        ))
        with pytest.raises(SpecError, match="never acts on"):
            lower_study(spec)

    def test_epoch_knob_rejected_off_siph(self):
        spec = StudySpec(
            name="bad", kind="serving",
            workload=WorkloadSpec(models=(ModelTraffic(model="LeNet5"),)),
            platform=PlatformSpec(name="CrossLight",
                                  controller_epoch_s=2e-6),
        )
        with pytest.raises(SpecError, match="controller_epoch_s"):
            lower_study(spec)

    def test_inference_kind_rejects_sequence_fields(self):
        with pytest.raises(SpecError, match="serving studies"):
            StudySpec(
                name="bad", kind="inference",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="TransformerTiny",
                                         prompt_tokens=4,
                                         output_tokens=4),),
                ),
            )


# ---------------------------------------------------------------------------
# Satellites: epoch axis, quotas, starvation guard, exports.
# ---------------------------------------------------------------------------


class TestEpochAxis:
    def test_epoch_resolves_into_config(self):
        spec = sequence_spec(platform=PlatformSpec(
            controller_epoch_s=2e-6,
        ))
        assert resolve_config(spec).resipi_epoch_s == 2e-6

    def test_epoch_is_sweepable_and_moves_results(self):
        spec = sequence_spec(sweep=SweepSpec(axes=(
            SweepAxis("platform.controller_epoch_s", (1e-6, 16e-6)),
        )))
        fast, slow = run_study(spec).serving_results()
        assert fast != slow
        assert fast.reconfigurations != slow.reconfigurations


class TestQuotaAndStarvation:
    def test_quota_denials_surface_per_model(self):
        spec = sequence_spec(workload={
            "models": (
                ModelTraffic(model="TransformerTiny", fraction=0.6,
                             prompt_tokens=16, output_tokens=8),
                ModelTraffic(model="LeNet5", fraction=0.4, quota=1),
            ),
            "rate_rps": 400e3,
        })
        (result,) = run_study(spec).serving_results()
        by_model = {s.model: s for s in result.per_model}
        assert by_model["LeNet5"].quota_denied > 0
        assert by_model["TransformerTiny"].quota_denied == 0

    def test_starvation_guard_promotes_oldest(self):
        spec = sequence_spec(
            workload={
                "models": (
                    ModelTraffic(model="TransformerTiny", fraction=0.5,
                                 prompt_tokens=16, output_tokens=8,
                                 priority=5),
                    ModelTraffic(model="LeNet5", fraction=0.5,
                                 priority=0),
                ),
                "rate_rps": 300e3,
            },
            scheduler=SchedulerSpec(policy="priority",
                                    starvation_age_s=20e-6),
        )
        guarded = run_study(spec).serving_results()[0]
        from dataclasses import replace as dc_replace
        unguarded_spec = dc_replace(
            spec, scheduler=SchedulerSpec(policy="priority")
        )
        unguarded = run_study(unguarded_spec).serving_results()[0]
        assert guarded != unguarded  # the guard reorders dispatch

    def test_quota_moves_spec_digest_and_key(self):
        plain = sequence_spec()
        quota = sequence_spec(workload={"models": (
            ModelTraffic(model="TransformerTiny", fraction=0.6,
                         prompt_tokens=16, output_tokens=8),
            ModelTraffic(model="LeNet5", fraction=0.4, quota=8),
        )})
        assert plain.digest != quota.digest
        plain_cell = lower_study(plain)[1][0][0]
        quota_cell = lower_study(quota)[1][0][0]
        assert plain_cell.key() != quota_cell.key()


class TestRenderAndExport:
    def test_render_includes_token_metrics(self):
        study = run_study(sequence_spec())
        text = render_study(study)
        assert "transformer serving (token metrics)" in text
        assert "ttft p50(us)" in text
        assert "tok/s" in text

    def test_json_and_csv_carry_sequence_block(self):
        import json
        results = run_study(sequence_spec()).serving_results()
        record = json.loads(serving_results_to_json(results))[0]
        assert record["sequence"]["tokens_generated"] > 0
        assert record["sequence"]["ttft_s"]["p99"] > 0
        assert record["tokens_per_s"] > 0
        header = serving_results_to_csv(results).splitlines()[0]
        for column in ("tokens_generated", "tokens_per_s",
                       "ttft_p99_s", "token_p99_s"):
            assert column in header
