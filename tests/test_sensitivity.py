"""Sensitivity study: robustness of headline conclusions."""

import pytest

from repro.experiments.sensitivity import (
    render_sensitivity,
    sensitivity_study,
)

FAST_KNOBS = {
    "mesh_link_efficiency": (0.05, 0.20),
    "mono_n_vdp_units": (8, 32),
}


@pytest.fixture(scope="module")
def points():
    return sensitivity_study(knobs=FAST_KNOBS)


class TestSensitivity:
    def test_one_point_per_knob_value(self, points):
        assert len(points) == 4

    def test_conclusions_hold_everywhere(self, points):
        """The reproduction's key robustness claim."""
        for point in points:
            assert point.conclusions_hold, (
                f"{point.knob}={point.value} breaks the paper's conclusions"
            )

    def test_worse_mesh_widens_electrical_gap(self, points):
        by_value = {
            p.value: p for p in points if p.knob == "mesh_link_efficiency"
        }
        assert by_value[0.05].latency_vs_elec > by_value[0.20].latency_vs_elec

    def test_bigger_mono_narrows_monolithic_gap(self, points):
        by_value = {
            p.value: p for p in points if p.knob == "mono_n_vdp_units"
        }
        assert by_value[32].latency_vs_mono < by_value[8].latency_vs_mono

    def test_render(self, points):
        text = render_sensitivity(points)
        assert "mesh_link_efficiency" in text
        assert "NO" not in text
