"""Waveguides, microdisks, MZIs, photodetectors, lasers, couplers, PCMCs."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LinkBudgetError
from repro.photonics import constants as ph
from repro.photonics.coupler import CouplerKind, FiberCoupler, PowerSplitter
from repro.photonics.laser import LaserSource
from repro.photonics.microdisk import MicrodiskResonator
from repro.photonics.microring import MicroringResonator
from repro.photonics.mzi import MachZehnderInterferometer
from repro.photonics.pcmc import (
    PCMCoupler,
    PCMCState,
    coupling_length_ratio_for_fraction,
)
from repro.photonics.photodetector import Photodetector
from repro.photonics.waveguide import Waveguide


class TestWaveguide:
    def test_propagation_loss_scales_with_length(self):
        short = Waveguide(length_m=0.01)
        long = Waveguide(length_m=0.02)
        assert long.propagation_loss_db == pytest.approx(
            2 * short.propagation_loss_db
        )

    def test_one_cm_default_loss(self):
        assert Waveguide(length_m=0.01).propagation_loss_db == pytest.approx(
            ph.WAVEGUIDE_PROPAGATION_LOSS_DB_PER_CM
        )

    def test_bends_and_crossings_add_loss(self):
        plain = Waveguide(length_m=0.01)
        complicated = Waveguide(length_m=0.01, n_bends=4, n_crossings=2)
        expected = (
            plain.insertion_loss_db
            + 4 * ph.WAVEGUIDE_BEND_LOSS_DB
            + 2 * ph.WAVEGUIDE_CROSSING_LOSS_DB
        )
        assert complicated.insertion_loss_db == pytest.approx(expected)

    def test_propagation_delay(self):
        wg = Waveguide(length_m=0.03)  # 3 cm at n_g = 4.2 -> ~420 ps
        assert wg.propagation_delay_s == pytest.approx(420e-12, rel=0.01)

    def test_extended_accumulates(self):
        base = Waveguide(length_m=0.01, n_bends=1)
        longer = base.extended(0.01, extra_bends=2, extra_crossings=1)
        assert longer.length_m == pytest.approx(0.02)
        assert longer.n_bends == 3
        assert longer.n_crossings == 1

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Waveguide(length_m=-0.01)

    def test_unphysical_group_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Waveguide(length_m=0.01, group_index=0.5)


class TestMicrodisk:
    def test_is_a_resonator(self):
        disk = MicrodiskResonator()
        assert isinstance(disk, MicroringResonator)

    def test_smaller_than_default_ring(self):
        disk = MicrodiskResonator()
        ring = MicroringResonator()
        assert disk.radius_m < ring.radius_m

    def test_higher_losses_than_ring(self):
        disk = MicrodiskResonator()
        ring = MicroringResonator()
        assert disk.through_loss_db > ring.through_loss_db
        assert disk.drop_loss_db > ring.drop_loss_db

    def test_footprint(self):
        disk = MicrodiskResonator(radius_m=5e-6)
        assert disk.footprint_m2 == pytest.approx(math.pi * 25e-12)

    def test_spectral_response_inherited(self):
        disk = MicrodiskResonator()
        peak = disk.drop_transmission(disk.resonance_wavelength_m)
        assert 0 < peak <= 1


class TestMZI:
    def test_bar_cross_complementary(self):
        mzi = MachZehnderInterferometer()
        for phi in (0.3, 1.0, 2.0, 3.0):
            total = mzi.bar_transmission(phi) + mzi.cross_transmission(phi)
            assert total <= 1.0
            # Up to insertion loss and leakage they are complementary.
            assert total == pytest.approx(
                10 ** (-mzi.insertion_loss_db / 10), rel=0.02
            )

    def test_zero_phase_goes_cross(self):
        mzi = MachZehnderInterferometer()
        assert mzi.cross_transmission(0.0) > mzi.bar_transmission(0.0)

    def test_pi_phase_goes_bar(self):
        mzi = MachZehnderInterferometer()
        assert mzi.bar_transmission(math.pi) > mzi.cross_transmission(math.pi)

    def test_extinction_limits_dark_port(self):
        mzi = MachZehnderInterferometer(extinction_ratio_db=20.0)
        leakage = mzi.bar_transmission(0.0)
        assert leakage >= 10 ** (-20 / 10) * 10 ** (
            -mzi.insertion_loss_db / 10
        ) * 0.99

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_phase_for_weight_roundtrip(self, weight):
        mzi = MachZehnderInterferometer(extinction_ratio_db=60.0,
                                        insertion_loss_db=0.0)
        phase = mzi.phase_for_weight(weight)
        assert mzi.bar_transmission(phase) == pytest.approx(weight, rel=1e-6)

    def test_weight_out_of_range_rejected(self):
        mzi = MachZehnderInterferometer()
        with pytest.raises(ConfigurationError):
            mzi.phase_for_weight(1.5)

    def test_phase_power_linear(self):
        mzi = MachZehnderInterferometer()
        assert mzi.phase_shifter_power_w(math.pi) == pytest.approx(
            ph.MZI_PHASE_SHIFTER_POWER_W
        )
        assert mzi.phase_shifter_power_w(math.pi / 2) == pytest.approx(
            ph.MZI_PHASE_SHIFTER_POWER_W / 2
        )

    def test_invalid_extinction_rejected(self):
        with pytest.raises(ConfigurationError):
            MachZehnderInterferometer(extinction_ratio_db=0.0)


class TestPhotodetector:
    def test_photocurrent_linear(self):
        pd = Photodetector()
        base = pd.photocurrent_a(1e-3) - pd.dark_current_a
        double = pd.photocurrent_a(2e-3) - pd.dark_current_a
        assert double == pytest.approx(2 * base)

    def test_sensitivity_in_watts(self):
        pd = Photodetector(sensitivity_dbm=-20.0)
        assert pd.sensitivity_w == pytest.approx(10e-6)

    def test_can_detect_at_sensitivity(self):
        pd = Photodetector()
        assert pd.can_detect(pd.sensitivity_w)
        assert not pd.can_detect(pd.sensitivity_w * 0.5)

    def test_supports_12gbps(self):
        pd = Photodetector()
        assert pd.supports_data_rate(12e9)
        assert not pd.supports_data_rate(50e9)

    def test_accumulate_sums_wavelengths(self):
        pd = Photodetector()
        separate = sum(
            pd.photocurrent_a(p) - pd.dark_current_a
            for p in (1e-4, 2e-4, 3e-4)
        )
        combined = pd.accumulate([1e-4, 2e-4, 3e-4]) - pd.dark_current_a
        assert combined == pytest.approx(separate)

    def test_accumulate_rejects_negative_power(self):
        pd = Photodetector()
        with pytest.raises(ConfigurationError):
            pd.accumulate([1e-4, -1e-4])

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            Photodetector().photocurrent_a(-1.0)

    def test_invalid_responsivity_rejected(self):
        with pytest.raises(ConfigurationError):
            Photodetector(responsivity_a_per_w=0.0)


class TestLaser:
    def test_off_chip_beats_on_chip_efficiency(self):
        assert (
            LaserSource.off_chip().wall_plug_efficiency
            > LaserSource.on_chip().wall_plug_efficiency
        )

    def test_on_chip_has_no_coupling_loss(self):
        assert LaserSource.on_chip().coupling_loss_db == 0.0

    def test_electrical_power_includes_coupling_and_wpe(self):
        laser = LaserSource(wall_plug_efficiency=0.1, coupling_loss_db=3.0)
        # 1 mW on-chip needs ~2 mW emitted (3 dB), so 20 mW electrical.
        assert laser.electrical_power_w(1e-3) == pytest.approx(
            19.95e-3, rel=1e-2
        )

    def test_max_power_enforced(self):
        laser = LaserSource(max_optical_power_w=1e-3)
        with pytest.raises(LinkBudgetError):
            laser.emitted_power_for_on_chip_w(1.0)

    def test_invalid_wpe_rejected(self):
        with pytest.raises(ConfigurationError):
            LaserSource(wall_plug_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            LaserSource(wall_plug_efficiency=1.5)

    @given(st.floats(min_value=1e-6, max_value=1e-2))
    def test_electrical_power_monotonic(self, optical):
        laser = LaserSource.off_chip()
        assert laser.electrical_power_w(optical * 2) > laser.electrical_power_w(
            optical
        )


class TestCouplers:
    def test_grating_default_loss(self):
        coupler = FiberCoupler(CouplerKind.GRATING)
        assert coupler.insertion_loss_db == ph.GRATING_COUPLER_LOSS_DB

    def test_edge_default_loss(self):
        coupler = FiberCoupler(CouplerKind.EDGE)
        assert coupler.insertion_loss_db == ph.EDGE_COUPLER_LOSS_DB

    def test_transmission_matches_loss(self):
        coupler = FiberCoupler(insertion_loss_db=3.0)
        assert coupler.transmission == pytest.approx(0.501, rel=1e-2)

    def test_splitter_fanout_one_is_free(self):
        splitter = PowerSplitter(fanout=1)
        assert splitter.insertion_loss_db == 0.0
        assert splitter.per_branch_transmission == 1.0

    def test_splitter_two_way_is_3db_plus_excess(self):
        splitter = PowerSplitter(fanout=2)
        assert splitter.insertion_loss_db == pytest.approx(
            3.0103 + ph.SPLITTER_INSERTION_LOSS_DB, rel=1e-3
        )

    def test_splitter_stage_count(self):
        assert PowerSplitter(fanout=8).n_stages == 3
        assert PowerSplitter(fanout=5).n_stages == 3

    @given(st.integers(min_value=1, max_value=256))
    def test_splitter_conserves_energy(self, fanout):
        splitter = PowerSplitter(fanout=fanout)
        assert splitter.per_branch_transmission * fanout <= 1.0 + 1e-9

    def test_splitter_invalid_fanout(self):
        with pytest.raises(ConfigurationError):
            PowerSplitter(fanout=0)


class TestPCMC:
    def test_crystalline_routes_bar(self):
        pcmc = PCMCoupler(state=PCMCState.CRYSTALLINE)
        assert pcmc.cross_fraction == 0.0
        assert pcmc.bar_fraction > 0.9
        assert not pcmc.is_gateway_active

    def test_amorphous_routes_cross(self):
        pcmc = PCMCoupler(state=PCMCState.AMORPHOUS)
        assert pcmc.bar_fraction == 0.0
        assert pcmc.cross_fraction > 0.9
        assert pcmc.is_gateway_active

    def test_partial_splits(self):
        pcmc = PCMCoupler(state=PCMCState.PARTIAL, partial_cross_fraction=0.3)
        assert pcmc.cross_fraction == pytest.approx(
            0.3 * pcmc._transmission
        )
        assert pcmc.bar_fraction == pytest.approx(0.7 * pcmc._transmission)

    def test_switching_costs_energy_once(self):
        pcmc = PCMCoupler()
        energy, time = pcmc.activate()
        assert energy == ph.PCMC_SWITCHING_ENERGY_J
        assert time == ph.PCMC_SWITCHING_TIME_S
        # Re-writing the same state is free (non-volatile).
        energy2, time2 = pcmc.activate()
        assert energy2 == 0.0
        assert time2 == 0.0
        assert pcmc.switch_count == 1

    def test_nonvolatile_zero_static_power(self):
        assert PCMCoupler().static_power_w == 0.0

    def test_deactivate(self):
        pcmc = PCMCoupler(state=PCMCState.AMORPHOUS)
        pcmc.deactivate()
        assert pcmc.state is PCMCState.CRYSTALLINE

    def test_invalid_partial_fraction(self):
        with pytest.raises(ConfigurationError):
            PCMCoupler(partial_cross_fraction=1.5)

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_coupling_length_ratio(self, fraction):
        ratio = coupling_length_ratio_for_fraction(fraction)
        assert ratio / (1 + ratio) == pytest.approx(fraction, abs=1e-9)

    def test_coupling_length_ratio_rejects_unity(self):
        with pytest.raises(ConfigurationError):
            coupling_length_ratio_for_fraction(1.0)
