"""Telemetry: spec validation, cache identity, determinism, trace schema."""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import SpecError
from repro.obs import (
    MetricsRegistry,
    TelemetryPolicy,
    TraceRecorder,
    chrome_trace_events,
    chrome_trace_json,
    render_sparklines,
    sparkline,
    telemetry_series_to_csv,
    validate_chrome_trace,
)
from repro.obs.session import TelemetrySummary
from repro.sim.core import Environment
from repro.studies import (
    ClusterSpec,
    ModelTraffic,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    TelemetrySpec,
    WorkloadSpec,
)
from repro.studies.compile import lower_study, run_study
from repro.studies.spec import FidelitySpec


def serving_spec(telemetry=None, **overrides) -> StudySpec:
    kwargs = dict(
        name="telemetered",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet5"),),
            rate_rps=100e3, duration_s=0.5e-3, seed=7,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="fifo"),
    )
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    kwargs.update(overrides)
    return StudySpec(**kwargs)


def mix_spec(telemetry=None) -> StudySpec:
    kwargs = dict(
        name="telemetered-mix",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model="LeNet5", fraction=0.7, slo_s=150e-6,
                             priority=1),
                ModelTraffic(model="MobileNetV2", fraction=0.3,
                             slo_s=4e-3, priority=0),
            ),
            arrival="mmpp", rate_rps=60e3, duration_s=0.5e-3, seed=7,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="edf"),
    )
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    return StudySpec(**kwargs)


class TestTelemetrySpec:
    def test_default_is_degenerate(self):
        assert not TelemetrySpec()
        assert bool(TelemetrySpec(trace=True))
        assert bool(TelemetrySpec(metrics_interval_s=1e-5))

    def test_sample_rate_must_be_in_unit_interval(self):
        with pytest.raises(SpecError, match="sample rate"):
            TelemetrySpec(trace=True, sample_rate=0.0)
        with pytest.raises(SpecError, match="sample rate"):
            TelemetrySpec(trace=True, sample_rate=1.5)

    def test_metrics_interval_must_be_positive(self):
        with pytest.raises(SpecError, match="interval"):
            TelemetrySpec(metrics_interval_s=-1e-6)

    def test_sample_rate_without_trace_is_inert(self):
        with pytest.raises(SpecError, match="telemetry.trace"):
            TelemetrySpec(sample_rate=0.5)

    def test_telemetry_is_serving_only(self):
        with pytest.raises(SpecError, match="telemetry"):
            StudySpec(
                name="one-shot", kind="inference",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),),
                ),
                telemetry=TelemetrySpec(trace=True),
            )

    def test_telemetry_rejects_fluid_fidelity(self):
        with pytest.raises(SpecError, match="fidelity: des"):
            serving_spec(
                telemetry=TelemetrySpec(trace=True),
                fidelity=FidelitySpec(mode="fluid"),
            )

    def test_round_trips_through_json(self):
        spec = serving_spec(telemetry=TelemetrySpec(
            trace=True, sample_rate=0.25, metrics_interval_s=2e-5,
        ))
        clone = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.telemetry == spec.telemetry
        assert clone == spec


class TestCacheKeys:
    def test_degenerate_section_keeps_legacy_keys(self):
        (plain,) = lower_study(serving_spec())[1][0]
        (degenerate,) = lower_study(
            serving_spec(telemetry=TelemetrySpec())
        )[1][0]
        assert degenerate.telemetry is None
        assert degenerate.key() == plain.key()

    def test_armed_telemetry_moves_serving_key(self):
        (plain,) = lower_study(serving_spec())[1][0]
        (armed,) = lower_study(
            serving_spec(telemetry=TelemetrySpec(trace=True))
        )[1][0]
        assert armed.telemetry is not None
        assert armed.key() != plain.key()

    def test_sample_rate_moves_scenario_key(self):
        (half,) = lower_study(mix_spec(
            TelemetrySpec(trace=True, sample_rate=0.5)
        ))[1][0]
        (full,) = lower_study(mix_spec(TelemetrySpec(trace=True)))[1][0]
        assert half.key() != full.key()


def _strip(result):
    return replace(result, telemetry=None)


class TestDeterminism:
    def test_records_identical_with_telemetry_on_or_off(self):
        off = run_study(serving_spec()).flat_results()
        on = run_study(
            serving_spec(telemetry=TelemetrySpec(trace=True))
        ).flat_results()
        assert [r.telemetry for r in off] == [None]
        assert all(r.telemetry is not None for r in on)
        assert [_strip(r) for r in on] == list(off)

    def test_scenario_records_identical_with_telemetry(self):
        off = run_study(mix_spec()).flat_results()
        on = run_study(mix_spec(TelemetrySpec(trace=True))).flat_results()
        assert [_strip(r) for r in on] == list(off)

    def test_serial_fanout_and_cache_agree(self, tmp_path):
        spec = mix_spec(TelemetrySpec(trace=True))
        serial = run_study(spec).flat_results()
        fanned = run_study(spec, jobs=4).flat_results()
        cold = run_study(spec, cache_dir=tmp_path).flat_results()
        warm = run_study(spec, cache_dir=tmp_path).flat_results()
        assert serial == fanned == cold == warm
        assert [r.telemetry for r in serial] == [r.telemetry for r in warm]
        assert all(
            isinstance(r.telemetry, TelemetrySummary) for r in warm
        )

    def test_sampling_is_deterministic_and_seedless(self):
        recorder = TraceRecorder(Environment(), sample_rate=0.25)
        first = [recorder.sampled(i) for i in range(200)]
        again = [recorder.sampled(i) for i in range(200)]
        assert first == again
        rate = sum(first) / len(first)
        assert 0.1 < rate < 0.4


class TestTraceSchema:
    def run_armed(self, spec):
        (result,) = run_study(spec).flat_results()
        assert result.telemetry is not None
        return result.telemetry

    def test_serving_trace_is_valid_chrome_json(self):
        summary = self.run_armed(
            serving_spec(telemetry=TelemetrySpec(trace=True))
        )
        assert summary.span_count > 0
        assert summary.sampled_requests == summary.total_requests > 0
        events = chrome_trace_events([("cell", summary)])
        validate_chrome_trace(events)
        phases = [event["ph"] for event in events]
        assert phases.count("B") == phases.count("E") > 0
        assert "C" in phases  # gauge series render as counters
        doc = json.loads(chrome_trace_json([("cell", summary)]))
        assert doc["traceEvents"]

    def test_transformer_trace_nests_decode_spans(self):
        spec = StudySpec(
            name="traced-decode", kind="serving",
            workload=WorkloadSpec(
                models=(ModelTraffic(
                    model="TransformerTiny", prompt_tokens=16,
                    output_tokens=8,
                ),),
                rate_rps=40e3, duration_s=0.5e-3, seed=7,
            ),
            platform=PlatformSpec(name="CrossLight"),
            scheduler=SchedulerSpec(policy="continuous", max_batch=4),
            telemetry=TelemetrySpec(trace=True),
        )
        summary = self.run_armed(spec)
        names = {span.name for span in summary.spans}
        assert {"queue-wait", "prefill", "decode", "decode-step"} <= names
        validate_chrome_trace(chrome_trace_events([("cell", summary)]))

    def test_cluster_trace_prefixes_node_tracks(self):
        spec = serving_spec(
            telemetry=TelemetrySpec(trace=True),
            cluster=ClusterSpec(replicas=2, router="round-robin"),
        )
        summary = self.run_armed(spec)
        tracks = {span.track for span in summary.spans}
        assert any(track.startswith("node0/") for track in tracks)
        assert any(track.startswith("node1/") for track in tracks)
        assert dict(summary.counters)["requests_injected"] > 0
        assert any(name == "routable_nodes" for name, _ in summary.series)
        validate_chrome_trace(chrome_trace_events([("cell", summary)]))

    def test_zero_width_and_nested_spans_export_cleanly(self):
        env = Environment()
        recorder = TraceRecorder(env)
        recorder.add("req", "queue-wait", 0.0, 0.0)
        recorder.begin("req", "execute")
        recorder.begin("req", "layer:conv1")
        env._now = 1e-6  # noqa: SLF001 - direct clock poke in a unit test
        recorder.end("req")
        recorder.end("req")
        recorder.add("req", "decode", 1e-6, 1e-6)
        summary = TelemetrySummary(
            policy_label="telemetry(trace)", sample_rate=1.0,
            sampled_requests=1, total_requests=1,
            spans=tuple(recorder.spans),
        )
        validate_chrome_trace(chrome_trace_events([("cell", summary)]))

    def test_metrics_csv_shape(self):
        summary = self.run_armed(
            serving_spec(telemetry=TelemetrySpec(metrics_interval_s=5e-5))
        )
        text = telemetry_series_to_csv([("cell", summary)])
        lines = text.strip().splitlines()
        assert lines[0] == "cell,series,t_s,value"
        assert len(lines) > 1
        assert lines[1].startswith("cell,")


class TestSparklines:
    def test_sparkline_resamples_to_width(self):
        assert len(sparkline([0.0, 1.0] * 64, width=16)) == 16

    def test_render_includes_min_max(self):
        block = render_sparklines(
            (("queue_depth", ((0.0, 0.0), (1.0, 4.0))),)
        )
        assert "queue_depth" in block
        assert "max 4" in block

    def test_registry_samples_gauges(self):
        env = Environment()
        registry = MetricsRegistry()
        registry.gauge("depth", lambda: env.now * 10)
        registry.start_sampler(env, interval_s=0.1)

        def window():
            yield env.timeout(0.35)

        done = env.process(window())
        env.run_until_event(done, limit=1.0)
        (name, samples), = (
            (n, s) for n, s in registry.series.items() if n == "depth"
        )
        assert len(samples) >= 3


class TestCLI:
    def test_study_trace_export(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            serving_spec(telemetry=TelemetrySpec(trace=True)).to_dict()
        ))
        out_path = tmp_path / "trace.json"
        csv_path = tmp_path / "metrics.csv"
        assert main([
            "study", str(spec_path),
            "--trace", str(out_path), "--metrics-csv", str(csv_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        validate_chrome_trace(doc["traceEvents"])
        assert csv_path.read_text().startswith("cell,series,t_s,value")
        out = capsys.readouterr().out
        assert "telemetry [" in out
        assert "requests traced" in out

    def test_trace_without_telemetry_fails(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(serving_spec().to_dict()))
        assert main([
            "study", str(spec_path), "--trace", str(tmp_path / "out.json"),
        ]) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_dry_run_annotates_telemetry(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            serving_spec(telemetry=TelemetrySpec(trace=True)).to_dict()
        ))
        assert main(["study", str(spec_path), "--dry-run"]) == 0
        assert "telemetry: telemetry(trace)" in capsys.readouterr().out

    def test_json_export_carries_telemetry_block(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            serving_spec(telemetry=TelemetrySpec(trace=True)).to_dict()
        ))
        json_path = tmp_path / "results.json"
        assert main([
            "study", str(spec_path), "--json", str(json_path),
        ]) == 0
        (record,) = json.loads(json_path.read_text())
        block = record["telemetry"]
        assert block["span_count"] > 0
        assert block["counters"]["requests_injected"] > 0
        assert "queue_depth" in block["series"]
