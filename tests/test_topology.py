"""Interposer floorplan."""

import pytest

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.errors import ConfigurationError
from repro.interposer.topology import build_floorplan


class TestFloorplan:
    def test_nine_sites_on_3x3_grid(self, floorplan):
        assert len(floorplan.sites) == 9
        assert floorplan.grid_width == 3
        assert floorplan.grid_height == 3

    def test_one_memory_eight_compute(self, floorplan):
        assert len(floorplan.memory_sites) == 1
        assert len(floorplan.compute_sites) == 8

    def test_memory_takes_the_center(self, floorplan):
        memory = floorplan.memory_sites[0]
        assert (memory.grid_x, memory.grid_y) == (1, 1)

    def test_chiplet_ids_follow_groups(self, floorplan):
        ids = {site.chiplet_id for site in floorplan.sites}
        assert "mem-0" in ids
        assert "3x3 conv-0" in ids
        assert "3x3 conv-2" in ids
        assert "dense100-1" in ids
        assert "7x7 conv-0" in ids

    def test_kind_census_matches_table1(self, floorplan):
        kinds = [site.kind for site in floorplan.compute_sites]
        assert kinds.count("3x3 conv") == 3
        assert kinds.count("5x5 conv") == 2
        assert kinds.count("7x7 conv") == 1
        assert kinds.count("dense100") == 2

    def test_unknown_chiplet_rejected(self, floorplan):
        with pytest.raises(ConfigurationError):
            floorplan.site("gpu-0")

    def test_hops_from_memory_bounded(self, floorplan):
        for site in floorplan.compute_sites:
            hops = floorplan.manhattan_hops("mem-0", site.chiplet_id)
            assert 1 <= hops <= 2  # center reaches everything in <= 2

    def test_hops_symmetric(self, floorplan):
        a, b = "3x3 conv-0", "dense100-0"
        assert floorplan.manhattan_hops(a, b) == floorplan.manhattan_hops(b, a)

    def test_distance_uses_pitch(self, floorplan):
        site = floorplan.compute_sites[0]
        hops = floorplan.manhattan_hops("mem-0", site.chiplet_id)
        assert floorplan.manhattan_distance_mm(
            "mem-0", site.chiplet_id
        ) == pytest.approx(hops * DEFAULT_PLATFORM.chiplet_pitch_mm)

    def test_waveguide_longer_than_manhattan(self, floorplan):
        site = floorplan.compute_sites[-1]
        direct_m = (
            floorplan.manhattan_distance_mm("mem-0", site.chiplet_id) * 1e-3
        )
        assert floorplan.waveguide_length_m(
            "mem-0", site.chiplet_id
        ) >= direct_m

    def test_broadcast_waveguide_covers_grid(self, floorplan):
        length_m = floorplan.broadcast_waveguide_length_m("mem-0")
        # Serpentine over 9 slots at 8 mm pitch with 1.2 detour = 86.4 mm.
        assert length_m == pytest.approx(0.0864, rel=1e-6)

    def test_larger_platform_gets_larger_grid(self):
        config = PlatformConfig(n_memory_chiplets=2)
        floorplan = build_floorplan(config)
        assert len(floorplan.sites) == 10
        assert floorplan.grid_width * floorplan.grid_height >= 10
        assert len(floorplan.memory_sites) == 2
