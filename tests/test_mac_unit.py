"""Functional photonic MAC unit: analog dot products through device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mac_unit import MacUnitSpec, PhotonicMacUnit
from repro.errors import ConfigurationError

unit_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=9
)


@pytest.fixture
def unit9():
    return PhotonicMacUnit(MacUnitSpec(vector_length=9, kernel_size=3))


class TestSpec:
    def test_kind_strings(self):
        assert MacUnitSpec(9, kernel_size=3).kind == "3x3 conv"
        assert MacUnitSpec(100).kind == "dense100"

    def test_ops_per_second(self):
        spec = MacUnitSpec(vector_length=9, mac_rate_hz=2e9)
        assert spec.ops_per_second == pytest.approx(18e9)

    def test_invalid_vector_length(self):
        with pytest.raises(ConfigurationError):
            MacUnitSpec(vector_length=0)

    def test_invalid_converter_bits(self):
        with pytest.raises(ConfigurationError):
            MacUnitSpec(vector_length=4, dac_bits=0)
        with pytest.raises(ConfigurationError):
            MacUnitSpec(vector_length=4, adc_bits=20)


class TestDotProduct:
    def test_exact_on_lattice_values(self, unit9):
        # Values on the 8-bit DAC lattice survive quantisation exactly.
        acts = [1.0, 0.0, 1.0]
        weights = [1.0, 1.0, 0.0]
        assert unit9.dot(acts, weights) == pytest.approx(1.0, abs=0.02)

    def test_matches_numpy_within_quantization(self, unit9):
        rng = np.random.default_rng(7)
        acts = rng.uniform(0, 1, 9)
        weights = rng.uniform(0, 1, 9)
        expected = float(np.dot(acts, weights))
        measured = unit9.dot(acts, weights)
        # 8-bit operands + 8-bit ADC on a 9-lane sum.
        assert measured == pytest.approx(expected, abs=0.05)

    @settings(max_examples=50)
    @given(unit_vectors)
    def test_self_dot_bounded(self, values):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        result = unit.dot(values, values)
        assert -0.05 <= result <= len(values) + 0.05

    @settings(max_examples=50)
    @given(unit_vectors)
    def test_zero_weights_kill_signal(self, acts):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        result = unit.dot(acts, [0.0] * len(acts))
        assert result == pytest.approx(0.0, abs=0.02 * len(acts))

    def test_length_mismatch_rejected(self, unit9):
        with pytest.raises(ConfigurationError):
            unit9.dot([0.5, 0.5], [0.5])

    def test_vector_too_long_rejected(self, unit9):
        with pytest.raises(ConfigurationError):
            unit9.dot([0.5] * 10, [0.5] * 10)

    def test_out_of_range_rejected(self, unit9):
        with pytest.raises(ConfigurationError):
            unit9.dot([1.5, 0.0], [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            unit9.dot([0.5, 0.5], [-0.1, 0.5])

    def test_lower_resolution_dac_coarser(self):
        fine = PhotonicMacUnit(MacUnitSpec(vector_length=4, dac_bits=8))
        coarse = PhotonicMacUnit(MacUnitSpec(vector_length=4, dac_bits=2))
        acts = [0.37, 0.61, 0.12, 0.88]
        weights = [0.5, 0.4, 0.9, 0.2]
        expected = float(np.dot(acts, weights))
        assert abs(coarse.dot(acts, weights) - expected) >= (
            abs(fine.dot(acts, weights) - expected) - 1e-9
        )


class TestSignedAndMatvec:
    def test_signed_dot(self):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        acts = [0.5, -0.5, 0.25]
        weights = [-1.0, 0.5, 0.5]
        expected = np.dot(acts, weights)
        assert unit.dot_signed(acts, weights) == pytest.approx(
            float(expected), abs=0.05
        )

    def test_signed_rejects_out_of_range(self):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=4))
        with pytest.raises(ConfigurationError):
            unit.dot_signed([1.5], [0.5])

    def test_matvec_matches_numpy(self):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        rng = np.random.default_rng(3)
        matrix = rng.uniform(-1, 1, (4, 21))  # forces chunking (21 > 9)
        vector = rng.uniform(-1, 1, 21)
        expected = matrix @ vector
        measured = unit.matvec(matrix, vector)
        np.testing.assert_allclose(measured, expected, atol=0.2)

    def test_matvec_shape_check(self):
        unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        with pytest.raises(ConfigurationError):
            unit.matvec(np.ones((2, 3)), np.ones(4))


class TestPhysicalAccounting:
    def test_ring_count(self, unit9):
        assert unit9.n_rings == 18

    def test_energy_per_op_scales_with_lanes(self):
        small = PhotonicMacUnit(MacUnitSpec(vector_length=9))
        big = PhotonicMacUnit(MacUnitSpec(vector_length=100))
        assert big.energy_per_vector_op_j() > small.energy_per_vector_op_j()

    def test_energy_positive_picojoule_scale(self, unit9):
        energy = unit9.energy_per_vector_op_j()
        assert 1e-12 < energy < 1e-9
