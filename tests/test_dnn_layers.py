"""DNN layer algebra: shapes, parameters, MACs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnn.layers import (
    Activation,
    Add,
    AveragePooling2D,
    BatchNormalization,
    Concatenate,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAveragePooling2D,
    Input,
    MaxPooling2D,
    ZeroPadding2D,
)
from repro.errors import ShapeError


class TestConv2D:
    def test_same_padding_preserves_spatial(self):
        conv = Conv2D(16, 3, padding="same")
        assert conv.infer_shape([(32, 32, 3)]) == (32, 32, 16)

    def test_valid_padding_shrinks(self):
        conv = Conv2D(6, 5, padding="valid")
        assert conv.infer_shape([(32, 32, 1)]) == (28, 28, 6)

    def test_stride_two_same_padding_ceils(self):
        conv = Conv2D(8, 3, strides=2, padding="same")
        assert conv.infer_shape([(7, 7, 4)]) == (4, 4, 8)

    def test_stride_two_valid(self):
        conv = Conv2D(64, 7, strides=2, padding="valid")
        assert conv.infer_shape([(230, 230, 3)]) == (112, 112, 64)

    def test_params_with_bias(self):
        conv = Conv2D(6, 5)
        assert conv.param_count([(32, 32, 3)]) == 5 * 5 * 3 * 6 + 6

    def test_params_without_bias(self):
        conv = Conv2D(6, 5, use_bias=False)
        assert conv.param_count([(32, 32, 3)]) == 5 * 5 * 3 * 6

    def test_macs(self):
        conv = Conv2D(16, 3, padding="same")
        # 32*32 outputs x 16 filters x 3*3*3 dot length.
        assert conv.mac_count([(32, 32, 3)]) == 32 * 32 * 16 * 27

    def test_grouped_conv_params(self):
        conv = Conv2D(8, 3, groups=2, use_bias=False)
        assert conv.param_count([(8, 8, 4)]) == 3 * 3 * 2 * 8

    def test_groups_must_divide_channels(self):
        conv = Conv2D(9, 3, groups=3)
        with pytest.raises(ShapeError):
            conv.infer_shape([(8, 8, 4)])

    def test_groups_must_divide_filters_at_construction(self):
        with pytest.raises(ShapeError):
            Conv2D(8, 3, groups=3)

    def test_kernel_larger_than_valid_input_rejected(self):
        conv = Conv2D(4, 7, padding="valid")
        with pytest.raises(ShapeError):
            conv.infer_shape([(5, 5, 3)])

    def test_needs_hwc_input(self):
        with pytest.raises(ShapeError):
            Conv2D(4, 3).infer_shape([(100,)])

    def test_unknown_padding_rejected(self):
        conv = Conv2D(4, 3, padding="reflect")
        with pytest.raises(ShapeError):
            conv.infer_shape([(8, 8, 3)])

    def test_is_conv_flag(self):
        assert Conv2D(4, 3).is_conv
        assert not Conv2D(4, 3).is_fc

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=3),
    )
    def test_macs_equal_params_times_positions_unbiased(
        self, filters, kernel, stride
    ):
        conv = Conv2D(filters, kernel, strides=stride, padding="same",
                      use_bias=False)
        shape = (16, 16, 8)
        out_h, out_w, _ = conv.infer_shape([shape])
        assert conv.mac_count([shape]) == (
            conv.param_count([shape]) * out_h * out_w
        )


class TestDepthwiseConv2D:
    def test_preserves_channels(self):
        dw = DepthwiseConv2D(3)
        assert dw.infer_shape([(16, 16, 32)]) == (16, 16, 32)

    def test_depth_multiplier(self):
        dw = DepthwiseConv2D(3, depth_multiplier=2)
        assert dw.infer_shape([(16, 16, 32)]) == (16, 16, 64)

    def test_params_no_bias(self):
        dw = DepthwiseConv2D(3, use_bias=False)
        assert dw.param_count([(16, 16, 32)]) == 3 * 3 * 32

    def test_macs_independent_of_channel_mixing(self):
        dw = DepthwiseConv2D(3, use_bias=False)
        assert dw.mac_count([(16, 16, 32)]) == 16 * 16 * 32 * 9

    def test_counts_as_conv(self):
        assert DepthwiseConv2D(3).is_conv


class TestDense:
    def test_shape(self):
        assert Dense(10).infer_shape([(84,)]) == (10,)

    def test_params(self):
        assert Dense(10).param_count([(84,)]) == 84 * 10 + 10

    def test_macs(self):
        assert Dense(10).mac_count([(84,)]) == 840

    def test_rejects_feature_maps(self):
        with pytest.raises(ShapeError):
            Dense(10).infer_shape([(8, 8, 3)])

    def test_is_fc(self):
        assert Dense(10).is_fc
        assert not Dense(10).is_conv


class TestPoolingAndPadding:
    def test_maxpool_default_stride(self):
        assert MaxPooling2D(2).infer_shape([(8, 8, 4)]) == (4, 4, 4)

    def test_avgpool_stride_override(self):
        pool = AveragePooling2D(3, strides=2)
        assert pool.infer_shape([(9, 9, 2)]) == (4, 4, 2)

    def test_zero_padding_symmetric(self):
        assert ZeroPadding2D(3).infer_shape([(224, 224, 3)]) == (230, 230, 3)

    def test_zero_padding_asymmetric(self):
        pad = ZeroPadding2D(((0, 1), (0, 1)))
        assert pad.infer_shape([(224, 224, 3)]) == (225, 225, 3)

    def test_global_average_pooling(self):
        gap = GlobalAveragePooling2D()
        assert gap.infer_shape([(7, 7, 2048)]) == (2048,)

    def test_flatten(self):
        assert Flatten().infer_shape([(5, 5, 16)]) == (400,)

    def test_pools_have_no_params(self):
        assert MaxPooling2D(2).param_count([(8, 8, 4)]) == 0


class TestJoinsAndNorm:
    def test_add_requires_same_shapes(self):
        add = Add()
        assert add.infer_shape([(8, 8, 4), (8, 8, 4)]) == (8, 8, 4)
        with pytest.raises(ShapeError):
            add.infer_shape([(8, 8, 4), (8, 8, 5)])

    def test_add_requires_two_inputs(self):
        with pytest.raises(ShapeError):
            Add().infer_shape([(8, 8, 4)])

    def test_concat_sums_channels(self):
        concat = Concatenate()
        assert concat.infer_shape([(8, 8, 4), (8, 8, 12)]) == (8, 8, 16)

    def test_concat_requires_same_spatial(self):
        with pytest.raises(ShapeError):
            Concatenate().infer_shape([(8, 8, 4), (4, 4, 4)])

    def test_batchnorm_four_params_per_channel(self):
        bn = BatchNormalization()
        assert bn.param_count([(8, 8, 64)]) == 256

    def test_batchnorm_preserves_shape(self):
        assert BatchNormalization().infer_shape([(8, 8, 64)]) == (8, 8, 64)

    def test_activation_free(self):
        act = Activation("relu")
        assert act.infer_shape([(8, 8, 4)]) == (8, 8, 4)
        assert act.param_count([(8, 8, 4)]) == 0
        assert act.mac_count([(8, 8, 4)]) == 0

    def test_input_layer(self):
        layer = Input((32, 32, 3))
        assert layer.infer_shape([]) == (32, 32, 3)
        with pytest.raises(ShapeError):
            layer.infer_shape([(1,)])
