"""Interposer reconfiguration controllers (ReSiPI / PROWAVES / static)."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.interposer.photonic.controllers import (
    ProwavesController,
    ReSiPIController,
    StaticController,
)
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment


def make_stack(controller_cls):
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
    controller = controller_cls(env, fabric, DEFAULT_PLATFORM)
    return env, fabric, controller


def drive_traffic(env, fabric, bits, chiplet="3x3 conv-0", repeat=3):
    """Generate several rounds of read traffic."""

    def workload():
        for _ in range(repeat):
            yield fabric.read(chiplet, bits)

    return env.process(workload())


class TestReSiPI:
    def test_starts_minimal(self):
        _, fabric, _ = make_stack(ReSiPIController)
        assert fabric.active_memory_gateways.value == 1.0
        for chiplet_id in fabric.inventories:
            assert fabric.active_write_gateways[chiplet_id].value == 1.0

    def test_high_demand_activates_gateways(self):
        env, fabric, controller = make_stack(ReSiPIController)
        # ~6 Tb/s offered read load, far above one gateway's 768 Gb/s.
        done = drive_traffic(env, fabric, bits=50e6, repeat=6)
        env.run_until_event(done, limit=1.0)
        peak_memory_gateways = max(
            decisions["mem"] for decisions in controller.decision_log
        )
        assert peak_memory_gateways > 1

    def test_idle_epochs_deactivate(self):
        env, fabric, controller = make_stack(ReSiPIController)
        done = drive_traffic(env, fabric, bits=50e6, repeat=3)
        env.run_until_event(done, limit=1.0)

        def idle():
            yield env.timeout(5e-6)  # five silent epochs

        idle_done = env.process(idle())
        env.run_until_event(idle_done, limit=1.0)
        assert controller.decision_log[-1]["mem"] == 1
        assert fabric.active_memory_gateways.value == 1.0

    def test_decisions_logged_every_epoch(self):
        env, fabric, controller = make_stack(ReSiPIController)
        done = drive_traffic(env, fabric, bits=1e6)
        env.run_until_event(done, limit=1.0)

        def wait():
            yield env.timeout(3e-6)

        env.run_until_event(env.process(wait()), limit=1.0)
        assert len(controller.decision_log) >= 3

    def test_gateways_never_exceed_inventory(self):
        env, fabric, controller = make_stack(ReSiPIController)
        done = drive_traffic(env, fabric, bits=500e6, repeat=4)
        env.run_until_event(done, limit=1.0)
        maximum = DEFAULT_PLATFORM.n_memory_write_gateways
        for decisions in controller.decision_log:
            assert 1 <= decisions["mem"] <= maximum


class TestProwaves:
    def test_starts_with_one_wavelength(self):
        _, fabric, _ = make_stack(ProwavesController)
        one_lambda = (
            DEFAULT_PLATFORM.n_memory_write_gateways
            * DEFAULT_PLATFORM.wavelength_data_rate_bps
        )
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            one_lambda
        )

    def test_demand_raises_wavelength_fraction(self):
        env, fabric, controller = make_stack(ProwavesController)
        done = drive_traffic(env, fabric, bits=100e6, repeat=4)
        env.run_until_event(done, limit=1.0)
        assert max(controller.decision_log) > 1.0 / DEFAULT_PLATFORM.n_wavelengths

    def test_fraction_bounded(self):
        env, fabric, controller = make_stack(ProwavesController)
        done = drive_traffic(env, fabric, bits=800e6, repeat=4)
        env.run_until_event(done, limit=1.0)
        for fraction in controller.decision_log:
            assert 0.0 < fraction <= 1.0

    def test_all_gateways_stay_active(self):
        env, fabric, _ = make_stack(ProwavesController)
        done = drive_traffic(env, fabric, bits=10e6)
        env.run_until_event(done, limit=1.0)
        assert fabric.active_memory_gateways.value == float(
            DEFAULT_PLATFORM.n_memory_write_gateways
        )


class TestStatic:
    def test_everything_stays_on(self):
        env, fabric, _ = make_stack(StaticController)
        done = drive_traffic(env, fabric, bits=10e6)
        env.run_until_event(done, limit=1.0)
        assert fabric.active_memory_gateways.value == float(
            DEFAULT_PLATFORM.n_memory_write_gateways
        )
        assert fabric.reconfiguration_count == 0

    def test_epochs_still_drained(self):
        env, fabric, _ = make_stack(StaticController)
        done = drive_traffic(env, fabric, bits=1e6)
        env.run_until_event(done, limit=1.0)

        def wait():
            yield env.timeout(4e-6)

        env.run_until_event(env.process(wait()), limit=1.0)
        assert len(fabric.monitor.history) >= 4


class TestPolicyComparison:
    def test_resipi_saves_static_energy_vs_static(self):
        """The core ReSiPI claim: gateway gating cuts network power."""
        results = {}
        for name, cls in (("resipi", ReSiPIController),
                          ("static", StaticController)):
            env, fabric, _ = make_stack(cls)
            done = drive_traffic(env, fabric, bits=1e6, repeat=2)
            env.run_until_event(done, limit=1.0)

            def tail():
                yield env.timeout(20e-6)

            env.run_until_event(env.process(tail()), limit=1.0)
            results[name] = fabric.energy_report().static_energy_j
        assert results["resipi"] < results["static"]
