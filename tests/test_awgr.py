"""AWGR interposer fabric and platform variant."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.accelerator import CrossLight25DAWGR, CrossLight25DSiPh
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.interposer.photonic.awgr import (
    AWGRInterposerFabric,
    awgr_link_budget,
)
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment


def make_awgr():
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    fabric = AWGRInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
    return env, fabric


class TestFabric:
    def test_wavelength_slice(self):
        _, fabric = make_awgr()
        # 64 wavelengths over 9 ports -> 7 per ordered pair.
        assert fabric.n_ports == 9
        assert fabric.wavelengths_per_pair == 7

    def test_pair_channel_bandwidth(self):
        _, fabric = make_awgr()
        channel = fabric._channel("mem-0", "3x3 conv-0")
        assert channel.bandwidth_bps == pytest.approx(7 * 12e9)

    def test_read_completes(self):
        env, fabric = make_awgr()
        done = fabric.read("3x3 conv-0", 1e6)
        env.run()
        assert done.processed
        assert fabric.bits_read == 1e6

    def test_write_completes(self):
        env, fabric = make_awgr()
        done = fabric.write("5x5 conv-0", 1e6)
        env.run()
        assert done.processed

    def test_multicast_is_parallel_not_shared(self):
        """Per-pair channels replicate traffic but run concurrently."""
        group = ("3x3 conv-0", "3x3 conv-1", "3x3 conv-2")
        env1, fabric1 = make_awgr()
        fabric1.read(group[0], 5e6)
        t_one = env1.run()
        env2, fabric2 = make_awgr()
        fabric2.read(group[0], 5e6, multicast=group)
        t_three = env2.run()
        assert fabric2.bits_read == pytest.approx(15e6)
        # Dedicated slices: three destinations barely slower than one
        # (HBM stage is shared, pair channels are not).
        assert t_three < 2.0 * t_one

    def test_reads_to_distinct_destinations_do_not_contend(self):
        env, fabric = make_awgr()
        fabric.read("3x3 conv-0", 10e6)
        fabric.read("3x3 conv-1", 10e6)
        total = env.run()
        single_pair_time = 10e6 / (7 * 12e9)
        # Far less than serial (2x) execution on one shared channel.
        assert total < 1.6 * single_pair_time

    def test_slower_than_resipi_per_destination(self):
        """The hub-pattern disadvantage: one destination gets only its
        slice, while the ReSiPI fabric can focus full gateways."""
        from repro.interposer.photonic.fabric import (
            PhotonicInterposerFabric,
        )

        env1, awgr = make_awgr()
        awgr.read("3x3 conv-0", 100e6)
        t_awgr = env1.run()

        env2 = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        resipi = PhotonicInterposerFabric(env2, DEFAULT_PLATFORM, floorplan)
        resipi.read("3x3 conv-0", 100e6)
        t_resipi = env2.run()
        assert t_awgr > 3.0 * t_resipi

    def test_energy_report_always_on(self):
        env, fabric = make_awgr()
        fabric.read("7x7 conv-0", 1e6)
        env.run()
        report = fabric.energy_report()
        assert report.static_energy_j > 0
        assert report.dynamic_energy_j > 0
        assert "ring_trimming" in report.breakdown_j

    def test_link_budget_contains_awgr_loss(self, floorplan):
        budget = awgr_link_budget(DEFAULT_PLATFORM, floorplan)
        assert budget.breakdown()["awgr"] == 3.0
        assert budget.total_loss_db > 5.0


class TestPlatform:
    @pytest.fixture(scope="class")
    def results(self):
        workload = extract_workload(zoo.build("MobileNetV2"))
        return {
            "awgr": CrossLight25DAWGR().run_workload(workload),
            "resipi": CrossLight25DSiPh().run_workload(workload),
        }

    def test_runs_and_reports(self, results):
        awgr = results["awgr"]
        assert awgr.platform == "2.5D-CrossLight-AWGR"
        assert awgr.latency_s > 0
        assert awgr.total_energy_j > 0

    def test_hub_traffic_favors_resipi(self, results):
        assert results["resipi"].latency_s < results["awgr"].latency_s

    def test_no_reconfigurations_on_passive_awgr(self, results):
        assert results["awgr"].reconfigurations == 0
