"""Declarative spec layer: round trips, validation, digests, registries."""

import json
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError, SpecError, UnknownNameError
from repro.studies import (
    ARRIVALS,
    BATCH_POLICIES,
    CONTROLLERS,
    MODELS,
    PLATFORMS,
    ModelTraffic,
    PlatformSpec,
    Registry,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    spec_digest,
)
from repro.studies.builders import (
    multi_tenant_mix_spec,
    run_spec,
    serve_study_spec,
    slo_attainment_sweep_spec,
    wavelength_sweep_spec,
)


def rich_spec() -> StudySpec:
    """A spec exercising every section: mix, SLOs, sweep, residency."""
    return StudySpec(
        name="rich",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model="LeNet5", fraction=0.7, slo_s=1e-4,
                             priority=1),
                ModelTraffic(model="ResNet50", fraction=0.3, slo_s=5e-3),
            ),
            arrival="mmpp",
            rate_rps=5e4,
            duration_s=1e-3,
            seed=11,
            burstiness=6.0,
        ),
        platform=PlatformSpec(name="2.5D-CrossLight-SiPh",
                              controller="prowaves", n_wavelengths=32),
        scheduler=SchedulerSpec(policy="edf", max_inflight=2,
                                shed_expired=True),
        sweep=SweepSpec(axes=(
            SweepAxis(field="scheduler.policy", values=("fifo", "edf")),
            SweepAxis(field="workload.rate_rps", values=(5e4, 1e5)),
        )),
        residency_capacity_bits=1e9,
    )


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = rich_spec()
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip_is_identity(self):
        spec = rich_spec()
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_builders_round_trip(self):
        for spec in (
            run_spec("LeNet5", "CrossLight"),
            wavelength_sweep_spec("LeNet5", (8, 16)),
            serve_study_spec("LeNet5", ("CrossLight",), ("resipi",),
                             SchedulerSpec(), (1e5,)),
            multi_tenant_mix_spec(),
            slo_attainment_sweep_spec(),
        ):
            assert StudySpec.from_json(spec.to_json()) == spec

    def test_dict_is_json_native(self):
        # No tuples or objects survive into the serialised form.
        text = json.dumps(rich_spec().to_dict())
        assert json.loads(text) == rich_spec().to_dict()


class TestValidation:
    def test_unknown_top_level_field_rejected(self):
        data = rich_spec().to_dict()
        data["platfrom"] = {"name": "CrossLight"}
        with pytest.raises(SpecError, match="platfrom"):
            StudySpec.from_dict(data)

    def test_unknown_nested_fields_rejected(self):
        for section, field in (
            ("workload", "rate"),
            ("platform", "wavelengths"),
            ("scheduler", "policy_name"),
        ):
            data = rich_spec().to_dict()
            data[section][field] = 1
            with pytest.raises(SpecError, match=field):
                StudySpec.from_dict(data)

    def test_unknown_model_entry_field_rejected(self):
        data = rich_spec().to_dict()
        data["workload"]["models"][0]["slo"] = 1.0
        with pytest.raises(SpecError, match="slo"):
            StudySpec.from_dict(data)

    def test_unknown_sweep_axis_field_rejected(self):
        data = rich_spec().to_dict()
        data["sweep"]["axes"][0]["vals"] = [1]
        with pytest.raises(SpecError, match="vals"):
            StudySpec.from_dict(data)

    def test_missing_required_sections_rejected(self):
        with pytest.raises(SpecError, match="workload"):
            StudySpec.from_dict({"name": "x"})
        with pytest.raises(SpecError, match="models"):
            StudySpec.from_dict({"name": "x", "workload": {}})

    def test_schema_version_guard(self):
        data = rich_spec().to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError, match="schema"):
            StudySpec.from_dict(data)

    def test_bad_values_rejected(self):
        with pytest.raises(SpecError):
            ModelTraffic(model="LeNet5", fraction=1.5)
        with pytest.raises(SpecError):
            ModelTraffic(model="LeNet5", slo_s=0.0)
        with pytest.raises(SpecError):
            WorkloadSpec(models=())
        with pytest.raises(SpecError):
            WorkloadSpec(models=(ModelTraffic(model="a"),
                                 ModelTraffic(model="a")))
        with pytest.raises(SpecError):
            StudySpec(name="", workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),)))
        with pytest.raises(SpecError, match="kind"):
            StudySpec(name="x", kind="banana", workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),)))

    def test_serving_fractions_must_sum_to_one(self):
        workload = WorkloadSpec(models=(
            ModelTraffic(model="LeNet5", fraction=0.5),
            ModelTraffic(model="ResNet50", fraction=0.3),
        ))
        with pytest.raises(SpecError, match="sum"):
            StudySpec(name="x", kind="serving", workload=workload)
        # Inference studies ignore fractions: same mix is fine there.
        StudySpec(name="x", kind="inference", workload=workload)

    def test_kind_inapplicable_fields_rejected(self):
        """Fields the study kind would ignore must not silently no-op."""
        plain = WorkloadSpec(models=(ModelTraffic(model="LeNet5"),))
        with pytest.raises(SpecError, match="serving"):
            StudySpec(name="x", kind="inference", workload=plain,
                      scheduler=SchedulerSpec(policy="edf"))
        with pytest.raises(SpecError, match="serving"):
            StudySpec(name="x", kind="inference", workload=plain,
                      residency_capacity_bits=1e9)
        with pytest.raises(SpecError, match="serving"):
            StudySpec(name="x", kind="inference", workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5", slo_s=1e-4),)))
        with pytest.raises(SpecError, match="serving"):
            StudySpec(name="x", kind="inference", workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),), arrival="mmpp"))
        with pytest.raises(SpecError, match="batch_size"):
            StudySpec(name="x", kind="serving", workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),), batch_size=4))

    def test_batching_knobs_rejected_off_max_batch(self):
        with pytest.raises(SpecError, match="max_batch"):
            SchedulerSpec(policy="fifo", max_batch=4)
        with pytest.raises(SpecError, match="batch_timeout"):
            SchedulerSpec(policy="edf", batch_timeout_s=5e-5)
        SchedulerSpec(policy="max-batch", max_batch=4,
                      batch_timeout_s=5e-5)  # fine where it applies

    def test_duplicate_sweep_axes_rejected(self):
        axis = SweepAxis(field="workload.rate_rps", values=(1e5,))
        with pytest.raises(SpecError, match="duplicate"):
            SweepSpec(axes=(axis, axis))

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            StudySpec.from_json("{not json")


class TestOverridesAndExpansion:
    def test_override_nested_field(self):
        spec = rich_spec()
        bumped = spec.with_override("workload.rate_rps", 9e4)
        assert bumped.workload.rate_rps == 9e4
        assert spec.workload.rate_rps == 5e4  # original untouched

    def test_override_unknown_paths_rejected(self):
        spec = rich_spec()
        with pytest.raises(SpecError):
            spec.with_override("nonsense.rate_rps", 1)
        with pytest.raises(SpecError):
            spec.with_override("workload.nonsense", 1)
        with pytest.raises(SpecError):
            spec.with_override("name", "nope")
        with pytest.raises(SpecError):
            spec.with_override("workload.models", ())

    def test_override_revalidates(self):
        with pytest.raises(SpecError):
            rich_spec().with_override("workload.rate_rps", -1.0)

    def test_expand_orders_first_axis_outermost(self):
        points = rich_spec().expand()
        assert len(points) == 4
        combos = [
            (p.scheduler.policy, p.workload.rate_rps) for p in points
        ]
        assert combos == [
            ("fifo", 5e4), ("fifo", 1e5), ("edf", 5e4), ("edf", 1e5),
        ]
        assert all(not p.sweep.axes for p in points)

    def test_n_points(self):
        assert rich_spec().sweep.n_points == 4
        assert SweepSpec().n_points == 1


class TestDigest:
    def test_equal_specs_share_digest(self):
        assert spec_digest(rich_spec()) == spec_digest(rich_spec())

    def test_any_field_change_moves_digest(self):
        base = rich_spec()
        variants = [
            base.with_override("workload.rate_rps", 7e4),
            base.with_override("workload.seed", 12),
            base.with_override("workload.burstiness", 2.0),
            base.with_override("platform.controller", "resipi"),
            base.with_override("platform.n_wavelengths", 64),
            base.with_override("scheduler.policy", "priority"),
            base.with_override("scheduler.shed_expired", False),
            base.with_override("residency_capacity_bits", 2e9),
        ]
        digests = {spec_digest(base)} | {spec_digest(v) for v in variants}
        assert len(digests) == len(variants) + 1

    def test_model_entry_change_moves_digest(self):
        base = rich_spec()
        tweaked = StudySpec.from_dict({
            **base.to_dict(),
            "workload": {
                **base.to_dict()["workload"],
                "models": [
                    {"model": "LeNet5", "fraction": 0.7, "slo_s": 2e-4,
                     "priority": 1},
                    {"model": "ResNet50", "fraction": 0.3, "slo_s": 5e-3,
                     "priority": 0},
                ],
            },
        })
        assert spec_digest(tweaked) != spec_digest(base)

    def test_digest_stable_across_processes(self):
        spec = rich_spec()
        script = (
            "import json, sys\n"
            "from repro.studies import StudySpec, spec_digest\n"
            "spec = StudySpec.from_json(sys.stdin.read())\n"
            "print(spec_digest(spec))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], input=spec.to_json(),
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == spec_digest(spec)


class TestRegistries:
    def test_known_names_present(self):
        assert "CrossLight" in PLATFORMS
        assert "2.5D-CrossLight-SiPh" in PLATFORMS
        assert "LeNet5" in MODELS and "ResNet50" in MODELS
        assert set(CONTROLLERS.names()) == {"resipi", "prowaves", "static"}
        assert set(ARRIVALS.names()) == {"poisson", "mmpp", "closed"}
        assert set(BATCH_POLICIES.names()) == {
            "fifo", "max-batch", "edf", "priority", "continuous"
        }
        assert "TransformerTiny" in MODELS and "TransformerBase" in MODELS

    def test_unknown_name_is_typed_with_suggestion(self):
        with pytest.raises(UnknownNameError) as excinfo:
            MODELS.get("LeNet")
        error = excinfo.value
        assert isinstance(error, ConfigurationError)
        assert isinstance(error, KeyError)  # legacy callers keep working
        assert "LeNet5" in error.suggestions
        assert "did you mean" in str(error)
        assert "LeNet5" in str(error)

    def test_unknown_platform_suggests(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            PLATFORMS.get("2.5D-CrossLight-Siph")

    def test_register_plugin_and_refuse_shadowing(self):
        registry = Registry("demo", {"a": int})
        registry.register("b", float)
        assert registry.get("b") is float
        assert registry.names() == ("a", "b")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", str)
        registry.register("a", str, overwrite=True)
        assert registry.get("a") is str
        assert len(registry) == 2
        assert list(registry) == ["a", "b"]
