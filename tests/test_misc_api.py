"""Small API contracts not covered elsewhere."""

import pytest

from repro import __version__
from repro.core.metrics import EnergyBreakdown, InferenceResult
from repro.dnn.layers import Conv2D, LayerStats
from repro.interposer.base import NetworkEnergyReport
from repro.photonics.modulation import SCHEMES, ModulationScheme
from repro.sim.core import Environment
from repro.sim.resources import BandwidthChannel


class TestPackage:
    def test_version(self):
        assert __version__ == "1.0.0"

    def test_top_level_exports(self):
        import repro

        assert hasattr(repro, "CrossLight25DSiPh")
        assert hasattr(repro, "PlatformConfig")


class TestNetworkEnergyReport:
    def test_totals(self):
        report = NetworkEnergyReport(
            elapsed_s=2.0, static_energy_j=4.0, dynamic_energy_j=2.0
        )
        assert report.total_energy_j == 6.0
        assert report.average_power_w == pytest.approx(3.0)

    def test_zero_elapsed(self):
        report = NetworkEnergyReport(
            elapsed_s=0.0, static_energy_j=0.0, dynamic_energy_j=0.0
        )
        assert report.average_power_w == 0.0


class TestFabricBaseDefaults:
    def test_read_weights_delegates_to_read(self):
        from repro.interposer.base import InterposerFabric

        calls = []

        class Probe(InterposerFabric):
            def read(self, dst, bits, multicast=None):
                calls.append(("read", dst, bits))
                return Environment().event()

            def write(self, src, bits):
                return Environment().event()

            def energy_report(self):
                return NetworkEnergyReport(0.0, 0.0, 0.0)

        probe = Probe(Environment())
        probe.read_weights("c0", 128.0)
        assert calls == [("read", "c0", 128.0)]

    def test_total_bits_moved(self):
        from repro.interposer.base import InterposerFabric

        class Probe(InterposerFabric):
            def read(self, dst, bits, multicast=None):
                raise NotImplementedError

            def write(self, src, bits):
                raise NotImplementedError

            def energy_report(self):
                raise NotImplementedError

        probe = Probe(Environment())
        probe.bits_read = 10.0
        probe.bits_written = 5.0
        assert probe.total_bits_moved == 15.0


class TestResultFormatting:
    def _result(self):
        return InferenceResult(
            platform="TestPlat", model="TestModel", latency_s=1e-3,
            energy=EnergyBreakdown(1e-3, 1e-3, 1e-3, 1e-3, 1e-3),
            traffic_bits=1e6, layer_timeline=(),
        )

    def test_summary_row_fields(self):
        row = self._result().summary_row()
        assert "TestPlat" in row
        assert "TestModel" in row
        assert "ms" in row and "nJ/b" in row

    def test_derived_metrics(self):
        result = self._result()
        assert result.total_energy_j == pytest.approx(5e-3)
        assert result.average_power_w == pytest.approx(5.0)
        assert result.energy_per_bit_j == pytest.approx(5e-9)

    def test_zero_latency_guards(self):
        result = InferenceResult(
            platform="p", model="m", latency_s=0.0,
            energy=EnergyBreakdown(0, 0, 0, 0, 0),
            traffic_bits=0.0, layer_timeline=(),
        )
        assert result.average_power_w == 0.0
        assert result.energy_per_bit_j == 0.0
        assert result.throughput_inferences_per_s == 0.0


class TestMiscContracts:
    def test_modulation_registry(self):
        assert set(SCHEMES) == {
            ModulationScheme.OOK, ModulationScheme.PAM4,
        }

    def test_layer_repr(self):
        conv = Conv2D(4, 3, name="stem")
        assert "Conv2D" in repr(conv)
        assert "stem" in repr(conv)

    def test_layer_stats_elements(self):
        stats = LayerStats(
            name="x", kind="Conv2D", input_shapes=((4, 4, 2),),
            output_shape=(4, 4, 8), params=10, macs=100,
        )
        assert stats.input_elements == 32
        assert stats.output_elements == 128

    def test_channel_queue_length(self):
        env = Environment()
        channel = BandwidthChannel(env, 1.0)
        env.process(channel.transfer(10.0))
        env.process(channel.transfer(10.0))
        env.run(until=1.0)
        assert channel.queue_length >= 1
