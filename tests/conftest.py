"""Shared fixtures.

The session-scoped :func:`runner` fixture caches every (platform, model)
simulation, so the Fig. 7 / Table 3 / calibration tests share one run of
the evaluation matrix instead of re-simulating it per test file.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.experiments.runner import ExperimentRunner
from repro.interposer.topology import build_floorplan


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared, caching experiment runner for the whole session."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def floorplan():
    """The Table 1 floorplan."""
    return build_floorplan(DEFAULT_PLATFORM)


@pytest.fixture(scope="session")
def lenet_results(runner):
    """LeNet5 on all three platforms (cheap, used by several files)."""
    return {
        platform: runner.run(platform, "LeNet5")
        for platform in (
            "CrossLight",
            "2.5D-CrossLight-Elec",
            "2.5D-CrossLight-SiPh",
        )
    }
