"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.model == "ResNet50"
        assert args.platform == "siph"
        assert args.batch == 1

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "AlexNet"])

    def test_invalid_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--platform", "tpu"])

    def test_perf_options_default_off(self):
        for command in ("fig7", "table3", "calibrate", "dse"):
            args = build_parser().parse_args([command])
            assert args.jobs == 1
            assert args.cache_dir is None

    def test_perf_options_parse(self):
        args = build_parser().parse_args(
            ["dse", "--jobs", "8", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 8
        assert args.cache_dir == "/tmp/x"

    def test_serve_study_defaults(self):
        args = build_parser().parse_args(["serve-study"])
        assert args.model == "LeNet5"
        assert args.platforms == ["siph"]
        assert args.policy == "fifo"
        assert args.arrival == "poisson"
        assert args.rates == (20e3, 50e3, 100e3, 200e3)

    def test_serve_study_rates_parse(self):
        args = build_parser().parse_args(
            ["serve-study", "--rates", "1e4,5e4"]
        )
        assert args.rates == (1e4, 5e4)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-study", "--rates", "1e4,-2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-study", "--rates", "fast"])

    def test_serve_study_duration_and_timeout_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-study", "--duration-us", "0"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-study", "--batch-timeout-us", "-1"]
            )
        args = build_parser().parse_args(
            ["serve-study", "--batch-timeout-us", "0"]
        )
        assert args.batch_timeout_us == 0.0

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.check is False
        assert args.baseline == "BENCH_sim.json"
        assert args.only is None

    def test_bench_only_parses(self):
        args = build_parser().parse_args(["bench", "--only", "decode"])
        assert args.only == "decode"

    def test_run_takes_perf_options(self):
        args = build_parser().parse_args(
            ["run", "--jobs", "2", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 2
        assert args.cache_dir == "/tmp/c"

    def test_nonpositive_jobs_and_repeats_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--jobs", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--repeats", "0"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Number of wavelengths" in out
        assert "12 Gb/s" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "138,357,544" in out
        assert "NO" not in out

    def test_run_lenet_mono(self, capsys):
        assert main(["run", "--model", "LeNet5", "--platform", "mono"]) == 0
        out = capsys.readouterr().out
        assert "CrossLight" in out
        assert "inferences/s" in out

    def test_run_with_timeline(self, capsys):
        assert main([
            "run", "--model", "LeNet5", "--platform", "siph", "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "c1" in out
        assert "start(us)" in out

    def test_run_batched(self, capsys):
        assert main([
            "run", "--model", "LeNet5", "--platform", "elec", "--batch", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch 2" in out

    def test_run_awgr(self, capsys):
        assert main(["run", "--model", "LeNet5", "--platform", "awgr"]) == 0
        assert "AWGR" in capsys.readouterr().out

    def test_run_alternative_controller(self, capsys):
        assert main([
            "run", "--model", "LeNet5", "--platform", "siph",
            "--controller", "static",
        ]) == 0
        assert "static" in capsys.readouterr().out

    def test_dse_quantization(self, capsys):
        assert main([
            "dse", "--sweep", "quantization", "--model", "LeNet5",
        ]) == 0
        assert "uniform-8b" in capsys.readouterr().out

    def test_dse_with_jobs_and_cache(self, capsys, tmp_path):
        argv = [
            "dse", "--sweep", "wavelengths", "--model", "LeNet5",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0  # warm: served from the cache
        warm = capsys.readouterr().out

        # The sweep table is identical; only the trailing cache tally
        # flips from misses to hits.
        def split(text):
            table, _, tally = text.rpartition("\ncache: ")
            return table, tally

        assert split(warm)[0] == split(cold)[0]
        assert "0 hits" in split(cold)[1]
        assert "0 misses" in split(warm)[1]

    def test_dse_controllers(self, capsys):
        assert main([
            "dse", "--sweep", "controllers", "--model", "LeNet5",
        ]) == 0
        out = capsys.readouterr().out
        assert "resipi" in out
        assert "static" in out

    def test_serve_study_runs_and_exports(self, capsys, tmp_path):
        json_path = tmp_path / "curve.json"
        assert main([
            "serve-study", "--model", "LeNet5", "--platforms", "mono",
            "--rates", "1e5,3e5", "--duration-us", "300",
            "--policy", "max-batch", "--max-batch", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "goodput/s" in out
        assert "CrossLight" in out
        import json

        parsed = json.loads(json_path.read_text())
        assert len(parsed) == 2
        assert parsed[0]["policy"] == "max-batch(4)"

    def test_serve_study_closed_loop(self, capsys):
        assert main([
            "serve-study", "--model", "LeNet5", "--platforms", "mono",
            "--arrival", "closed", "--rates", "2e5",
            "--duration-us", "200",
        ]) == 0
        assert "CrossLight" in capsys.readouterr().out

    def test_dse_mapping(self, capsys):
        assert main([
            "dse", "--sweep", "mapping", "--model", "LeNet5",
        ]) == 0
        out = capsys.readouterr().out
        assert "spillover" in out
        assert "strict" in out

    def test_run_reports_cache_stats(self, capsys, tmp_path):
        argv = [
            "run", "--model", "LeNet5", "--platform", "mono",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "cache: 0 hits, 1 miss (1 simulated)" in (
            capsys.readouterr().out
        )
        assert main(argv) == 0
        assert "cache: 1 hit, 0 misses (0 simulated)" in (
            capsys.readouterr().out
        )

    def test_serve_study_reports_cache_stats(self, capsys, tmp_path):
        assert main([
            "serve-study", "--model", "LeNet5", "--platforms", "mono",
            "--rates", "1e5", "--duration-us", "200",
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert "cache: 0 hits, 1 miss (1 simulated)" in (
            capsys.readouterr().out
        )

    def test_study_prints_slowest_cells(self, capsys):
        assert main(["study", "examples/study_spec.json"]) == 0
        out = capsys.readouterr().out
        assert "slowest cells (top" in out
        assert " ms  " in out

    def test_bench_only_selects_by_substring(self, capsys):
        assert main([
            "bench", "--only", "kernel_event", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "test_bench_kernel_event_throughput" in out
        assert "test_bench_channel_contention" not in out

    def test_bench_only_without_match_fails(self, capsys):
        assert main(["bench", "--only", "nonexistent"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'nonexistent'" in err
        # the typed error lists every registered benchmark name
        assert "test_bench_kernel_event_throughput" in err
