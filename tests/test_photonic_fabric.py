"""Photonic interposer fabric: transfers, multicast, reconfiguration."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.errors import ConfigurationError
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.photonic.links import (
    swmr_read_budget,
    swsr_write_budget,
    worst_case_write_budget,
)
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment


def make_fabric(chunk_bits=256 * 1024):
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    fabric = PhotonicInterposerFabric(
        env, DEFAULT_PLATFORM, floorplan, chunk_bits=chunk_bits
    )
    return env, fabric


class TestTransfers:
    def test_read_completes(self):
        env, fabric = make_fabric()
        done = fabric.read("3x3 conv-0", 1e6)
        env.run()
        assert done.processed
        assert fabric.bits_read == 1e6

    def test_write_completes(self):
        env, fabric = make_fabric()
        done = fabric.write("3x3 conv-0", 1e6)
        env.run()
        assert done.processed
        assert fabric.bits_written == 1e6

    def test_zero_bit_transfer_is_instant(self):
        env, fabric = make_fabric()
        done = fabric.read("3x3 conv-0", 0.0)
        env.run()
        assert done.processed
        assert env.now == 0.0

    def test_read_latency_scales_with_size(self):
        env1, fabric1 = make_fabric()
        fabric1.read("3x3 conv-0", 1e6)
        t_small = env1.run()
        env2, fabric2 = make_fabric()
        fabric2.read("3x3 conv-0", 100e6)
        t_large = env2.run()
        assert t_large > t_small

    def test_multicast_charges_shared_stage_once(self):
        group = ("3x3 conv-0", "3x3 conv-1", "3x3 conv-2")
        env1, fabric1 = make_fabric()
        fabric1.read(group[0], 50e6, multicast=group)
        t_multicast = env1.run()
        mem_bits_multicast = fabric1.memory_write_channel.bits_transferred

        env2, fabric2 = make_fabric()
        for dst in group:
            fabric2.read(dst, 50e6)
        t_unicast = env2.run()
        mem_bits_unicast = fabric2.memory_write_channel.bits_transferred

        assert mem_bits_multicast == pytest.approx(50e6)
        assert mem_bits_unicast == pytest.approx(150e6)
        assert t_multicast < t_unicast

    def test_reads_contend_on_memory_gateways(self):
        env, fabric = make_fabric()
        # Saturate: every chiplet reads a large block simultaneously.
        for site in fabric.floorplan.compute_sites:
            fabric.read(site.chiplet_id, 200e6)
        total = env.run()
        # Aggregate memory-side bandwidth bounds completion time.
        min_time = (8 * 200e6) / fabric.memory_write_channel.bandwidth_bps
        assert total >= min_time

    def test_traffic_recorded_in_monitor(self):
        env, fabric = make_fabric()
        fabric.read("5x5 conv-0", 1e6)
        fabric.write("5x5 conv-0", 2e6)
        env.run()
        epoch = fabric.monitor.close_epoch()
        assert epoch["read:5x5 conv-0"] == 1e6
        assert epoch["write:5x5 conv-0"] == 2e6
        assert epoch["mem_read"] == 1e6


class TestReconfiguration:
    def test_gateway_bounds_enforced(self):
        _, fabric = make_fabric()
        with pytest.raises(ConfigurationError):
            fabric.set_active_memory_gateways(0)
        with pytest.raises(ConfigurationError):
            fabric.set_active_memory_gateways(99)
        with pytest.raises(ConfigurationError):
            fabric.set_active_chiplet_gateways("3x3 conv-0", 0, 1)

    def test_deactivation_is_immediate(self):
        env, fabric = make_fabric()
        before = fabric.memory_write_channel.bandwidth_bps
        fabric.set_active_memory_gateways(1)
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            before / DEFAULT_PLATFORM.n_memory_write_gateways
        )

    def test_activation_lags_by_pcmc_write_time(self):
        env, fabric = make_fabric()
        fabric.set_active_memory_gateways(1)
        fabric.set_active_memory_gateways(8)
        # Bandwidth not yet raised: PCM cells still switching.
        low = fabric.memory_write_channel.bandwidth_bps
        env.run(until=2e-6)  # > PCMC_SWITCHING_TIME_S
        high = fabric.memory_write_channel.bandwidth_bps
        assert high == pytest.approx(8 * low)

    def test_superseded_activation_is_dropped(self):
        env, fabric = make_fabric()
        fabric.set_active_memory_gateways(1)
        fabric.set_active_memory_gateways(8)   # deferred
        fabric.set_active_memory_gateways(2)   # overrides before it lands
        env.run(until=5e-6)
        expected = 2 * fabric.config.gateway_bandwidth_bps
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            expected
        )

    def test_reconfiguration_charges_pcmc_energy(self):
        _, fabric = make_fabric()
        fabric.set_active_memory_gateways(4)
        assert fabric.pcmc_energy_j > 0
        assert fabric.reconfiguration_count == 1

    def test_same_setting_costs_nothing(self):
        _, fabric = make_fabric()
        count = DEFAULT_PLATFORM.n_memory_write_gateways
        fabric.set_active_memory_gateways(count)
        assert fabric.pcmc_energy_j == 0.0
        assert fabric.reconfiguration_count == 0

    def test_wavelength_fraction_scales_bandwidth(self):
        env, fabric = make_fabric()
        full = fabric.memory_write_channel.bandwidth_bps
        fabric.set_wavelength_fraction(0.5)
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            full / 2
        )

    def test_invalid_wavelength_fraction(self):
        _, fabric = make_fabric()
        with pytest.raises(ConfigurationError):
            fabric.set_wavelength_fraction(0.0)
        with pytest.raises(ConfigurationError):
            fabric.set_wavelength_fraction(1.5)


class TestEnergy:
    def test_energy_report_after_traffic(self):
        env, fabric = make_fabric()
        fabric.read("3x3 conv-0", 10e6)
        env.run()
        report = fabric.energy_report()
        assert report.elapsed_s == env.now
        assert report.dynamic_energy_j > 0
        assert report.static_energy_j > 0
        assert report.average_power_w > 0

    def test_fewer_gateways_less_static_energy(self):
        env1, fabric1 = make_fabric()
        fabric1.read("3x3 conv-0", 1e6)
        env1.run()
        env1._now = 1e-3  # hold both fabrics at the same elapsed time
        full = fabric1.energy_report()

        env2, fabric2 = make_fabric()
        fabric2.set_active_memory_gateways(1)
        for chiplet_id in fabric2.inventories:
            fabric2.set_active_chiplet_gateways(chiplet_id, 1, 1)
        fabric2.read("3x3 conv-0", 1e6)
        env2.run()
        env2._now = 1e-3
        gated = fabric2.energy_report()
        assert gated.static_energy_j < full.static_energy_j

    def test_breakdown_keys(self):
        env, fabric = make_fabric()
        fabric.write("7x7 conv-0", 1e6)
        env.run()
        breakdown = fabric.energy_report().breakdown_j
        for key in ("laser", "gateway_electronics", "ring_trimming",
                    "hbm_dynamic", "serdes_modulate_receive"):
            assert key in breakdown


class TestLinkBudgets:
    def test_swmr_includes_broadcast_waveguide(self, floorplan):
        budget = swmr_read_budget(DEFAULT_PLATFORM, floorplan)
        assert budget.breakdown()["waveguide"] > 0
        assert 5.0 < budget.total_loss_db < 20.0

    def test_multicast_degree_adds_split_loss(self, floorplan):
        unicast = swmr_read_budget(DEFAULT_PLATFORM, floorplan, 1)
        multicast = swmr_read_budget(DEFAULT_PLATFORM, floorplan, 8)
        assert multicast.total_loss_db == pytest.approx(
            unicast.total_loss_db + 9.03, abs=0.1
        )

    def test_swsr_shorter_than_swmr(self, floorplan):
        write = swsr_write_budget(DEFAULT_PLATFORM, floorplan, "3x3 conv-0")
        read = swmr_read_budget(DEFAULT_PLATFORM, floorplan)
        assert write.total_loss_db < read.total_loss_db

    def test_worst_case_write_is_max(self, floorplan):
        worst = worst_case_write_budget(DEFAULT_PLATFORM, floorplan)
        for site in floorplan.compute_sites:
            budget = swsr_write_budget(
                DEFAULT_PLATFORM, floorplan, site.chiplet_id
            )
            assert budget.total_loss_db <= worst.total_loss_db + 1e-12
