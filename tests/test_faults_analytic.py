"""Fault injection and the analytic cross-validation model."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.analytic import (
    analytic_estimate,
    compute_bound_fraction,
)
from repro.core.engine import InferenceEngine
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError
from repro.interposer.photonic.controllers import ReSiPIController
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.photonic.faults import (
    FaultInjector,
    FaultPlan,
    uniform_fault_plan,
)
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import KernelMatchMapper
from repro.sim.core import Environment


def run_with_faults(model_name: str, plan: FaultPlan | None):
    config = DEFAULT_PLATFORM
    env = Environment()
    floorplan = build_floorplan(config)
    fabric = PhotonicInterposerFabric(env, config, floorplan)
    if plan is not None:
        FaultInjector(fabric, plan)
    ReSiPIController(env, fabric, config)
    workload = extract_workload(zoo.build(model_name))
    mapping = KernelMatchMapper(config, floorplan).map_workload(workload)
    engine = InferenceEngine(env, config, fabric)
    return engine.run(mapping), fabric


class TestFaultInjection:
    def test_no_faults_is_baseline(self):
        healthy, _ = run_with_faults("MobileNetV2", None)
        empty_plan, _ = run_with_faults("MobileNetV2", FaultPlan())
        assert empty_plan == pytest.approx(healthy, rel=1e-6)

    def test_memory_gateway_failures_degrade_gracefully(self):
        healthy, _ = run_with_faults("MobileNetV2", None)
        degraded, fabric = run_with_faults(
            "MobileNetV2", FaultPlan(memory_gateways_failed=6)
        )
        # Still completes (graceful), but slower (degraded).
        assert degraded > healthy
        assert fabric.active_memory_gateways.value <= 2

    def test_more_failures_never_faster(self):
        latencies = []
        for failures in (0, 4, 6):
            latency, _ = run_with_faults(
                "MobileNetV2", FaultPlan(memory_gateways_failed=failures)
            )
            latencies.append(latency)
        assert latencies == sorted(latencies)

    def test_chiplet_gateway_failures(self):
        plan = FaultPlan(
            chiplet_gateways_failed={"3x3 conv-0": (3, 3)}
        )
        latency, fabric = run_with_faults("MobileNetV2", plan)
        assert latency > 0
        assert fabric.active_write_gateways["3x3 conv-0"].value <= 1

    def test_cannot_kill_all_memory_gateways(self):
        env = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        with pytest.raises(ConfigurationError):
            FaultInjector(fabric, FaultPlan(memory_gateways_failed=8))

    def test_unknown_chiplet_rejected(self):
        env = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        with pytest.raises(ConfigurationError):
            FaultInjector(
                fabric,
                FaultPlan(chiplet_gateways_failed={"gpu-0": (1, 0)}),
            )

    def test_uniform_plan_distribution(self):
        env = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        plan = uniform_fault_plan(fabric, 10)
        assert plan.total_failed == 10
        # Memory fails first (worst case), leaving one alive.
        assert plan.memory_gateways_failed == 7

    def test_uniform_plan_zero(self):
        env = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        assert uniform_fault_plan(fabric, 0).total_failed == 0

    def test_controller_cannot_resurrect_dead_gateways(self):
        _, fabric = run_with_faults(
            "ResNet50", FaultPlan(memory_gateways_failed=5)
        )
        # Even under ResNet-scale demand, the cap held all run.
        assert fabric.active_memory_gateways.value <= 3


class TestAnalyticModel:
    @pytest.fixture(scope="class")
    def setup(self):
        config = DEFAULT_PLATFORM
        floorplan = build_floorplan(config)
        workload = extract_workload(zoo.build("ResNet50"))
        mapping = KernelMatchMapper(config, floorplan).map_workload(workload)
        return config, workload, mapping

    def test_lower_bound_below_simulated(self, setup, runner):
        config, workload, mapping = setup
        estimate = analytic_estimate(mapping, config, workload)
        simulated = runner.run("2.5D-CrossLight-SiPh", "ResNet50")
        assert estimate.lower_bound_s <= simulated.latency_s * 1.02

    def test_simulated_below_upper_bound(self, setup, runner):
        config, workload, mapping = setup
        estimate = analytic_estimate(mapping, config, workload)
        simulated = runner.run("2.5D-CrossLight-SiPh", "ResNet50")
        # Weight prefetch in the DES can beat the serial upper bound,
        # but never by more than the prefetch overlap; the ratio check
        # validates both models are describing the same machine.
        assert simulated.latency_s <= estimate.upper_bound_s * 1.5

    def test_bounds_ordered(self, setup):
        config, workload, mapping = setup
        estimate = analytic_estimate(mapping, config, workload)
        assert estimate.lower_bound_s <= estimate.upper_bound_s

    def test_simulation_close_to_lower_bound_when_uncontended(self, setup,
                                                              runner):
        """ResNet50 at 64 wavelengths is mostly compute-bound: the DES
        should land within 2x of the contention-free analytic bound."""
        config, workload, mapping = setup
        estimate = analytic_estimate(mapping, config, workload)
        simulated = runner.run("2.5D-CrossLight-SiPh", "ResNet50")
        assert simulated.latency_s <= 2.0 * estimate.lower_bound_s

    def test_compute_bound_fraction(self, setup):
        config, workload, mapping = setup
        estimate = analytic_estimate(mapping, config, workload)
        fraction = compute_bound_fraction(estimate)
        assert 0.3 <= fraction <= 1.0

    def test_empty_mapping_rejected(self, setup):
        config, _, _ = setup
        from repro.mapping.mapper import ModelMapping

        with pytest.raises(ConfigurationError):
            analytic_estimate(
                ModelMapping(workload=None, layers=()), config
            )
