"""Parallel fan-out and persistent result cache of the experiment runner.

The determinism contract: ``run_matrix`` must produce bit-identical
``InferenceResult`` fields no matter whether cells were simulated
serially, across ``jobs=4`` worker processes, or restored from a cold
or warm on-disk cache.
"""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.experiments.runner import (
    PLATFORM_ORDER,
    CacheStats,
    ExperimentRunner,
    ResultCache,
    build_platform,
    cell_key,
    cell_label,
    config_digest,
    run_cached,
    simulate_cells,
)

MODELS = ("LeNet5", "MobileNetV2")
"""Small-model subset: full platform coverage, tractable runtime."""

COMPARED_FIELDS = (
    "latency_s",
    "average_power_w",
    "energy_per_bit_j",
    "total_energy_j",
    "traffic_bits",
    "reconfigurations",
    "batch_size",
)


def _fingerprint(results):
    return {
        key: tuple(getattr(result, field) for field in COMPARED_FIELDS)
        for key, result in sorted(results.items())
    }


@pytest.fixture(scope="module")
def serial_matrix():
    runner = ExperimentRunner()
    return _fingerprint(runner.run_matrix(models=MODELS))


class TestParallelDeterminism:
    def test_jobs4_bit_identical_to_serial(self, serial_matrix):
        runner = ExperimentRunner()
        parallel = runner.run_matrix(models=MODELS, jobs=4)
        assert _fingerprint(parallel) == serial_matrix
        assert runner.simulations_executed == len(PLATFORM_ORDER) * len(
            MODELS
        )

    def test_cold_then_warm_cache_bit_identical(self, serial_matrix,
                                                tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ExperimentRunner(cache_dir=cache_dir)
        cold_results = cold.run_matrix(models=MODELS, jobs=4)
        assert _fingerprint(cold_results) == serial_matrix
        assert cold.simulations_executed == len(PLATFORM_ORDER) * len(
            MODELS
        )

        warm = ExperimentRunner(cache_dir=cache_dir)
        warm_results = warm.run_matrix(models=MODELS, jobs=4)
        assert _fingerprint(warm_results) == serial_matrix
        assert warm.simulations_executed == 0
        assert warm.disk_cache_hits == len(PLATFORM_ORDER) * len(MODELS)

    def test_single_cell_run_uses_disk_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = ExperimentRunner(cache_dir=cache_dir)
        a = first.run("CrossLight", "LeNet5")
        assert first.simulations_executed == 1

        second = ExperimentRunner(cache_dir=cache_dir)
        b = second.run("CrossLight", "LeNet5")
        assert second.simulations_executed == 0
        assert second.disk_cache_hits == 1
        assert a.latency_s == b.latency_s
        assert a.channel_stats == b.channel_stats

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)

    def test_run_matrix_unknown_platform(self):
        with pytest.raises(KeyError):
            ExperimentRunner().run_matrix(platforms=("TPUv7",),
                                          models=("LeNet5",))


class TestCacheKeys:
    def test_key_stable_for_equal_configs(self):
        a = cell_key("2.5D-CrossLight-SiPh", "LeNet5", "resipi",
                     DEFAULT_PLATFORM)
        b = cell_key("2.5D-CrossLight-SiPh", "LeNet5", "resipi",
                     DEFAULT_PLATFORM.with_wavelengths(64))
        assert a == b  # 64 wavelengths IS the default: equal content

    def test_key_changes_with_each_component(self):
        base = cell_key("2.5D-CrossLight-SiPh", "LeNet5", "resipi",
                        DEFAULT_PLATFORM)
        assert base != cell_key("CrossLight", "LeNet5", "resipi",
                                DEFAULT_PLATFORM)
        assert base != cell_key("2.5D-CrossLight-SiPh", "VGG16", "resipi",
                                DEFAULT_PLATFORM)
        assert base != cell_key("2.5D-CrossLight-SiPh", "LeNet5", "static",
                                DEFAULT_PLATFORM)
        assert base != cell_key("2.5D-CrossLight-SiPh", "LeNet5", "resipi",
                                DEFAULT_PLATFORM.with_wavelengths(32))
        assert base != cell_key("2.5D-CrossLight-SiPh", "LeNet5", "resipi",
                                DEFAULT_PLATFORM, extra={"x": 1})

    def test_config_digest_tracks_content(self):
        assert config_digest(DEFAULT_PLATFORM) == config_digest(
            DEFAULT_PLATFORM.with_wavelengths(64)
        )
        assert config_digest(DEFAULT_PLATFORM) != config_digest(
            DEFAULT_PLATFORM.with_wavelengths(32)
        )


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("deadbeef") is None
        assert len(cache) == 0

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = build_platform("CrossLight", DEFAULT_PLATFORM).run_model(
            __import__("repro.dnn.zoo", fromlist=["zoo"]).build("LeNet5")
        )
        cache.put("k", result)
        restored = cache.get("k")
        assert restored is not None
        assert restored.latency_s == result.latency_s
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        (cache.directory / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None
        assert not (cache.directory / "bad.pkl").exists()

    def test_truncated_entry_is_a_miss_and_evicted(self, tmp_path):
        """A write cut off mid-pickle must not poison its key forever."""
        import pickle

        cache = ResultCache(tmp_path / "cache")
        result = build_platform("CrossLight", DEFAULT_PLATFORM).run_model(
            __import__("repro.dnn.zoo", fromlist=["zoo"]).build("LeNet5")
        )
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        (cache.directory / "cut.pkl").write_bytes(payload[: len(payload) // 2])
        assert cache.get("cut") is None
        assert not (cache.directory / "cut.pkl").exists()
        # The key is immediately usable again.
        cache.put("cut", result)
        assert cache.get("cut") is not None

    def test_missing_entry_not_evicted_sideways(self, tmp_path):
        """A plain miss must not try to delete anything."""
        cache = ResultCache(tmp_path / "cache")
        cache.put("good", 123)
        assert cache.get("nope") is None
        assert cache.get("good") == 123


class TestCacheSchemaVersion:
    def test_version_bump_changes_every_cell_key(self, monkeypatch):
        """The staleness guard: bumping CACHE_SCHEMA_VERSION must move
        every cell key, or stale caches serve wrong results."""
        from repro.experiments import runner as runner_module

        cells = [
            ("CrossLight", "LeNet5", "resipi", DEFAULT_PLATFORM),
            ("2.5D-CrossLight-SiPh", "VGG16", "static", DEFAULT_PLATFORM),
            ("2.5D-CrossLight-Elec", "ResNet50", "prowaves",
             DEFAULT_PLATFORM),
        ]
        extras = [None, {"study": "serving", "rate_rps": 1e5}]
        before = {
            cell_key(*cell, extra=extra)
            for cell in cells for extra in extras
        }
        monkeypatch.setattr(
            runner_module, "CACHE_SCHEMA_VERSION",
            runner_module.CACHE_SCHEMA_VERSION + 1,
        )
        after = {
            cell_key(*cell, extra=extra)
            for cell in cells for extra in extras
        }
        assert len(before) == len(after) == len(cells) * len(extras)
        assert before.isdisjoint(after)


class TestSimulateCells:
    def test_results_in_cell_order(self):
        cells = [
            ("CrossLight", "LeNet5", "resipi", DEFAULT_PLATFORM),
            ("2.5D-CrossLight-SiPh", "LeNet5", "resipi", DEFAULT_PLATFORM),
        ]
        results = simulate_cells(cells, jobs=2)
        assert results[0].platform == "CrossLight"
        assert results[1].platform == "2.5D-CrossLight-SiPh"

    def test_cache_backfill_and_reuse(self, tmp_path):
        cells = [("CrossLight", "LeNet5", "resipi", DEFAULT_PLATFORM)]
        cache_dir = tmp_path / "cache"
        first = simulate_cells(cells, cache_dir=cache_dir)
        assert len(ResultCache(cache_dir)) == 1
        second = simulate_cells(cells, cache_dir=cache_dir)
        assert first[0].latency_s == second[0].latency_s


class TestCellTiming:
    def test_run_cached_records_wall_time_per_cell(self, tmp_path):
        from repro.experiments.runner import _simulate_cell_tuple

        cells = [("CrossLight", "LeNet5", "resipi", DEFAULT_PLATFORM)]
        cold = CacheStats()
        run_cached(
            cells, lambda c: cell_key(*c), _simulate_cell_tuple,
            cache_dir=tmp_path / "cache", stats=cold,
        )
        assert len(cold.cell_times) == 1
        label, seconds, hit = cold.cell_times[0]
        assert label == "CrossLight/LeNet5/resipi"
        assert seconds > 0 and not hit

        warm = CacheStats()
        run_cached(
            cells, lambda c: cell_key(*c), _simulate_cell_tuple,
            cache_dir=tmp_path / "cache", stats=warm,
        )
        (_, _, warm_hit), = warm.cell_times
        assert warm_hit

    def test_slowest_cells_ranked_and_capped(self):
        stats = CacheStats()
        for index, seconds in enumerate((0.3, 0.1, 0.9, 0.5, 0.2, 0.7)):
            stats.record_cell(f"cell{index}", seconds, hit=False)
        top = stats.slowest_cells(3)
        assert [label for label, _, _ in top] == ["cell2", "cell5", "cell3"]

    def test_render_slowest_annotates_hits(self):
        stats = CacheStats()
        stats.record_cell("slow-cell", 0.25, hit=False)
        stats.record_cell("cached-cell", 0.001, hit=True)
        text = stats.render_slowest()
        assert text.startswith("slowest cells (top 2):")
        assert "slow-cell" in text
        assert "cached-cell  [cache hit]" in text
        assert CacheStats().render_slowest() == ""

    def test_cell_label_flavours(self):
        assert cell_label(
            ("CrossLight", "LeNet5", "resipi", DEFAULT_PLATFORM)
        ) == "CrossLight/LeNet5/resipi"
        assert cell_label(object()) == "object"


class TestChannelStats:
    def test_results_carry_channel_stats(self):
        runner = ExperimentRunner()
        result = runner.run("2.5D-CrossLight-SiPh", "LeNet5")
        assert result.channel_stats
        names = {stat.name for stat in result.channel_stats}
        assert "hbm" in names
        assert any(0.0 < stat.utilization <= 1.0
                   for stat in result.channel_stats)

    def test_busiest_channels_ranked(self):
        runner = ExperimentRunner()
        result = runner.run("2.5D-CrossLight-Elec", "LeNet5")
        top = result.busiest_channels(3)
        assert len(top) == 3
        assert top[0].utilization >= top[1].utilization >= top[2].utilization

    def test_export_includes_channel_utilization(self):
        import json

        from repro.experiments.export import result_to_dict, results_to_json

        runner = ExperimentRunner()
        result = runner.run("CrossLight", "LeNet5")
        record = result_to_dict(result)
        assert {entry["name"] for entry in record["channel_utilization"]} == {
            "mono-noc", "mono-dram",
        }
        parsed = json.loads(results_to_json([result]))
        assert parsed[0]["channel_utilization"]
