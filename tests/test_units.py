"""Unit conversion helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestDecibels:
    def test_db_to_linear_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_inverse(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-3.0)

    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_roundtrip_db(self, value_db):
        assert units.linear_to_db(
            units.db_to_linear(value_db)
        ) == pytest.approx(value_db, abs=1e-9)

    def test_dbm_to_watts_zero_dbm_is_one_mw(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_watts_to_dbm_one_watt(self):
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    @given(st.floats(min_value=-60.0, max_value=30.0))
    def test_roundtrip_dbm(self, power_dbm):
        assert units.watts_to_dbm(
            units.dbm_to_watts(power_dbm)
        ) == pytest.approx(power_dbm, abs=1e-9)


class TestOptical:
    def test_wavelength_frequency_1550nm(self):
        freq = units.wavelength_to_frequency(1550e-9)
        assert freq == pytest.approx(193.4e12, rel=1e-3)

    def test_frequency_to_wavelength_inverse(self):
        wavelength = 1310e-9
        assert units.frequency_to_wavelength(
            units.wavelength_to_frequency(wavelength)
        ) == pytest.approx(wavelength)

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wavelength_to_frequency(0.0)

    def test_frequency_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.frequency_to_wavelength(-1.0)

    def test_photon_energy_1550nm(self):
        # ~0.8 eV at 1550 nm.
        energy_ev = units.photon_energy(1550e-9) / units.ELEMENTARY_CHARGE
        assert energy_ev == pytest.approx(0.8, rel=0.01)


class TestDataSizes:
    def test_bits_from_bytes(self):
        assert units.bits_from_bytes(2) == 16

    def test_bytes_from_bits(self):
        assert units.bytes_from_bits(16) == 2

    def test_kib_mib_gib_chain(self):
        assert units.MIB == 1024 * units.KIB
        assert units.GIB == 1024 * units.MIB

    @given(st.floats(min_value=0, max_value=1e15))
    def test_roundtrip_bytes(self, n_bytes):
        assert units.bytes_from_bits(
            units.bits_from_bytes(n_bytes)
        ) == pytest.approx(n_bytes)


class TestFormatting:
    def test_format_si_milliseconds(self):
        assert units.format_si(1.21e-3, "s") == "1.21 ms"

    def test_format_si_zero(self):
        assert units.format_si(0.0, "W") == "0 W"

    def test_format_si_unit_range_giga(self):
        assert units.format_si(12e9, "b/s") == "12 Gb/s"

    def test_format_si_no_unit(self):
        assert units.format_si(2.5e3) == "2.5 k"

    def test_format_si_clamps_below_femto(self):
        text = units.format_si(1e-18, "s")
        assert "f" in text  # clamped to femto prefix

    @given(st.floats(min_value=1e-14, max_value=1e13))
    def test_format_si_always_parses_back(self, value):
        text = units.format_si(value, "x", precision=12)
        number, prefix_unit = text.split(" ")
        scale = {
            "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6, "m": 1e-3,
            "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
        }.get(prefix_unit[0] if prefix_unit != "x" else "", 1.0)
        assert float(number) * scale == pytest.approx(value, rel=1e-6)


class TestConstants:
    def test_speed_of_light(self):
        assert units.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)

    def test_si_prefix_chain(self):
        assert units.GIGA == 1e9
        assert units.NANO * units.GIGA == pytest.approx(1.0)
        assert math.isclose(units.PICO * units.TERA, 1.0)
