"""Platform configuration (Table 1 encoding and derived quantities)."""

import dataclasses

import pytest

from repro.config import (
    DEFAULT_PLATFORM,
    TABLE1_MAC_GROUPS,
    MacGroupConfig,
    PlatformConfig,
)
from repro.errors import ConfigurationError


class TestTable1Values:
    def test_data_rate(self):
        assert DEFAULT_PLATFORM.wavelength_data_rate_bps == 12e9

    def test_gateway_frequency(self):
        assert DEFAULT_PLATFORM.gateway_frequency_hz == 2e9

    def test_electrical_noc(self):
        assert DEFAULT_PLATFORM.electrical_link_width_bits == 128
        assert DEFAULT_PLATFORM.electrical_noc_frequency_hz == 2e9

    def test_wavelengths(self):
        assert DEFAULT_PLATFORM.n_wavelengths == 64

    def test_chiplet_counts(self):
        assert DEFAULT_PLATFORM.n_memory_chiplets == 1
        assert DEFAULT_PLATFORM.n_compute_chiplets == 8
        assert DEFAULT_PLATFORM.n_chiplets == 9

    def test_mac_group_census(self):
        by_kind = {g.kind: g for g in TABLE1_MAC_GROUPS}
        assert by_kind["dense100"].n_chiplets == 2
        assert by_kind["dense100"].macs_per_chiplet == 4
        assert by_kind["dense100"].macs_per_gateway == 1
        assert by_kind["7x7 conv"].n_chiplets == 1
        assert by_kind["7x7 conv"].macs_per_chiplet == 8
        assert by_kind["7x7 conv"].macs_per_gateway == 2
        assert by_kind["5x5 conv"].n_chiplets == 2
        assert by_kind["5x5 conv"].macs_per_chiplet == 16
        assert by_kind["5x5 conv"].macs_per_gateway == 4
        assert by_kind["3x3 conv"].n_chiplets == 3
        assert by_kind["3x3 conv"].macs_per_chiplet == 44
        assert by_kind["3x3 conv"].macs_per_gateway == 11

    def test_every_chiplet_has_four_gateways(self):
        for group in TABLE1_MAC_GROUPS:
            assert group.gateways_per_chiplet == 4

    def test_vector_lengths(self):
        by_kind = {g.kind: g.vector_length for g in TABLE1_MAC_GROUPS}
        assert by_kind == {
            "dense100": 100, "7x7 conv": 49, "5x5 conv": 25, "3x3 conv": 9,
        }


class TestDerivedQuantities:
    def test_gateway_bandwidth(self):
        # 64 wavelengths x 12 Gb/s = 768 Gb/s.
        assert DEFAULT_PLATFORM.gateway_bandwidth_bps == 768e9

    def test_total_compute_gateways(self):
        assert DEFAULT_PLATFORM.total_compute_gateways == 32

    def test_total_mac_units(self):
        assert DEFAULT_PLATFORM.total_mac_units == 2 * 4 + 8 + 2 * 16 + 3 * 44

    def test_total_mac_lanes(self):
        expected = 2 * 4 * 100 + 8 * 49 + 2 * 16 * 25 + 3 * 44 * 9
        assert DEFAULT_PLATFORM.total_mac_lanes == expected

    def test_peak_throughput(self):
        assert DEFAULT_PLATFORM.peak_mac_throughput_per_s == (
            DEFAULT_PLATFORM.total_mac_lanes * 2e9
        )

    def test_mesh_bandwidths(self):
        assert DEFAULT_PLATFORM.mesh_link_bandwidth_bps == 256e9
        assert DEFAULT_PLATFORM.mesh_effective_link_bandwidth_bps == (
            pytest.approx(25.6e9)
        )

    def test_mono_peak_throughput(self):
        assert DEFAULT_PLATFORM.mono_peak_mac_throughput_per_s == (
            DEFAULT_PLATFORM.mono_n_vdp_units
            * DEFAULT_PLATFORM.mono_vector_length
            * DEFAULT_PLATFORM.mono_mac_rate_hz
        )

    def test_group_lookup(self):
        group = DEFAULT_PLATFORM.group_by_kind("3x3 conv")
        assert group.vector_length == 9
        with pytest.raises(ConfigurationError):
            DEFAULT_PLATFORM.group_by_kind("9x9 conv")


class TestValidationAndVariants:
    def test_with_wavelengths(self):
        narrow = DEFAULT_PLATFORM.with_wavelengths(16)
        assert narrow.n_wavelengths == 16
        assert narrow.gateway_bandwidth_bps == 16 * 12e9
        # Original untouched (frozen dataclass).
        assert DEFAULT_PLATFORM.n_wavelengths == 64

    def test_invalid_wavelengths(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(n_wavelengths=0)

    def test_invalid_data_rate(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(wavelength_data_rate_bps=0)

    def test_invalid_mesh_efficiency(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(mesh_link_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            PlatformConfig(mesh_link_efficiency=1.5)

    def test_empty_mac_groups(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(mac_groups=())

    def test_mac_group_divisibility(self):
        with pytest.raises(ConfigurationError):
            MacGroupConfig(
                kind="bad", vector_length=9, kernel_size=3, n_chiplets=1,
                macs_per_chiplet=10, macs_per_gateway=3,
            )

    def test_mac_group_positive_counts(self):
        with pytest.raises(ConfigurationError):
            MacGroupConfig(
                kind="bad", vector_length=0, kernel_size=0, n_chiplets=1,
                macs_per_chiplet=1, macs_per_gateway=1,
            )

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PLATFORM.n_wavelengths = 128

    def test_replace_for_sweeps(self):
        fast = dataclasses.replace(DEFAULT_PLATFORM, mac_rate_hz=4e9)
        assert fast.peak_mac_throughput_per_s == (
            2 * DEFAULT_PLATFORM.peak_mac_throughput_per_s
        )
