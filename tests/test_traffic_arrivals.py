"""Arrival processes: rate correctness, determinism, burst structure."""

from itertools import islice

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.core import Environment
from repro.sim.traffic import (
    ARRIVAL_KINDS,
    ClosedLoopClients,
    MMPPArrivals,
    PoissonArrivals,
)


def take(iterator, n):
    return np.array(list(islice(iterator, n)))


class TestPoissonArrivals:
    def test_mean_rate_converges(self):
        gaps = take(PoissonArrivals(rate_rps=1e5, seed=3).gaps(), 20_000)
        assert 1.0 / gaps.mean() == pytest.approx(1e5, rel=0.05)

    def test_exponential_shape(self):
        """CV of exponential gaps is 1."""
        gaps = take(PoissonArrivals(rate_rps=5e4, seed=9).gaps(), 20_000)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_seeded_determinism(self):
        a = take(PoissonArrivals(rate_rps=1e5, seed=42).gaps(), 500)
        b = take(PoissonArrivals(rate_rps=1e5, seed=42).gaps(), 500)
        c = take(PoissonArrivals(rate_rps=1e5, seed=43).gaps(), 500)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate_rps=0.0)


class TestMMPPArrivals:
    def test_mean_rate_converges(self):
        spec = MMPPArrivals(rate_rps=1e5, burstiness=4.0, dwell_s=20e-6,
                            seed=3)
        gaps = take(spec.gaps(), 60_000)
        assert 1.0 / gaps.mean() == pytest.approx(1e5, rel=0.05)

    def test_burstier_than_poisson(self):
        spec = MMPPArrivals(rate_rps=1e5, burstiness=6.0, dwell_s=50e-6,
                            seed=3)
        gaps = take(spec.gaps(), 60_000)
        assert gaps.std() / gaps.mean() > 1.1

    def test_phase_rates_average_to_rate(self):
        spec = MMPPArrivals(rate_rps=1e5, burstiness=4.0)
        low, high = spec.phase_rates_rps
        assert high == pytest.approx(4.0 * low)
        assert (low + high) / 2.0 == pytest.approx(1e5)

    def test_seeded_determinism(self):
        make = lambda seed: MMPPArrivals(rate_rps=2e5, seed=seed)
        assert np.array_equal(take(make(1).gaps(), 500),
                              take(make(1).gaps(), 500))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rate_rps=-1.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rate_rps=1e5, burstiness=0.5)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(rate_rps=1e5, dwell_s=0.0)


class TestClosedLoopClients:
    def test_think_gaps_deterministic_per_client(self):
        spec = ClosedLoopClients(n_clients=4, think_time_s=5e-6, seed=1)
        a = take(spec.think_gaps(0), 100)
        b = take(spec.think_gaps(0), 100)
        other = take(spec.think_gaps(1), 100)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, other)

    def test_think_rate(self):
        spec = ClosedLoopClients(n_clients=1, think_time_s=2e-6, seed=5)
        gaps = take(spec.think_gaps(0), 20_000)
        assert gaps.mean() == pytest.approx(2e-6, rel=0.05)

    def test_zero_think_time(self):
        spec = ClosedLoopClients(n_clients=2, think_time_s=0.0)
        assert take(spec.think_gaps(0), 3).tolist() == [0.0, 0.0, 0.0]
        assert spec.mean_rate_rps == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopClients(n_clients=0)
        with pytest.raises(ConfigurationError):
            ClosedLoopClients(n_clients=1, think_time_s=-1.0)


class TestArrivalRegistry:
    def test_kinds_registered(self):
        assert ARRIVAL_KINDS["poisson"] is PoissonArrivals
        assert ARRIVAL_KINDS["mmpp"] is MMPPArrivals
        assert ARRIVAL_KINDS["closed"] is ClosedLoopClients


class TestAnyOf:
    """Kernel race event backing the batch-timeout wait."""

    def test_first_event_wins(self):
        env = Environment()
        early = env.timeout(1.0, value="early")
        late = env.timeout(2.0, value="late")
        race = env.any_of([late, early])
        env.run()
        assert race.processed
        assert race.value == "early"

    def test_already_fired_child_wins_immediately(self):
        env = Environment()
        fired = env.event()
        fired.succeed("done")
        env.run()
        race = env.any_of([env.timeout(5.0), fired])
        env.run(until=0.1)
        assert race.value == "done"

    def test_empty_race_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_process_resumes_on_winner(self):
        env = Environment()
        seen = []

        def proc():
            value = yield env.any_of(
                [env.timeout(3.0, "slow"), env.timeout(1.0, "fast")]
            )
            seen.append((env.now, value))

        env.process(proc())
        env.run()
        assert seen == [(1.0, "fast")]
