"""Experiment drivers: Fig. 7, Table 3, Tables 1/2, DSE, calibration."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.dnn import zoo
from repro.errors import ConfigurationError
from repro.experiments.calibration import calibration_report, shape_checks
from repro.experiments.dse import (
    controller_ablation,
    render_sweep,
    sweep_gateways,
    sweep_wavelengths,
)
from repro.experiments.fig7 import fig7_all, fig7_series, render_fig7
from repro.experiments.runner import (
    MODEL_NAMES,
    PLATFORM_ORDER,
    ExperimentRunner,
)
from repro.experiments.table3 import PAPER_TABLE3, build_table3, render_table3
from repro.experiments.tables import render_table1, render_table2


class TestRunner:
    def test_caching(self, runner):
        first = runner.run("CrossLight", "LeNet5")
        second = runner.run("CrossLight", "LeNet5")
        assert first is second

    def test_matrix_complete(self, runner):
        results = runner.run_matrix(models=("LeNet5",))
        assert set(results) == {
            (platform, "LeNet5") for platform in PLATFORM_ORDER
        }

    def test_unknown_platform(self, runner):
        with pytest.raises(KeyError):
            runner.run("TPUv7", "LeNet5")

    def test_model_names_are_table2(self):
        assert MODEL_NAMES == tuple(zoo.MODEL_BUILDERS)


class TestFig7:
    def test_normalization_base_is_one(self, runner):
        series = fig7_series(runner, "latency")
        for model in MODEL_NAMES:
            assert series.normalized[model]["CrossLight"] == pytest.approx(
                1.0
            )

    def test_all_panels_present(self, runner):
        panels = fig7_all(runner)
        assert set(panels) == {"power", "latency", "epb"}

    def test_siph_latency_bars_below_one_for_large_models(self, runner):
        series = fig7_series(runner, "latency")
        for model in ("ResNet50", "DenseNet121", "VGG16", "MobileNetV2"):
            assert series.bar(model, "2.5D-CrossLight-SiPh") < 1.0

    def test_elec_latency_bars_above_one(self, runner):
        series = fig7_series(runner, "latency")
        for model in MODEL_NAMES:
            assert series.bar(model, "2.5D-CrossLight-Elec") > 1.0

    def test_render_contains_all_models(self, runner):
        text = render_fig7(fig7_series(runner, "epb"))
        for model in MODEL_NAMES:
            assert model in text

    def test_absolute_values_positive(self, runner):
        series = fig7_series(runner, "power")
        for model in MODEL_NAMES:
            for platform in PLATFORM_ORDER:
                assert series.absolute[model][platform] > 0


class TestTable3:
    def test_ten_rows(self, runner):
        table = build_table3(runner)
        assert len(table.rows) == 10
        assert {row.platform for row in table.rows} == set(PAPER_TABLE3)

    def test_headline_ratios_in_band(self, runner):
        table = build_table3(runner)
        assert 2.0 <= table.latency_gain_vs_monolithic <= 15.0
        assert 1.5 <= table.epb_gain_vs_monolithic <= 6.0
        assert 15.0 <= table.latency_gain_vs_electrical <= 70.0
        assert 6.0 <= table.epb_gain_vs_electrical <= 35.0

    def test_render_includes_paper_values(self, runner):
        text = render_table3(build_table3(runner))
        assert "paper" in text
        assert "6.6x" in text
        for platform in PAPER_TABLE3:
            assert platform in text

    def test_row_lookup(self, runner):
        table = build_table3(runner)
        assert table.row("HolyLight").power_w == pytest.approx(66.5)
        with pytest.raises(KeyError):
            table.row("Cerebras")


class TestStaticTables:
    def test_table1_values(self):
        text = render_table1()
        assert "12 Gb/s" in text
        assert "64" in text
        assert "3x3 conv MAC" in text
        assert "44" in text  # MACs per 3x3 chiplet

    def test_table2_all_match(self):
        text = render_table2()
        assert text.count("yes") == 5
        assert "NO" not in text
        assert "138,357,544" in text


class TestDSE:
    def test_wavelength_sweep_improves_latency(self):
        points = sweep_wavelengths(
            model_name="MobileNetV2", values=(8, 64)
        )
        assert points[0].result.latency_s >= points[1].result.latency_s

    def test_wavelength_sweep_labels(self):
        points = sweep_wavelengths(model_name="LeNet5", values=(16, 32))
        assert [p.value for p in points] == [16, 32]
        assert "16 wavelengths" == points[0].label

    def test_gateway_sweep_runs(self):
        points = sweep_gateways(model_name="LeNet5", values=(1, 4))
        assert len(points) == 2
        for point in points:
            assert point.result.latency_s > 0

    def test_gateway_sweep_rejects_nondivisor(self):
        with pytest.raises(ConfigurationError):
            sweep_gateways(model_name="LeNet5", values=(3,))

    def test_controller_ablation_keys(self):
        results = controller_ablation(model_names=("LeNet5",))
        assert set(results) == {
            ("resipi", "LeNet5"), ("prowaves", "LeNet5"),
            ("static", "LeNet5"),
        }

    def test_static_controller_draws_most_power_when_idle_heavy(self):
        results = controller_ablation(model_names=("LeNet5",))
        static = results[("static", "LeNet5")]
        resipi = results[("resipi", "LeNet5")]
        assert resipi.average_power_w < static.average_power_w

    def test_render_sweep(self):
        points = sweep_wavelengths(model_name="LeNet5", values=(32,))
        text = render_sweep("sweep", points)
        assert "32 wavelengths" in text
        assert "latency(ms)" in text


class TestCalibration:
    def test_all_shape_checks_pass(self, runner):
        """The headline reproduction assertion of the whole repository."""
        for check in shape_checks(runner):
            assert check.passed, f"{check.claim}: {check.detail}"

    def test_report_renders(self, runner):
        text = calibration_report(runner)
        assert "PASS" in text
        assert "Table 3" in text
