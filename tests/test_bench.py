"""The inline microbenchmark runner and perf-regression smoke check."""

import json

import pytest

from repro import bench
from repro.cli import main


class TestMeasure:
    def test_measure_ns_positive(self):
        assert bench.measure_ns(lambda: sum(range(100)), repeats=3) > 0

    def test_measure_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            bench.measure_ns(lambda: None, repeats=0)

    def test_run_suite_subset(self):
        medians = bench.run_suite(
            names=(bench.KERNEL_BENCHMARK,), repeats=1
        )
        assert set(medians) == {bench.KERNEL_BENCHMARK}
        assert medians[bench.KERNEL_BENCHMARK] > 0

    def test_all_benchmark_bodies_run(self):
        for name, factory in bench.MICROBENCHMARKS.items():
            assert factory()() is not None, name


class TestBaseline:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        bench.write_baseline({"a": 123.0, "b": 456.0}, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == bench.BASELINE_SCHEMA_VERSION
        assert bench.load_baseline(path) == {"a": 123.0, "b": 456.0}

    def test_check_passes_within_budget(self):
        failures = bench.check_against_baseline(
            {"a": 150.0}, {"a": 100.0}, factor=2.0
        )
        assert failures == []

    def test_check_flags_regression(self):
        failures = bench.check_against_baseline(
            {"a": 250.0}, {"a": 100.0}, factor=2.0
        )
        assert len(failures) == 1
        assert "2.50x" in failures[0]

    def test_check_ignores_unknown_benchmarks(self):
        assert bench.check_against_baseline({"new": 1e9}, {"a": 1.0}) == []

    def test_committed_baseline_is_loadable(self):
        # The repo-root baseline written by benchmarks/run_all.py.
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parent.parent / bench.BASELINE_FILENAME
        )
        baseline = bench.load_baseline(baseline_path)
        assert bench.KERNEL_BENCHMARK in baseline
        assert baseline[bench.KERNEL_BENCHMARK] > 0

    def test_render_suite_with_baseline(self):
        text = bench.render_suite({"a": 2e6}, {"a": 1e6})
        assert "2.00x" in text


class TestBenchCli:
    def test_bench_without_check(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no baseline file here
        # Use a 1-repeat run for speed; exercises the full suite wiring.
        assert main(["bench", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert bench.KERNEL_BENCHMARK in out

    def test_bench_check_missing_baseline(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--check", "--repeats", "1"]) == 2

    def test_bench_check_detects_regression(self, capsys, tmp_path):
        # A baseline claiming everything once ran 1000x faster must fail.
        baseline = tmp_path / "BENCH_sim.json"
        bench.write_baseline(
            {name: 1.0 for name in bench.MICROBENCHMARKS}, baseline
        )
        assert main([
            "bench", "--check", "--repeats", "1",
            "--baseline", str(baseline),
        ]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_bench_check_passes_on_generous_baseline(self, capsys,
                                                     tmp_path):
        baseline = tmp_path / "BENCH_sim.json"
        bench.write_baseline(
            {name: 1e15 for name in bench.MICROBENCHMARKS}, baseline
        )
        assert main([
            "bench", "--check", "--repeats", "1",
            "--baseline", str(baseline),
        ]) == 0
        assert "perf check OK" in capsys.readouterr().out
