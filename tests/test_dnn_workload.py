"""Workload extraction and quantisation."""

import pytest

from repro.dnn import zoo
from repro.dnn.quantization import QuantizationConfig
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def lenet_workload():
    return extract_workload(zoo.build("LeNet5"))


class TestExtraction:
    def test_one_record_per_compute_layer(self, lenet_workload):
        assert len(lenet_workload) == 5  # 3 conv + 2 fc

    def test_macs_match_model(self, lenet_workload):
        assert lenet_workload.total_macs == zoo.build("LeNet5").total_macs

    def test_dot_products_cover_macs(self, lenet_workload):
        for layer in lenet_workload:
            assert layer.dot_length * layer.n_dots == layer.macs

    def test_weight_bits_at_8bit(self, lenet_workload):
        total_params = zoo.TABLE2_PARAMS["LeNet5"]
        assert lenet_workload.total_weight_bits == total_params * 8

    def test_kernel_sizes(self, lenet_workload):
        kernels = [layer.kernel_size for layer in lenet_workload]
        assert kernels == [5, 5, 5, 1, 1]

    def test_first_layer_input_volume(self, lenet_workload):
        first = lenet_workload.layers[0]
        assert first.input_bits == 32 * 32 * 3 * 8

    def test_traffic_is_weights_plus_activations(self, lenet_workload):
        for layer in lenet_workload:
            assert layer.total_traffic_bits == (
                layer.weight_bits + layer.input_bits + layer.output_bits
            )

    def test_dense_layer_flagged(self, lenet_workload):
        kinds = [layer.kind for layer in lenet_workload]
        assert kinds == ["Conv2D", "Conv2D", "Conv2D", "Dense", "Dense"]
        assert lenet_workload.layers[-1].is_dense

    def test_resnet_has_54_compute_layers(self):
        workload = extract_workload(zoo.build("ResNet50"))
        assert len(workload) == 54  # 53 conv + 1 fc

    def test_depthwise_dot_length_is_window(self):
        workload = extract_workload(zoo.build("MobileNetV2"))
        depthwise = [l for l in workload if l.kind == "DepthwiseConv2D"]
        assert depthwise
        for layer in depthwise:
            assert layer.dot_length == 9


class TestQuantization:
    def test_default_8_bit(self):
        config = QuantizationConfig()
        assert config.weight_bits_for(0) == 8
        assert config.activation_bits == 8

    def test_per_layer_override(self):
        config = QuantizationConfig(per_layer_weight_bits={2: 4})
        assert config.weight_bits_for(2) == 4
        assert config.weight_bits_for(3) == 8

    def test_binary_preset(self):
        config = QuantizationConfig.binary()
        assert config.weight_bits == 1
        assert config.activation_bits == 1

    def test_heterogeneous_front_heavy(self):
        config = QuantizationConfig.heterogeneous_front_heavy(10)
        assert config.weight_bits_for(0) == 8
        assert config.weight_bits_for(9) == 4

    def test_quantization_shrinks_traffic(self):
        model = zoo.build("LeNet5")
        full = extract_workload(model, QuantizationConfig())
        slim = extract_workload(
            model, QuantizationConfig(weight_bits=4, activation_bits=4)
        )
        assert slim.total_traffic_bits < full.total_traffic_bits
        assert slim.total_weight_bits == full.total_weight_bits // 2

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizationConfig(weight_bits=0)
        with pytest.raises(ConfigurationError):
            QuantizationConfig(activation_bits=64)
        with pytest.raises(ConfigurationError):
            QuantizationConfig(per_layer_weight_bits={0: 0})

    def test_macs_unaffected_by_quantization(self):
        model = zoo.build("LeNet5")
        full = extract_workload(model)
        binary = extract_workload(model, QuantizationConfig.binary())
        assert full.total_macs == binary.total_macs
