"""Model graphs and the Table 2 zoo — the paper's exact model census."""

import pytest

from repro.dnn import zoo
from repro.dnn.layers import Activation, Conv2D, Dense, Flatten
from repro.dnn.model import Model
from repro.errors import ShapeError


class TestModelGraph:
    def test_sequential_build(self):
        model = Model("tiny", input_shape=(8, 8, 3))
        x = model.apply(Conv2D(4, 3, name="c1"), model.input)
        assert model.output_shape == (8, 8, 4)
        x = model.apply(Flatten(name="flat"), x)
        model.apply(Dense(10, name="fc"), x)
        assert model.output_shape == (10,)

    def test_duplicate_names_rejected(self):
        model = Model("dup", input_shape=(8, 8, 3))
        model.apply(Conv2D(4, 3, name="c"), model.input)
        with pytest.raises(ShapeError):
            model.apply(Conv2D(4, 3, name="c"), model.output)

    def test_layer_must_have_parents(self):
        model = Model("np", input_shape=(8, 8, 3))
        with pytest.raises(ShapeError):
            model.apply(Conv2D(4, 3, name="c"))

    def test_total_params_sum(self):
        model = Model("sum", input_shape=(8, 8, 3))
        x = model.apply(Conv2D(4, 3, name="c"), model.input)
        x = model.apply(Flatten(name="f"), x)
        model.apply(Dense(2, name="d"), x)
        expected = (3 * 3 * 3 * 4 + 4) + (8 * 8 * 4 * 2 + 2)
        assert model.total_params == expected

    def test_layer_stats_order_and_content(self):
        model = Model("stats", input_shape=(8, 8, 3))
        x = model.apply(Conv2D(4, 3, name="c"), model.input)
        model.apply(Activation("relu", name="r"), x)
        stats = model.layer_stats()
        assert [s.name for s in stats] == ["c", "r"]
        assert stats[0].params > 0
        assert stats[1].params == 0
        assert stats[0].output_elements == 8 * 8 * 4

    def test_compute_nodes_filters(self):
        model = Model("cn", input_shape=(8, 8, 3))
        x = model.apply(Conv2D(4, 3, name="c"), model.input)
        x = model.apply(Activation("relu", name="r"), x)
        x = model.apply(Flatten(name="f"), x)
        model.apply(Dense(2, name="d"), x)
        names = [node.name for node in model.compute_nodes()]
        assert names == ["c", "d"]

    def test_summary_contains_totals(self):
        model = Model("s", input_shape=(8, 8, 3))
        model.apply(Conv2D(4, 3, name="c"), model.input)
        text = model.summary()
        assert "total" in text
        assert f"{model.total_params:,}" in text


class TestTable2:
    """The headline fidelity targets: exact Table 2 reproduction."""

    @pytest.mark.parametrize("name", list(zoo.MODEL_BUILDERS))
    def test_exact_parameter_count(self, name):
        model = zoo.build(name)
        assert model.total_params == zoo.TABLE2_PARAMS[name]

    @pytest.mark.parametrize("name", list(zoo.MODEL_BUILDERS))
    def test_layer_census(self, name):
        model = zoo.build(name)
        conv, fc = zoo.TABLE2_LAYERS[name]
        assert model.conv_layer_count == conv
        assert model.fc_layer_count == fc

    def test_all_models_builds_in_order(self):
        names = [model.name for model in zoo.all_models()]
        assert names == list(zoo.MODEL_BUILDERS)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            zoo.build("AlexNet")


class TestZooInternals:
    def test_lenet5_output_shape(self):
        model = zoo.lenet5()
        assert model.output_shape == (10,)

    def test_lenet5_c5_reduces_to_1x1(self):
        model = zoo.lenet5()
        shapes = {n.name: n.output_shape for n in model.nodes}
        assert shapes["c5"] == (1, 1, 120)

    def test_resnet50_final_feature_map(self):
        model = zoo.resnet50()
        shapes = {n.name: n.output_shape for n in model.nodes}
        assert shapes["avg_pool"] == (2048,)
        assert shapes["stage5_block3_out"] == (7, 7, 2048)

    def test_resnet50_macs_around_3_86g(self):
        model = zoo.resnet50()
        assert model.total_macs == pytest.approx(3.86e9, rel=0.01)

    def test_vgg16_macs_around_15_5g(self):
        model = zoo.vgg16()
        assert model.total_macs == pytest.approx(15.47e9, rel=0.01)

    def test_mobilenetv2_macs_around_300m(self):
        model = zoo.mobilenetv2()
        assert model.total_macs == pytest.approx(300e6, rel=0.05)

    def test_densenet121_growth_structure(self):
        model = zoo.densenet121()
        shapes = {n.name: n.output_shape for n in model.nodes}
        # After block 1 (6 layers x growth 32 on 64 stem channels).
        assert shapes["block1_layer6_concat"][2] == 64 + 6 * 32
        assert shapes["avg_pool"] == (1024,)

    def test_mobilenetv2_feature_head(self):
        model = zoo.mobilenetv2()
        shapes = {n.name: n.output_shape for n in model.nodes}
        assert shapes["conv_last"] == (7, 7, 1280)

    def test_classifier_sizes(self):
        for name in ("ResNet50", "DenseNet121", "VGG16", "MobileNetV2"):
            assert zoo.build(name).output_shape == (1000,)
