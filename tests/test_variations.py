"""Process variation and trimming-power modelling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics.microring import MicroringResonator, TuningMechanism
from repro.photonics.variations import (
    VariationModel,
    platform_trimming_power_w,
    trimming_report,
)


class TestVariationModel:
    def test_deterministic_given_seed(self):
        model = VariationModel(seed=7)
        first = model.sample_deviations_nm(100, die_index=3)
        second = model.sample_deviations_nm(100, die_index=3)
        np.testing.assert_array_equal(first, second)

    def test_different_dies_differ(self):
        model = VariationModel(seed=7)
        a = model.sample_deviations_nm(100, die_index=0)
        b = model.sample_deviations_nm(100, die_index=1)
        assert not np.allclose(a, b)

    def test_die_offset_shared_within_die(self):
        # With zero within-die sigma every ring shows the same offset.
        model = VariationModel(within_die_sigma_nm=0.0, seed=1)
        deviations = model.sample_deviations_nm(50, die_index=0)
        assert np.allclose(deviations, deviations[0])

    def test_statistics_roughly_match_sigmas(self):
        model = VariationModel(seed=11)
        samples = np.concatenate([
            model.sample_deviations_nm(2000, die_index=i) for i in range(30)
        ])
        total_sigma = np.std(samples)
        expected = np.hypot(model.within_die_sigma_nm, model.die_sigma_nm)
        assert total_sigma == pytest.approx(expected, rel=0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            VariationModel(within_die_sigma_nm=-0.1)
        with pytest.raises(ConfigurationError):
            VariationModel().sample_deviations_nm(0)


class TestTrimmingReport:
    def test_thermal_costs_more_than_eo(self):
        thermal = trimming_report(256, TuningMechanism.THERMO_OPTIC)
        eo = trimming_report(256, TuningMechanism.ELECTRO_OPTIC)
        assert thermal.total_power_w > eo.total_power_w
        assert thermal.mean_shift_nm == pytest.approx(eo.mean_shift_nm)

    def test_power_scales_with_bank_size(self):
        small = trimming_report(64)
        large = trimming_report(1024)
        assert large.total_power_w > 4 * small.total_power_w

    def test_per_ring_power_milliwatt_scale(self):
        report = trimming_report(512, TuningMechanism.THERMO_OPTIC)
        assert 1e-3 < report.power_per_ring_w < 50e-3

    def test_fsr_hops_appear_with_tight_range(self):
        tight = trimming_report(512, trim_range_nm=0.3)
        loose = trimming_report(512, trim_range_nm=5.0)
        assert tight.fsr_hop_fraction > loose.fsr_hop_fraction
        assert 0.0 <= tight.fsr_hop_fraction <= 1.0

    def test_max_shift_bounded_by_range_or_residual(self):
        report = trimming_report(512, trim_range_nm=0.8)
        assert report.max_shift_nm <= 0.8 + 1e-9

    def test_invalid_trim_range(self):
        with pytest.raises(ConfigurationError):
            trimming_report(16, trim_range_nm=0.0)

    def test_small_ring_hops_less(self):
        # Smaller ring -> larger FSR -> longer forward walks for rings
        # deviated upward -> with the same range, *more* hops; check the
        # direction explicitly.
        big_fsr = trimming_report(
            512, ring=MicroringResonator(radius_m=3.2e-6), trim_range_nm=1.0
        )
        small_fsr = trimming_report(
            512, ring=MicroringResonator(radius_m=20e-6), trim_range_nm=1.0
        )
        assert big_fsr.fsr_hop_fraction >= small_fsr.fsr_hop_fraction


class TestPlatformTrimming:
    def test_one_entry_per_die(self):
        result = platform_trimming_power_w(
            {"3x3 conv-0": 1000, "mem-0": 500}
        )
        assert set(result) == {"3x3 conv-0", "mem-0"}
        assert all(power > 0 for power in result.values())

    def test_chiplets_average_better_than_worst_die(self):
        """Many small dies diversify the die-level offset; a monolithic
        reticle rides a single draw."""
        n_total = 6360
        chiplets = platform_trimming_power_w(
            {f"chiplet-{i}": n_total // 8 for i in range(8)}
        )
        per_ring_chiplets = sum(chiplets.values()) / n_total
        worst_die = max(
            trimming_report(n_total, die_index=i).total_power_w / n_total
            for i in range(8)
        )
        assert per_ring_chiplets <= worst_die

    def test_deterministic(self):
        counts = {"a": 100, "b": 200}
        assert platform_trimming_power_w(counts) == (
            platform_trimming_power_w(counts)
        )
