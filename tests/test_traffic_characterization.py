"""Synthetic traffic generation and network characterisation."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.errors import ConfigurationError
from repro.experiments.network_characterization import (
    FABRIC_KINDS,
    characterize,
    characterize_all,
    render_characterization,
)
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment
from repro.sim.traffic import TrafficGenerator, TrafficPattern


def make_generator(pattern):
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
    compute_ids = tuple(s.chiplet_id for s in floorplan.compute_sites)
    return TrafficGenerator(env, fabric, compute_ids, pattern)


class TestTrafficPattern:
    def test_valid_patterns(self):
        for name in ("hotspot", "writeback", "mixed", "uniform"):
            TrafficPattern(name=name)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficPattern(name="tornado")

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficPattern(offered_load_bps=0)

    def test_invalid_read_fraction(self):
        with pytest.raises(ConfigurationError):
            TrafficPattern(read_fraction=1.5)


class TestTrafficGenerator:
    def test_hotspot_injects_reads_only(self):
        pattern = TrafficPattern(name="hotspot", offered_load_bps=0.5e12,
                                 duration_s=20e-6)
        generator = make_generator(pattern)
        report = generator.run()
        assert report.messages_injected > 0
        assert generator.fabric.bits_written == 0.0
        assert generator.fabric.bits_read > 0

    def test_writeback_injects_writes_only(self):
        pattern = TrafficPattern(name="writeback", offered_load_bps=0.5e12,
                                 duration_s=20e-6)
        generator = make_generator(pattern)
        generator.run()
        assert generator.fabric.bits_read == 0.0
        assert generator.fabric.bits_written > 0

    def test_mixed_injects_both(self):
        pattern = TrafficPattern(name="mixed", offered_load_bps=1e12,
                                 duration_s=50e-6, read_fraction=0.5)
        generator = make_generator(pattern)
        generator.run()
        assert generator.fabric.bits_read > 0
        assert generator.fabric.bits_written > 0

    def test_deterministic_given_seed(self):
        pattern = TrafficPattern(offered_load_bps=0.5e12, duration_s=20e-6,
                                 seed=42)
        first = make_generator(pattern).run()
        second = make_generator(pattern).run()
        assert first.messages_injected == second.messages_injected
        assert first.completion_time_s == pytest.approx(
            second.completion_time_s
        )

    def test_injection_rate_tracks_offered_load(self):
        pattern = TrafficPattern(offered_load_bps=1e12, duration_s=100e-6)
        report = make_generator(pattern).run()
        offered_bits = 1e12 * 100e-6
        assert report.bits_injected == pytest.approx(offered_bits, rel=0.3)

    def test_latencies_recorded_per_message(self):
        pattern = TrafficPattern(offered_load_bps=0.2e12, duration_s=20e-6)
        report = make_generator(pattern).run()
        assert report.latencies.count == report.messages_injected
        assert report.mean_latency_s > 0

    def test_empty_chiplet_list_rejected(self):
        env = Environment()
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        with pytest.raises(ConfigurationError):
            TrafficGenerator(env, fabric, (), TrafficPattern())


class TestCharacterization:
    def test_photonic_outperforms_electrical(self):
        loads = (0.2e12,)
        photonic = characterize("photonic-static", loads)
        electrical = characterize("electrical", loads)
        assert photonic[0].throughput_tbps > electrical[0].throughput_tbps
        assert photonic[0].mean_latency_us < electrical[0].mean_latency_us

    def test_latency_rises_with_load(self):
        points = characterize("photonic-static", (0.2e12, 4e12))
        assert points[1].mean_latency_us > points[0].mean_latency_us

    def test_electrical_saturates_at_port_bandwidth(self):
        points = characterize("electrical", (1e12,))
        assert points[0].report.saturated
        port_bw = DEFAULT_PLATFORM.mesh_effective_link_bandwidth_bps
        assert points[0].report.achieved_throughput_bps <= 1.2 * port_bw

    def test_photonic_bounded_by_hbm(self):
        points = characterize("photonic-static", (8e12,))
        hbm = DEFAULT_PLATFORM.hbm_internal_bandwidth_bps
        assert points[0].report.achieved_throughput_bps <= 1.05 * hbm

    def test_awgr_saturates_below_resipi(self):
        load = (2e12,)
        awgr = characterize("awgr", load)
        resipi = characterize("photonic-resipi", load)
        assert awgr[0].throughput_tbps < resipi[0].throughput_tbps

    def test_characterize_all_covers_fabrics(self):
        curves = characterize_all(loads_bps=(0.2e12,))
        assert set(curves) == set(FABRIC_KINDS)

    def test_render(self):
        curves = characterize_all(loads_bps=(0.2e12,))
        text = render_characterization(curves)
        assert "photonic-resipi" in text
        assert "saturated" in text
