"""Electrical mesh interposer fabric."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.interposer.electrical.mesh import ElectricalMeshFabric
from repro.interposer.topology import build_floorplan
from repro.sim.core import Environment


def make_mesh(chunk_bits=256 * 1024):
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    fabric = ElectricalMeshFabric(
        env, DEFAULT_PLATFORM, floorplan, chunk_bits=chunk_bits
    )
    return env, fabric


class TestRouting:
    def test_route_endpoints(self):
        _, fabric = make_mesh()
        route = fabric._xy_route("mem-0", "3x3 conv-0")
        assert route[0].name == "inj:mem-0"
        assert route[-1].name == "ej:3x3 conv-0"

    def test_route_length_matches_hops(self):
        _, fabric = make_mesh()
        for site in fabric.floorplan.compute_sites:
            route = fabric._xy_route("mem-0", site.chiplet_id)
            hops = fabric.floorplan.manhattan_hops("mem-0", site.chiplet_id)
            # inject + one link per hop + eject.
            assert len(route) == hops + 2

    def test_mesh_has_24_directed_links(self):
        _, fabric = make_mesh()
        # 3x3 mesh: 12 undirected adjacencies, two directions each.
        assert len(fabric.links) == 24

    def test_link_bandwidth_derated(self):
        _, fabric = make_mesh()
        link = next(iter(fabric.links.values()))
        assert link.bandwidth_bps == pytest.approx(
            DEFAULT_PLATFORM.mesh_effective_link_bandwidth_bps
        )


class TestTransfers:
    def test_read_completes(self):
        env, fabric = make_mesh()
        done = fabric.read("3x3 conv-0", 1e6)
        env.run()
        assert done.processed
        assert fabric.bits_read == 1e6

    def test_write_completes(self):
        env, fabric = make_mesh()
        done = fabric.write("5x5 conv-1", 1e6)
        env.run()
        assert done.processed

    def test_multicast_replicates_traffic(self):
        group = ("3x3 conv-0", "3x3 conv-1", "3x3 conv-2")
        env, fabric = make_mesh()
        done = fabric.read(group[0], 1e6, multicast=group)
        env.run()
        assert done.processed
        assert fabric.bits_read == pytest.approx(3e6)

    def test_multicast_slower_than_photonic_unicast_equivalent(self):
        """Replication makes the mesh pay per destination."""
        env1, fabric1 = make_mesh()
        fabric1.read("3x3 conv-0", 5e6)
        t_one = env1.run()
        env2, fabric2 = make_mesh()
        fabric2.read(
            "3x3 conv-0", 5e6,
            multicast=("3x3 conv-0", "3x3 conv-1", "3x3 conv-2",
                       "5x5 conv-0", "5x5 conv-1"),
        )
        t_five = env2.run()
        assert t_five > t_one

    def test_memory_injection_port_is_bottleneck(self):
        env, fabric = make_mesh()
        for site in fabric.floorplan.compute_sites:
            fabric.read(site.chiplet_id, 10e6)
        total = env.run()
        port_bw = fabric.ports["inj:mem-0"].bandwidth_bps
        assert total >= (8 * 10e6) / port_bw * 0.95

    def test_chunks_pipeline_across_hops(self):
        """Many small chunks should not pay full per-chunk serialization
        at every hop in sequence (store-and-forward pipelining)."""
        env_small, fabric_small = make_mesh(chunk_bits=64 * 1024)
        fabric_small.read("3x3 conv-2", 10e6)  # a 2-hop destination
        t_pipelined = env_small.run()

        # Upper bound: un-pipelined would multiply by route length (4).
        port_bw = fabric_small.ports["inj:mem-0"].bandwidth_bps
        serial_once = 10e6 / port_bw
        assert t_pipelined < 2.5 * serial_once

    def test_hop_accounting(self):
        env, fabric = make_mesh()
        fabric.write("3x3 conv-0", 1e6)
        env.run()
        assert fabric.hop_bits > 0
        assert fabric.mm_bits > 0


class TestEnergy:
    def test_energy_report(self):
        env, fabric = make_mesh()
        fabric.read("7x7 conv-0", 10e6)
        env.run()
        report = fabric.energy_report()
        assert report.dynamic_energy_j > 0
        assert report.static_energy_j > 0
        for key in ("router_static", "router_dynamic", "interposer_wires",
                    "microbumps", "hbm"):
            assert key in report.breakdown_j

    def test_farther_destination_costs_more_wire_energy(self):
        env1, fabric1 = make_mesh()
        fabric1.read("dense100-0", 1e6)  # adjacent to memory (1 hop)
        env1.run()
        near = fabric1.mm_bits

        env2, fabric2 = make_mesh()
        far_site = max(
            fabric2.floorplan.compute_sites,
            key=lambda s: fabric2.floorplan.manhattan_hops(
                "mem-0", s.chiplet_id
            ),
        )
        fabric2.read(far_site.chiplet_id, 1e6)
        env2.run()
        assert fabric2.mm_bits > near
