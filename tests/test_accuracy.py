"""Analog accuracy model, validated against the functional MAC unit."""

import math

import numpy as np
import pytest

from repro.core.accuracy import (
    dot_product_snr,
    min_dac_bits_for_effective_bits,
    model_accuracy_report,
    worst_layer,
)
from repro.core.mac_unit import MacUnitSpec, PhotonicMacUnit
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError


class TestAnalyticalSNR:
    def test_snr_improves_with_dac_bits(self):
        low = dot_product_snr(64, MacUnitSpec(9, dac_bits=4))
        high = dot_product_snr(64, MacUnitSpec(9, dac_bits=10))
        assert high.snr_db > low.snr_db

    def test_snr_improves_with_adc_bits(self):
        low = dot_product_snr(64, MacUnitSpec(9, adc_bits=4))
        high = dot_product_snr(64, MacUnitSpec(9, adc_bits=12))
        assert high.snr_db > low.snr_db

    def test_longer_dots_gain_snr(self):
        """Signal grows as L^2, noise as L: long dots average noise out."""
        short = dot_product_snr(9, MacUnitSpec(9))
        long = dot_product_snr(576, MacUnitSpec(9))
        assert long.snr_db > short.snr_db

    def test_effective_bits_formula(self):
        estimate = dot_product_snr(64, MacUnitSpec(9))
        assert estimate.effective_bits == pytest.approx(
            (estimate.snr_db - 1.76) / 6.02
        )

    def test_invalid_dot_length(self):
        with pytest.raises(ConfigurationError):
            dot_product_snr(0, MacUnitSpec(9))


class TestMonteCarloValidation:
    """The analytical noise model must match the functional simulation."""

    @pytest.mark.parametrize("dac_bits", [4, 6, 8])
    def test_predicted_rms_matches_measured(self, dac_bits):
        spec = MacUnitSpec(vector_length=9, dac_bits=dac_bits, adc_bits=12)
        unit = PhotonicMacUnit(spec)
        rng = np.random.default_rng(99)
        length = 9
        errors = []
        for _ in range(300):
            acts = rng.uniform(0, 1, length)
            weights = rng.uniform(0, 1, length)
            exact = float(np.dot(acts, weights))
            measured = unit.dot(acts, weights)
            errors.append(measured - exact)
        measured_noise = float(np.mean(np.square(errors)))
        predicted_noise = dot_product_snr(length, spec).noise_power
        # Within a factor of 3 across resolutions (the analytical model
        # assumes uniform quantisation error; ring weighting adds a
        # deterministic component).
        assert measured_noise < 3.0 * predicted_noise + 1e-9
        assert measured_noise > predicted_noise / 3.0

    def test_high_resolution_is_nearly_exact(self):
        spec = MacUnitSpec(vector_length=9, dac_bits=12, adc_bits=14)
        unit = PhotonicMacUnit(spec)
        rng = np.random.default_rng(5)
        acts = rng.uniform(0, 1, 9)
        weights = rng.uniform(0, 1, 9)
        assert unit.dot(acts, weights) == pytest.approx(
            float(np.dot(acts, weights)), abs=5e-3
        )


class TestModelReport:
    @pytest.fixture(scope="class")
    def report(self):
        workload = extract_workload(zoo.build("LeNet5"))
        return model_accuracy_report(workload)

    def test_one_entry_per_layer(self, report):
        assert len(report) == 5

    def test_worst_layer_is_shortest_dot(self, report):
        worst = worst_layer(report)
        assert worst.dot_length == min(e.dot_length for e in report)

    def test_all_layers_above_4_effective_bits_at_8bit(self, report):
        for entry in report:
            assert entry.effective_bits > 4.0

    def test_empty_report_rejected(self):
        with pytest.raises(ConfigurationError):
            worst_layer([])


class TestCoDesign:
    def test_min_dac_bits_monotone_in_target(self):
        low = min_dac_bits_for_effective_bits(64, 4.0)
        high = min_dac_bits_for_effective_bits(64, 7.0)
        assert high >= low

    def test_unreachable_target_raises(self):
        with pytest.raises(ConfigurationError):
            min_dac_bits_for_effective_bits(9, 20.0)

    def test_long_dots_tolerate_lower_dacs(self):
        short = min_dac_bits_for_effective_bits(9, 6.0)
        long = min_dac_bits_for_effective_bits(1024, 6.0)
        assert long <= short
