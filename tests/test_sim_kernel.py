"""Discrete-event simulation kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.core import Environment, Event
from repro.sim.resources import BandwidthChannel, Resource, Store
from repro.sim.stats import (
    EpochTrafficMonitor,
    LatencyRecorder,
    TimeWeightedValue,
)


class TestEnvironment:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(5.0)
        assert env.run() == 5.0

    def test_events_fire_in_time_order(self):
        env = Environment()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            def make(d):
                def proc():
                    yield env.timeout(d)
                    fired.append(d)
                return proc
            env.process(make(delay)())
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_fifo_tiebreak_at_same_time(self):
        env = Environment()
        fired = []
        for tag in "abc":
            def make(t):
                def proc():
                    yield env.timeout(1.0)
                    fired.append(t)
                return proc
            env.process(make(tag)())
        env.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_bounds_time(self):
        env = Environment()
        env.timeout(10.0)
        assert env.run(until=4.0) == 4.0
        assert env.now == 4.0

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_process_return_value(self):
        env = Environment()

        def worker():
            yield env.timeout(1.0)
            return 42

        proc = env.process(worker())
        env.run()
        assert proc.value == 42

    def test_process_chaining(self):
        env = Environment()

        def inner():
            yield env.timeout(2.0)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return result + "!"

        proc = env.process(outer())
        env.run()
        assert proc.value == "inner-done!"
        assert env.now == 2.0

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield 5

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_all_of_waits_for_slowest(self):
        env = Environment()

        def worker():
            barrier = env.all_of([env.timeout(1.0, "a"), env.timeout(3.0, "b")])
            values = yield barrier
            return (env.now, values)

        proc = env.process(worker())
        env.run()
        assert proc.value == (3.0, ["a", "b"])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def worker():
            values = yield env.all_of([])
            return values

        proc = env.process(worker())
        env.run()
        assert proc.value == []

    def test_yield_already_processed_event(self):
        env = Environment()

        def worker():
            t = env.timeout(1.0, "x")
            yield env.timeout(5.0)
            value = yield t  # fired long ago
            return (env.now, value)

        proc = env.process(worker())
        env.run()
        assert proc.value == (5.0, "x")

    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_run_until_event_stops_with_perpetual_process(self):
        env = Environment()

        def forever():
            while True:
                yield env.timeout(1.0)

        def finite():
            yield env.timeout(3.5)
            return "done"

        env.process(forever())
        proc = env.process(finite())
        env.run_until_event(proc)
        assert proc.value == "done"
        assert env.now == 3.5

    def test_run_until_event_time_limit(self):
        env = Environment()

        def forever():
            while True:
                yield env.timeout(1.0)

        env.process(forever())
        never = env.event()
        with pytest.raises(SimulationError):
            env.run_until_event(never, limit=10.0)

    def test_run_until_event_limit_keeps_over_limit_event(self):
        env = Environment()

        def late():
            yield env.timeout(20.0)
            return "late"

        proc = env.process(late())
        with pytest.raises(SimulationError):
            env.run_until_event(proc, limit=10.0)
        # The t=20 event was peeked, not popped: a retry with a larger
        # limit still completes the process.
        env.run_until_event(proc, limit=30.0)
        assert proc.value == "late"
        assert env.now == 20.0

    def test_run_until_event_empty_queue_raises(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run_until_event(never)

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(2.5)
        assert env.peek() == 2.5

    def test_peek_sees_immediate_events(self):
        env = Environment()
        env.timeout(2.5)
        env.event().succeed()
        assert env.peek() == 0.0


class TestRunClampSemantics:
    """``run(until=...)`` clamp contract (documented on the method)."""

    def test_idle_advance_on_empty_queue(self):
        env = Environment()
        assert env.run(until=3.0) == 3.0
        assert env.now == 3.0

    def test_idle_advance_past_last_event(self):
        env = Environment()
        env.timeout(1.0)
        assert env.run(until=5.0) == 5.0
        assert env.now == 5.0

    def test_event_exactly_at_until_fires(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(4.0)
            fired.append(env.now)

        env.process(proc())
        assert env.run(until=4.0) == 4.0
        assert fired == [4.0]

    def test_until_in_past_raises_instead_of_rewinding(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=2.0)
        assert env.now == 5.0  # clock untouched by the failed call

    def test_until_equal_to_now_is_a_noop(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=5.0)
        assert env.run(until=5.0) == 5.0

    def test_tiled_runs_cover_the_timeline_without_gaps(self):
        env = Environment()
        fired = []

        def proc():
            for _ in range(3):
                yield env.timeout(2.0)
                fired.append(env.now)

        env.process(proc())
        for bound in (1.0, 3.0, 7.0):
            env.run(until=bound)
            assert env.now == bound
        assert fired == [2.0, 4.0, 6.0]

    def test_run_until_event_backwards_time_guard(self):
        import heapq

        env = Environment()
        env.timeout(5.0)
        env.run()  # now == 5.0
        stale = Event(env)
        stale._triggered = True
        heapq.heappush(env._queue, (1.0, 999_999, stale))
        never = env.event()
        with pytest.raises(SimulationError):
            env.run_until_event(never)

    def test_run_backwards_time_guard(self):
        import heapq

        env = Environment()
        env.timeout(5.0)
        env.run()  # now == 5.0
        stale = Event(env)
        stale._triggered = True
        heapq.heappush(env._queue, (1.0, 999_999, stale))
        with pytest.raises(SimulationError):
            env.run()


class TestSameTimeSequencing:
    """Zero-delay (immediate) and heap events must interleave in strict
    insertion order — the determinism contract of the kernel."""

    def test_succeed_and_zero_timeout_fifo(self):
        env = Environment()
        order = []

        def waiter(tag, event):
            yield event
            order.append(tag)

        first = env.event()
        env.process(waiter("a", first))
        # b's zero-timeout fires before b's bootstrap runs, so b resumes
        # via a same-time reschedule that lands *after* the two succeed
        # events already in the queue — for both the seed kernel and the
        # fast path.
        env.process(waiter("b", env.timeout(0.0)))
        second = env.event()
        env.process(waiter("c", second))
        first.succeed()
        second.succeed()
        env.run()
        assert order == ["a", "c", "b"]

    def test_already_processed_yield_resumes_in_insertion_order(self):
        env = Environment()
        order = []

        def early():
            t = env.timeout(1.0, "x")
            yield env.timeout(2.0)
            # t fired long ago: the resume is scheduled at `now`, after
            # anything already queued for time 2.0.
            yield t
            order.append("resumed")

        def peer():
            yield env.timeout(2.0)
            order.append("peer")

        env.process(early())
        env.process(peer())
        env.run()
        assert order == ["peer", "resumed"]

    def test_heap_event_before_later_immediate_at_same_time(self):
        env = Environment()
        order = []

        def driver():
            yield env.timeout(1.0)
            order.append("heap-1")
            # Scheduled *after* the 1.0 heap entries below were pushed,
            # so it must fire after them despite being immediate.
            env.process(immediate())

        def immediate():
            order.append("immediate")
            return
            yield  # pragma: no cover

        def peer():
            yield env.timeout(1.0)
            order.append("heap-2")

        env.process(driver())
        env.process(peer())
        env.run()
        assert order == ["heap-1", "heap-2", "immediate"]


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        env.run()
        assert first.processed and second.processed
        assert not third.triggered
        assert resource.queue_length == 1

    def test_release_grants_waiter_fifo(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(tag, hold):
            grant = resource.request()
            yield grant
            order.append(f"{tag}-start")
            yield env.timeout(hold)
            resource.release()
            order.append(f"{tag}-end")

        env.process(worker("a", 2.0))
        env.process(worker("b", 1.0))
        env.run()
        assert order == ["a-start", "a-end", "b-start", "b-end"]
        assert env.now == 3.0

    def test_release_without_request_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_utilization_tracking(self):
        env = Environment()
        resource = Resource(env)

        def worker():
            grant = resource.request()
            yield grant
            yield env.timeout(3.0)
            resource.release()
            yield env.timeout(1.0)

        env.process(worker())
        env.run()
        assert resource.busy_time() == pytest.approx(3.0)
        assert resource.utilization() == pytest.approx(0.75)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter():
            item = yield store.get()
            return item

        proc = env.process(getter())
        env.run()
        assert proc.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def getter():
            item = yield store.get()
            return (env.now, item)

        def putter():
            yield env.timeout(2.0)
            store.put("late")

        proc = env.process(getter())
        env.process(putter())
        env.run()
        assert proc.value == (2.0, "late")

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        got = []

        def getter():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(getter())
        env.run()
        assert got == [1, 2]
        assert len(store) == 0


class TestBandwidthChannel:
    def test_serialization_time(self):
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=1000.0)
        assert channel.serialization_time(500.0) == pytest.approx(0.5)

    def test_transfer_occupies_channel(self):
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=100.0)

        def sender(bits):
            yield env.process(channel.transfer(bits))
            return env.now

        first = env.process(sender(100.0))   # 1 s
        second = env.process(sender(200.0))  # then 2 s more
        env.run()
        assert first.value == pytest.approx(1.0)
        assert second.value == pytest.approx(3.0)
        assert channel.bits_transferred == pytest.approx(300.0)
        assert channel.transfer_count == 2

    def test_extra_latency_after_release(self):
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=100.0)

        def sender():
            yield env.process(channel.transfer(100.0, extra_latency_s=0.5))
            return env.now

        proc = env.process(sender())
        env.run()
        assert proc.value == pytest.approx(1.5)

    def test_bandwidth_reconfiguration(self):
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=100.0)
        channel.set_bandwidth(200.0)
        assert channel.serialization_time(100.0) == pytest.approx(0.5)

    def test_invalid_bandwidth(self):
        env = Environment()
        with pytest.raises(SimulationError):
            BandwidthChannel(env, bandwidth_bps=0.0)
        channel = BandwidthChannel(env, 1.0)
        with pytest.raises(SimulationError):
            channel.set_bandwidth(-1.0)

    def test_negative_bits_rejected(self):
        env = Environment()
        channel = BandwidthChannel(env, 1.0)
        with pytest.raises(SimulationError):
            channel.serialization_time(-1.0)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                    max_size=20))
    def test_total_time_is_sum_of_serializations(self, sizes):
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=1e3)

        def sender(bits):
            yield env.process(channel.transfer(bits))

        for bits in sizes:
            env.process(sender(bits))
        env.run()
        assert env.now == pytest.approx(sum(sizes) / 1e3)


class TestStats:
    def test_time_weighted_value_integral(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=2.0)

        def driver():
            yield env.timeout(3.0)
            signal.set(5.0)
            yield env.timeout(2.0)

        env.process(driver())
        env.run()
        assert signal.integral() == pytest.approx(2 * 3 + 5 * 2)
        assert signal.time_average() == pytest.approx(16 / 5)

    def test_time_weighted_add(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=1.0)
        signal.add(2.0)
        assert signal.value == 3.0

    def test_epoch_monitor_bins(self):
        env = Environment()
        monitor = EpochTrafficMonitor(env, epoch_length_s=1.0)
        monitor.record("a", 100.0)
        monitor.record("a", 50.0)
        monitor.record("b", 10.0)
        epoch = monitor.close_epoch()
        assert epoch == {"a": 150.0, "b": 10.0}
        assert monitor.close_epoch() == {}
        assert len(monitor.history) == 2

    def test_epoch_monitor_demand(self):
        env = Environment()
        monitor = EpochTrafficMonitor(env, epoch_length_s=2.0)
        demand = monitor.demanded_bandwidth_bps({"x": 100.0})
        assert demand == {"x": 50.0}

    def test_epoch_monitor_rejects_negative(self):
        env = Environment()
        monitor = EpochTrafficMonitor(env, 1.0)
        with pytest.raises(SimulationError):
            monitor.record("a", -1.0)

    def test_latency_recorder(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        recorder.record(3.0)
        assert recorder.count == 2
        assert recorder.mean == 2.0
        assert recorder.max == 3.0
        assert recorder.total == 4.0

    def test_latency_recorder_empty(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.max == 0.0

    def test_latency_recorder_rejects_negative(self):
        with pytest.raises(SimulationError):
            LatencyRecorder().record(-0.1)
