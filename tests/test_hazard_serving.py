"""Hazard engine: time-varying faults, windowed metrics, determinism."""

import pickle

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.engine import InferenceEngine
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError, SpecError, UnknownNameError
from repro.interposer.photonic.controllers import ReSiPIController
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.photonic.faults import (
    FaultInjector,
    FaultPlan,
    GatewayFail,
    GatewayRepair,
    HazardEngine,
    HazardTimeline,
    LaserDegradation,
    RingDriftBurst,
)
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import KernelMatchMapper
from repro.serving.metrics import RequestRecord, windowed_stats
from repro.sim.core import Environment
from repro.studies import (
    HAZARDS,
    FaultEventSpec,
    FaultSpec,
    ModelTraffic,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)
from repro.studies.compile import (
    is_classic_serving,
    lower_serving_point,
    render_dry_run,
    resolve_config,
    run_study,
)

SIPH = "2.5D-CrossLight-SiPh"


def make_fabric():
    env = Environment()
    floorplan = build_floorplan(DEFAULT_PLATFORM)
    return env, PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)


def fault_spec(events, **overrides) -> StudySpec:
    kwargs = dict(
        name="hazard",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model="LeNet5", fraction=0.8, slo_s=300e-6),
                ModelTraffic(model="MobileNetV2", fraction=0.2,
                             slo_s=5e-3),
            ),
            arrival="mmpp", rate_rps=40e3, duration_s=1e-3,
        ),
        platform=PlatformSpec(
            name=SIPH, faults=FaultSpec(events=tuple(events)),
        ),
        scheduler=SchedulerSpec(policy="edf"),
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


MIDSTREAM_EVENTS = (
    FaultEventSpec(kind="gateway-fail", at_s=300e-6, memory_gateways=7),
    FaultEventSpec(kind="ring-drift", at_s=350e-6, duration_s=250e-6,
                   temperature_rise_k=10.0),
    FaultEventSpec(kind="gateway-repair", at_s=650e-6,
                   memory_gateways=7),
)


class TestTimelineValidation:
    def test_actionable_memory_overfail_message(self):
        env, fabric = make_fabric()
        timeline = HazardTimeline((
            GatewayFail(at_s=0.0, memory_gateways=5),
            GatewayFail(at_s=1e-6, memory_gateways=3),
        ))
        with pytest.raises(ConfigurationError) as error:
            HazardEngine(fabric, timeline)
        message = str(error.value)
        # Observed vs allowed counts, and the failing instant.
        assert "8 cumulative failure(s)" in message
        assert "at most 7 may be down" in message
        assert "t=1e-06s" in message

    def test_actionable_chiplet_overfail_message(self):
        env, fabric = make_fabric()
        chiplet = sorted(fabric.inventories)[0]
        n_write = fabric.inventories[chiplet].n_write_gateways
        timeline = HazardTimeline((
            GatewayFail(at_s=0.0,
                        chiplet_gateways=((chiplet, n_write, 0),)),
        ))
        with pytest.raises(ConfigurationError) as error:
            HazardEngine(fabric, timeline)
        assert chiplet in str(error.value)
        assert f"of {n_write} gateways" in str(error.value)

    def test_unknown_chiplet_gets_did_you_mean(self):
        env, fabric = make_fabric()
        known = sorted(fabric.inventories)[0]
        typo = known[:-1]  # close enough for a suggestion
        timeline = HazardTimeline((
            GatewayFail(at_s=0.0, chiplet_gateways=((typo, 1, 0),)),
        ))
        with pytest.raises(UnknownNameError) as error:
            HazardEngine(fabric, timeline)
        assert known in error.value.suggestions

    def test_repair_more_than_failed_rejected(self):
        env, fabric = make_fabric()
        timeline = HazardTimeline((
            GatewayFail(at_s=0.0, memory_gateways=2),
            GatewayRepair(at_s=1e-6, memory_gateways=3),
        ))
        with pytest.raises(ConfigurationError, match="only 2"):
            HazardEngine(fabric, timeline)

    def test_negative_counts_rejected(self):
        """The legacy injector refused negative counts; so must the
        engine (they would silently inflate surviving capacity)."""
        for plan in (
            FaultPlan(memory_gateways_failed=-1),
            FaultPlan(chiplet_gateways_failed={"3x3 conv-0": (-1, 0)}),
        ):
            env, fabric = make_fabric()
            with pytest.raises(ConfigurationError, match=">= 0"):
                FaultInjector(fabric, plan)
        env, fabric = make_fabric()
        with pytest.raises(ConfigurationError, match=">= 0"):
            HazardEngine(fabric, HazardTimeline((
                GatewayFail(at_s=0.0, memory_gateways=2),
                GatewayRepair(at_s=1e-6, memory_gateways=-1),
            )))

    def test_events_must_be_chronological(self):
        with pytest.raises(ConfigurationError, match="chronologically"):
            HazardTimeline((
                GatewayFail(at_s=1e-6, memory_gateways=1),
                GatewayFail(at_s=0.0, memory_gateways=1),
            ))

    def test_hazard_errors_pickle_cleanly(self):
        """Worker-raised hazard errors survive the process-pool trip."""
        env, fabric = make_fabric()
        for timeline in (
            HazardTimeline((GatewayFail(at_s=0.0, memory_gateways=9),)),
            HazardTimeline((
                GatewayFail(at_s=0.0, chiplet_gateways=(("nope", 1, 0),)),
            )),
        ):
            with pytest.raises(ConfigurationError) as error:
                env, fabric = make_fabric()
                HazardEngine(fabric, timeline)
            clone = pickle.loads(pickle.dumps(error.value))
            assert type(clone) is type(error.value)
            assert str(clone) == str(error.value)

    def test_factories_reject_inert_knobs(self):
        with pytest.raises(ConfigurationError, match="power_fraction"):
            HAZARDS.get("gateway-fail")(
                at_s=0.0, memory_gateways=1, power_fraction=0.5
            )
        with pytest.raises(ConfigurationError, match="chiplet_gateways"):
            HAZARDS.get("ring-drift")(
                at_s=0.0, duration_s=1e-6, temperature_rise_k=5.0,
                chiplet_gateways=(("c", 1, 0),),
            )
        with pytest.raises(ConfigurationError, match="duration"):
            HAZARDS.get("laser-degradation")(
                at_s=0.0, power_fraction=0.5
            )
        with pytest.raises(UnknownNameError, match="ring-drift"):
            HAZARDS.get("ring-drft")


class TestStaticEquivalence:
    def run_one_shot(self, attach):
        """One MobileNetV2 inference with ``attach(fabric)`` applied."""
        config = DEFAULT_PLATFORM
        env = Environment()
        floorplan = build_floorplan(config)
        fabric = PhotonicInterposerFabric(env, config, floorplan)
        attach(fabric)
        ReSiPIController(env, fabric, config)
        workload = extract_workload(zoo.build("MobileNetV2"))
        mapping = KernelMatchMapper(config, floorplan).map_workload(
            workload
        )
        return InferenceEngine(env, config, fabric).run(mapping)

    def test_plan_timeline_bit_identical_to_injector(self):
        plan = FaultPlan(
            memory_gateways_failed=5,
            chiplet_gateways_failed={"3x3 conv-0": (2, 2)},
        )
        injected = self.run_one_shot(
            lambda fabric: FaultInjector(fabric, plan)
        )
        engine = self.run_one_shot(
            lambda fabric: HazardEngine(
                fabric, HazardTimeline.from_plan(plan)
            )
        )
        assert injected == engine  # bit-identical, not approx

    def test_empty_timeline_bit_identical_to_healthy(self):
        healthy = self.run_one_shot(lambda fabric: None)
        empty = self.run_one_shot(
            lambda fabric: HazardEngine(fabric, HazardTimeline())
        )
        assert healthy == empty

    def test_late_failure_bounded_by_static_failure(self):
        """A mid-run failure costs less than the same failure at t=0,
        and more than no failure at all."""
        plan = FaultPlan(memory_gateways_failed=7)
        healthy = self.run_one_shot(lambda fabric: None)
        static = self.run_one_shot(
            lambda fabric: FaultInjector(fabric, plan)
        )
        mid = self.run_one_shot(
            lambda fabric: HazardEngine(fabric, HazardTimeline((
                GatewayFail(at_s=healthy / 2, memory_gateways=7),
            )))
        )
        assert healthy < mid < static


class TestCapacityDynamics:
    def test_midstream_fail_and_repair_change_caps(self):
        env, fabric = make_fabric()
        engine = HazardEngine(fabric, HazardTimeline((
            GatewayFail(at_s=1e-6, memory_gateways=6),
            GatewayRepair(at_s=3e-6, memory_gateways=6),
        )))
        assert engine.surviving_memory_gateways() == 8
        env.run(until=2e-6)
        assert engine.surviving_memory_gateways() == 2
        assert fabric.active_memory_gateways.value == 2
        # The cap binds mid-stream: a controller decision cannot
        # resurrect dead gateways...
        fabric.set_active_memory_gateways(8)
        assert fabric.active_memory_gateways.value == 2
        env.run(until=4e-6)
        # ...but after the repair, capacity (not activity) is restored:
        assert engine.surviving_memory_gateways() == 8
        assert fabric.active_memory_gateways.value == 2
        fabric.set_active_memory_gateways(8)
        assert fabric.active_memory_gateways.value == 8
        assert engine.time_degraded_s() == pytest.approx(2e-6)
        assert engine.fault_window() == pytest.approx((1e-6, 3e-6))

    def test_ring_drift_burst_cuts_and_restores_bandwidth(self):
        env, fabric = make_fabric()
        baseline = fabric.memory_write_channel.bandwidth_bps
        burst = RingDriftBurst(at_s=1e-6, duration_s=2e-6,
                               temperature_rise_k=10.0)
        usable = burst.usable_fraction(DEFAULT_PLATFORM.n_wavelengths)
        assert 0.0 < usable < 1.0
        HazardEngine(fabric, HazardTimeline((burst,)))
        env.run(until=2e-6)
        degraded = fabric.memory_write_channel.bandwidth_bps
        assert degraded == pytest.approx(baseline * usable)
        env.run(until=4e-6)
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            baseline
        )

    def test_laser_degradation_fraction(self):
        event = LaserDegradation(at_s=0.0, duration_s=1e-6,
                                 power_fraction=0.5)
        # Linear wall-plug model: half the drive closes half the comb.
        assert event.usable_fraction(64) == pytest.approx(0.5)
        weak = LaserDegradation(at_s=0.0, duration_s=1e-6,
                                power_fraction=0.001)
        assert weak.usable_fraction(64) == pytest.approx(1 / 64)
        # Round fractions must not lose a line to binary-float noise
        # (0.7 * 10 == 6.999... would floor to 6).
        seven_tenths = LaserDegradation(at_s=0.0, duration_s=1e-6,
                                        power_fraction=0.7)
        assert seven_tenths.usable_fraction(10) == pytest.approx(0.7)
        assert LaserDegradation(
            at_s=0.0, duration_s=1e-6, power_fraction=0.29
        ).usable_fraction(100) == pytest.approx(0.29)

    def test_transients_compound(self):
        env, fabric = make_fabric()
        baseline = fabric.memory_write_channel.bandwidth_bps
        drift = RingDriftBurst(at_s=1e-6, duration_s=4e-6,
                               temperature_rise_k=10.0)
        laser = LaserDegradation(at_s=2e-6, duration_s=2e-6,
                                 power_fraction=0.5)
        n_lambda = DEFAULT_PLATFORM.n_wavelengths
        expected = drift.usable_fraction(n_lambda) * 0.5
        HazardEngine(fabric, HazardTimeline((drift, laser)))
        env.run(until=3e-6)
        assert fabric.memory_write_channel.bandwidth_bps == pytest.approx(
            baseline * expected
        )


class TestWindowedStats:
    def record(self, arrival, latency, dropped=False, deadline=None):
        return RequestRecord(
            request_id=0, model="m", arrival_s=arrival,
            dispatch_s=arrival, finish_s=arrival + latency,
            deadline_s=deadline, dropped=dropped,
        )

    def test_records_split_by_arrival(self):
        records = [
            self.record(0.1, 1.0),
            self.record(1.5, 5.0),
            self.record(2.5, 1.0),
            self.record(3.5, 1.0),  # past elapsed boundary -> "after"
        ]
        windows = windowed_stats(records, 1.0, 2.0, 3.0)
        assert [w.label for w in windows] == ["before", "during", "after"]
        assert [w.completed for w in windows] == [1, 1, 2]
        assert windows[1].latency.p99_s == pytest.approx(5.0)
        assert windows[0].goodput_rps == pytest.approx(1.0)

    def test_degenerate_windows_dropped(self):
        windows = windowed_stats([self.record(0.5, 1.0)], 0.0, 4.0, 2.0)
        assert [w.label for w in windows] == ["during"]

    def test_shed_and_violations_counted(self):
        records = [
            self.record(1.1, 0.0, dropped=True, deadline=1.2),
            self.record(1.2, 2.0, deadline=1.4),
        ]
        window = windowed_stats(records, 1.0, 2.0, 2.0)[-1]
        assert window.label == "during"
        assert window.shed == 1
        assert window.completed == 1
        assert window.slo_violations == 2
        assert window.slo_attainment == 0.0


class TestSpecIntegration:
    def test_fault_spec_round_trips(self):
        spec = fault_spec(MIDSTREAM_EVENTS)
        clone = StudySpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.digest == spec.digest

    def test_faults_move_the_digest(self):
        base = fault_spec(())
        faulted = fault_spec(MIDSTREAM_EVENTS)
        assert base.digest != faulted.digest
        nudged = fault_spec((
            MIDSTREAM_EVENTS[0],
            MIDSTREAM_EVENTS[1],
            FaultEventSpec(kind="gateway-repair", at_s=651e-6,
                           memory_gateways=7),
        ))
        assert nudged.digest != faulted.digest

    def test_faults_move_the_cell_key(self):
        base = fault_spec(())
        faulted = fault_spec(MIDSTREAM_EVENTS)
        base_cell = lower_serving_point(base, resolve_config(base))
        fault_cell = lower_serving_point(faulted, resolve_config(faulted))
        assert base_cell.key() != fault_cell.key()

    def test_faulted_point_never_classic(self):
        single = StudySpec(
            name="single",
            kind="serving",
            workload=WorkloadSpec(models=(ModelTraffic(model="LeNet5"),)),
            platform=PlatformSpec(name=SIPH, faults=FaultSpec(
                events=(FaultEventSpec(kind="gateway-fail", at_s=0.0,
                                       memory_gateways=1),),
            )),
        )
        assert not is_classic_serving(single)

    def test_faults_rejected_off_siph(self):
        spec = fault_spec(
            MIDSTREAM_EVENTS,
            platform=PlatformSpec(name="CrossLight", faults=FaultSpec(
                events=MIDSTREAM_EVENTS
            )),
        )
        with pytest.raises(SpecError, match="SiPh"):
            run_study(spec)

    def test_unknown_hazard_kind_fails_fast(self):
        spec = fault_spec((
            FaultEventSpec(kind="gateway-fial", at_s=0.0,
                           memory_gateways=1),
        ))
        with pytest.raises(UnknownNameError, match="gateway-fail"):
            run_study(spec)

    def test_faults_sweepable_as_axis(self):
        spec = fault_spec((), sweep=SweepSpec(axes=(
            SweepAxis(field="platform.faults", values=(
                {},
                {"events": [{"kind": "gateway-fail", "at_s": 0.0,
                             "memory_gateways": 4}]},
            )),
        )))
        points = spec.expand()
        assert len(points) == 2
        assert not points[0].platform.faults.events
        assert points[1].platform.faults.events[0].memory_gateways == 4
        assert points[0].digest != points[1].digest

    def test_bad_worker_fault_error_crosses_process_pool(self):
        """Chiplet names resolve only against the built fabric, so the
        failure happens in the worker; the typed error must survive the
        ProcessPoolExecutor trip intact."""
        spec = fault_spec((
            FaultEventSpec(kind="gateway-fail", at_s=0.0,
                           chiplet_gateways=(("3x3 conv-99", 1, 0),)),
        ))
        with pytest.raises(UnknownNameError, match="3x3 conv-"):
            run_study(spec, jobs=2)


class TestFaultServingEndToEnd:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(fault_spec(MIDSTREAM_EVENTS))

    def test_windows_show_degradation_and_recovery(self, study):
        (result,) = study.serving_results()
        by_label = {window.label: window for window in result.windows}
        assert set(by_label) == {"before", "during", "after"}
        assert by_label["during"].latency.p99_s > (
            by_label["before"].latency.p99_s
        )
        assert result.time_degraded_s == pytest.approx(350e-6)
        kinds = [event.kind for event in result.hazard_events]
        assert kinds == ["gateway-fail", "ring-drift", "gateway-repair"]
        assert result.hazard_events[0].memory_gateways_delta == -7

    def test_fault_run_slower_than_clean_run(self, study):
        clean = run_study(fault_spec(())).serving_results()[0]
        (faulted,) = study.serving_results()
        assert faulted.latency.p99_s > clean.latency.p99_s
        assert not clean.windows and clean.time_degraded_s == 0.0

    def test_export_includes_hazard_fields(self, study):
        import json

        from repro.experiments.export import (
            serving_results_to_csv,
            serving_results_to_json,
        )

        (record,) = json.loads(
            serving_results_to_json(study.serving_results())
        )
        assert len(record["fault_windows"]) == 3
        assert record["hazard_events"][0]["kind"] == "gateway-fail"
        assert record["time_degraded_s"] == pytest.approx(350e-6)
        assert "time_degraded_s" in serving_results_to_csv(
            study.serving_results()
        ).splitlines()[0]

    def test_deterministic_serial_parallel_and_cached(self, tmp_path):
        spec = fault_spec(MIDSTREAM_EVENTS)
        serial = run_study(spec)
        parallel = run_study(spec, jobs=4)
        cold = run_study(spec, cache_dir=tmp_path)
        warm = run_study(spec, cache_dir=tmp_path)
        assert serial.points == parallel.points
        assert serial.points == cold.points
        assert cold.points == warm.points


class TestDryRun:
    def test_dry_run_lists_grid_and_keys(self):
        spec = fault_spec((), sweep=SweepSpec(axes=(
            SweepAxis(field="workload.rate_rps", values=(20e3, 40e3)),
        )))
        text = render_dry_run(spec)
        assert spec.digest in text
        assert "2 point(s), 2 cell(s)" in text
        assert "workload.rate_rps=20000" in text
        points, cells = __import__(
            "repro.studies.compile", fromlist=["lower_study"]
        ).lower_study(spec)
        for group in cells:
            assert group[0].key() in text

    def test_dry_run_cli_does_not_simulate(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "spec.json"
        path.write_text(fault_spec(MIDSTREAM_EVENTS).to_json())
        assert main(["study", str(path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run, nothing simulated" in out
        assert "ScenarioCell" in out

    def test_dry_run_cli_reports_bad_spec(self, capsys, tmp_path):
        from repro.cli import main

        spec = fault_spec((
            FaultEventSpec(kind="gateway-fial", at_s=0.0,
                           memory_gateways=1),
        ))
        path = tmp_path / "typo.json"
        path.write_text(spec.to_json())
        assert main(["study", str(path), "--dry-run"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_example_fault_spec_parses(self):
        from repro.studies.compile import load_spec

        spec = load_spec("examples/fault_serving_spec.json")
        assert spec.kind == "serving"
        points = spec.expand()
        assert len(points) == 2
        assert not points[0].platform.faults.events
        assert len(points[1].platform.faults.events) == 3
