"""Compute-fabric power model and power parameter sanity."""

import pytest

from repro.photonics.laser import LaserSource
from repro.photonics.microring import TuningMechanism
from repro.power import params as ep
from repro.power.compute_power import (
    mac_fabric_power,
    mac_unit_link_budget,
)


class TestMacUnitLinkBudget:
    def test_budget_scales_with_vector_length(self):
        small = mac_unit_link_budget(9, 2e-3)
        large = mac_unit_link_budget(100, 2e-3)
        assert large.total_loss_db > small.total_loss_db

    def test_budget_scales_with_waveguide(self):
        short = mac_unit_link_budget(9, 2e-3)
        long = mac_unit_link_budget(9, 20e-3)
        assert long.total_loss_db > short.total_loss_db

    def test_breakdown_contains_banks(self):
        breakdown = mac_unit_link_budget(25, 2e-3).breakdown()
        assert "mod_bank_passby" in breakdown
        assert "weight_bank_passby" in breakdown


class TestMacFabricPower:
    def test_zero_activity_zeroes_dynamic_parts(self):
        power = mac_fabric_power(10, 9, 2e9, activity=0.0)
        assert power.dac_w == 0.0
        assert power.adc_w == 0.0
        assert power.tuning_w == 0.0
        assert power.trimming_w > 0.0
        assert power.laser_w > 0.0

    def test_full_activity_dominated_by_dacs(self):
        power = mac_fabric_power(10, 9, 2e9, activity=1.0)
        assert power.dac_w > power.adc_w

    def test_total_is_sum(self):
        power = mac_fabric_power(4, 25, 2e9, activity=0.5)
        assert power.total_w == pytest.approx(
            power.dac_w + power.adc_w + power.tuning_w
            + power.trimming_w + power.laser_w + power.receiver_w
        )

    def test_thermal_trimming_costs_more(self):
        eo = mac_fabric_power(8, 64, 1e9,
                              trimming=TuningMechanism.ELECTRO_OPTIC)
        to = mac_fabric_power(8, 64, 1e9,
                              trimming=TuningMechanism.THERMO_OPTIC)
        assert to.trimming_w > 3 * eo.trimming_w

    def test_long_waveguides_raise_laser_power(self):
        chiplet = mac_fabric_power(8, 64, 1e9, waveguide_length_m=2e-3)
        monolithic = mac_fabric_power(8, 64, 1e9, waveguide_length_m=20e-3)
        assert monolithic.laser_w > chiplet.laser_w

    def test_on_chip_laser_less_efficient(self):
        off = mac_fabric_power(8, 16, 1e9, laser=LaserSource.off_chip())
        on = mac_fabric_power(8, 16, 1e9, laser=LaserSource.on_chip())
        # On-chip: no coupling loss but half the wall-plug efficiency;
        # at these small budgets WPE dominates.
        assert on.laser_w > off.laser_w * 1.2

    def test_power_scales_linearly_with_units(self):
        one = mac_fabric_power(1, 9, 2e9)
        ten = mac_fabric_power(10, 9, 2e9)
        assert ten.total_w == pytest.approx(10 * one.total_w, rel=1e-6)


class TestPowerParams:
    """Order-of-magnitude sanity on the electrical parameter table."""

    def test_hbm_cheaper_than_ddr_per_bit(self):
        assert ep.HBM_ENERGY_J_PER_BIT < ep.DDR_ENERGY_J_PER_BIT

    def test_onchip_wire_cheaper_than_interposer(self):
        assert (
            ep.ONCHIP_WIRE_ENERGY_J_PER_BIT_PER_MM
            < ep.INTERPOSER_WIRE_ENERGY_J_PER_BIT_PER_MM
        )

    def test_router_energy_picojoule_scale(self):
        assert 0.05e-12 < ep.ROUTER_ENERGY_J_PER_BIT < 5e-12

    def test_statics_positive(self):
        assert ep.ROUTER_STATIC_POWER_W > 0
        assert ep.HBM_STATIC_POWER_W > 0
        assert ep.CHIPLET_LOGIC_STATIC_POWER_W > 0
        assert ep.RESIPI_CONTROLLER_POWER_W > 0
