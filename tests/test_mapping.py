"""Tiling and layer-to-chiplet mapping."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DEFAULT_PLATFORM
from repro.dnn import zoo
from repro.dnn.workload import LayerWorkload, extract_workload
from repro.errors import MappingError
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import KernelMatchMapper
from repro.mapping.tiling import tile_layer


def make_layer(kind="Conv2D", kernel=3, dot_length=None, n_dots=1000,
               macs=None):
    dot_length = dot_length or kernel * kernel * 16
    macs = macs if macs is not None else dot_length * n_dots
    return LayerWorkload(
        index=0, name="layer", kind=kind, kernel_size=kernel,
        dot_length=dot_length, n_dots=n_dots, macs=macs,
        weight_bits=1000, input_bits=2000, output_bits=1500,
    )


@pytest.fixture(scope="module")
def mapper():
    return KernelMatchMapper(
        DEFAULT_PLATFORM, build_floorplan(DEFAULT_PLATFORM)
    )


class TestTiling:
    def test_matching_kernel_is_fully_efficient(self):
        layer = make_layer(kernel=3, dot_length=9 * 16, n_dots=100)
        result = tile_layer(layer, vector_length=9, unit_kernel_size=3)
        assert result.efficiency == pytest.approx(1.0)
        assert result.mode == "spatial"
        assert result.vector_ops == 100 * 16

    def test_dense_channel_major(self):
        layer = make_layer(kind="Dense", kernel=1, dot_length=400, n_dots=10)
        result = tile_layer(layer, vector_length=100)
        assert result.mode == "channel-major"
        assert result.vector_ops == 40
        assert result.efficiency == pytest.approx(1.0)

    def test_partial_last_chunk_waste(self):
        layer = make_layer(kind="Dense", kernel=1, dot_length=150, n_dots=10)
        result = tile_layer(layer, vector_length=100)
        assert result.vector_ops == 20
        assert result.efficiency == pytest.approx(0.75)

    def test_small_kernel_on_big_unit_prefers_channel_major(self):
        # 3x3 conv on a 7x7 (49-lane) unit: spatial wastes 40/49 lanes,
        # channel-major packs the 9*C dot almost perfectly.
        layer = make_layer(kernel=3, dot_length=9 * 64, n_dots=100)
        result = tile_layer(layer, vector_length=49, unit_kernel_size=7)
        assert result.mode == "channel-major"
        assert result.efficiency > 0.9

    def test_large_kernel_on_small_unit(self):
        layer = make_layer(kernel=7, dot_length=49 * 4, n_dots=10)
        result = tile_layer(layer, vector_length=9, unit_kernel_size=3)
        # ceil(196/9) = 22 channel-major beats 4*ceil(49/9) = 24 spatial.
        assert result.vector_ops == 10 * 22

    def test_empty_layer(self):
        layer = make_layer(macs=0, n_dots=0, dot_length=9)
        result = tile_layer(layer, vector_length=9)
        assert result.vector_ops == 0
        assert result.mode == "empty"

    def test_invalid_vector_length(self):
        with pytest.raises(MappingError):
            tile_layer(make_layer(), vector_length=0)

    @given(
        st.integers(min_value=1, max_value=200),   # dot length
        st.integers(min_value=1, max_value=500),   # dots
        st.sampled_from([9, 25, 49, 100]),          # unit sizes
    )
    def test_lanes_always_cover_macs(self, dot_length, n_dots, vector_len):
        layer = make_layer(kind="Dense", kernel=1, dot_length=dot_length,
                           n_dots=n_dots)
        result = tile_layer(layer, vector_length=vector_len)
        assert result.vector_ops * vector_len >= layer.macs
        assert 0 < result.efficiency <= 1.0


class TestMapper:
    def test_3x3_layers_include_3x3_chiplets_with_top_efficiency(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 64,
                           n_dots=100_000)
        mapping = mapper.map_layer(layer)
        kinds = {alloc.kind for alloc in mapping.allocations}
        # Spillover mapping: matching kind always present, best-ranked.
        assert "3x3 conv" in kinds
        assert mapping.tiling.efficiency == pytest.approx(1.0)

    def test_strict_mapper_keeps_convs_on_matching_kind(self):
        strict = KernelMatchMapper(
            DEFAULT_PLATFORM, build_floorplan(DEFAULT_PLATFORM),
            strict_kernel_match=True,
        )
        layer = make_layer(kernel=3, dot_length=9 * 64, n_dots=100_000)
        mapping = strict.map_layer(layer)
        assert {a.kind for a in mapping.allocations} == {"3x3 conv"}

    def test_strict_mapper_excludes_dense_units_for_convs(self):
        strict = KernelMatchMapper(
            DEFAULT_PLATFORM, build_floorplan(DEFAULT_PLATFORM),
            strict_kernel_match=True,
        )
        layer = make_layer(kernel=7, dot_length=49 * 64, n_dots=100_000)
        mapping = strict.map_layer(layer)
        assert all(a.kind != "dense100" for a in mapping.allocations)

    def test_dense_layers_prefer_dense_chiplets(self, mapper):
        layer = make_layer(kind="Dense", kernel=1, dot_length=2048,
                           n_dots=1000)
        mapping = mapper.map_layer(layer)
        assert any(a.kind == "dense100" for a in mapping.allocations)

    def test_small_layer_uses_single_chiplet(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 4, n_dots=100)
        mapping = mapper.map_layer(layer)
        assert len(mapping.allocations) == 1

    def test_large_layer_spreads_wide(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 256, n_dots=1_000_000)
        mapping = mapper.map_layer(layer)
        assert len(mapping.allocations) >= 3

    def test_work_split_proportional_to_throughput(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 256, n_dots=1_000_000)
        mapping = mapper.map_layer(layer)
        ops = [a.vector_ops for a in mapping.allocations]
        macs = [a.n_macs * a.vector_length for a in mapping.allocations]
        # Same-kind chiplets receive equal shares.
        by_kind = {}
        for alloc in mapping.allocations:
            by_kind.setdefault(alloc.kind, []).append(alloc.vector_ops)
        for kind_ops in by_kind.values():
            assert max(kind_ops) - min(kind_ops) <= 1

    def test_weight_bits_conserved(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 256, n_dots=500_000)
        mapping = mapper.map_layer(layer)
        total_weight = sum(a.weight_bits for a in mapping.allocations)
        assert total_weight == pytest.approx(layer.weight_bits, rel=0.01)

    def test_output_bits_conserved(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 256, n_dots=500_000)
        mapping = mapper.map_layer(layer)
        total_output = sum(a.output_bits for a in mapping.allocations)
        assert total_output == pytest.approx(layer.output_bits, rel=0.01)

    def test_vector_ops_cover_layer(self, mapper):
        layer = make_layer(kernel=5, dot_length=25 * 32, n_dots=250_000)
        mapping = mapper.map_layer(layer)
        assert mapping.total_vector_ops >= mapping.tiling.vector_ops * 0.99

    def test_replication_counts_chiplets(self, mapper):
        layer = make_layer(kernel=3, dot_length=9 * 256, n_dots=1_000_000)
        mapping = mapper.map_layer(layer)
        assert mapping.replication == len(mapping.allocations)

    def test_map_full_workload(self, mapper):
        workload = extract_workload(zoo.build("ResNet50"))
        mapping = mapper.map_workload(workload)
        assert len(mapping) == len(workload)
        for layer_mapping in mapping:
            assert layer_mapping.allocations

    def test_invalid_threshold_rejected(self):
        floorplan = build_floorplan(DEFAULT_PLATFORM)
        with pytest.raises(MappingError):
            KernelMatchMapper(DEFAULT_PLATFORM, floorplan,
                              efficiency_threshold=0.0)

    def test_depthwise_maps_to_3x3(self, mapper):
        workload = extract_workload(zoo.build("MobileNetV2"))
        depthwise = [l for l in workload if l.kind == "DepthwiseConv2D"]
        mapping = mapper.map_layer(depthwise[0])
        assert all(a.kind == "3x3 conv" for a in mapping.allocations)
