"""Extended model zoo (beyond Table 2)."""

import pytest

from repro.dnn import zoo
from repro.dnn.workload import extract_workload


class TestExtendedZoo:
    @pytest.mark.parametrize("name", list(zoo.EXTENDED_BUILDERS))
    def test_published_parameter_counts(self, name):
        model = zoo.build(name)
        assert model.total_params == zoo.EXTENDED_PARAMS[name]

    def test_resnet_family_depth_ordering(self):
        params = [
            zoo.build(name).total_params
            for name in ("ResNet50", "ResNet101", "ResNet152")
        ]
        assert params == sorted(params)

    def test_densenet_family_depth_ordering(self):
        params = [
            zoo.build(name).total_params
            for name in ("DenseNet121", "DenseNet169", "DenseNet201")
        ]
        assert params == sorted(params)

    def test_vgg19_has_16_conv_3_fc(self):
        model = zoo.build("VGG19")
        assert model.conv_layer_count == 16
        assert model.fc_layer_count == 3

    def test_resnet101_conv_census(self):
        # 1 stem + 33 blocks x 3 + 4 projections = 104.
        assert zoo.build("ResNet101").conv_layer_count == 104

    def test_classifier_heads(self):
        for name in zoo.EXTENDED_BUILDERS:
            assert zoo.build(name).output_shape == (1000,)

    def test_extended_models_run_through_workload_extraction(self):
        workload = extract_workload(zoo.build("ResNet101"))
        assert workload.total_macs == zoo.build("ResNet101").total_macs
        assert len(workload) == 105  # 104 conv + 1 fc

    def test_extended_model_simulates(self, runner):
        """An extended model runs end-to-end on the SiPh platform."""
        from repro.core.accelerator import CrossLight25DSiPh

        workload = extract_workload(zoo.build("DenseNet169"))
        result = CrossLight25DSiPh().run_workload(workload)
        assert result.latency_s > 0
        # Deeper than DenseNet121 -> slower than its sibling.
        sibling = runner.run("2.5D-CrossLight-SiPh", "DenseNet121")
        assert result.latency_s > sibling.latency_s
