"""Platform models end-to-end: the three accelerators on real workloads."""

import pytest

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.core.accelerator import (
    ALL_PLATFORMS,
    CrossLight25DElec,
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from repro.core.crosslight import monolithic_mapping
from repro.dnn import zoo
from repro.dnn.quantization import QuantizationConfig
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError


class TestResultSanity:
    @pytest.mark.parametrize(
        "platform",
        ["CrossLight", "2.5D-CrossLight-Elec", "2.5D-CrossLight-SiPh"],
    )
    def test_positive_metrics(self, runner, platform):
        result = runner.run(platform, "LeNet5")
        assert result.latency_s > 0
        assert result.total_energy_j > 0
        assert result.average_power_w > 0
        assert result.energy_per_bit_j > 0
        assert result.traffic_bits > 0

    def test_timeline_covers_all_layers(self, lenet_results):
        for result in lenet_results.values():
            assert len(result.layer_timeline) == 5
            names = [t.name for t in result.layer_timeline]
            assert names == ["c1", "c3", "c5", "f6", "output"]

    def test_timeline_monotonic(self, lenet_results):
        for result in lenet_results.values():
            previous_end = 0.0
            for timing in result.layer_timeline:
                assert timing.start_s >= previous_end - 1e-12
                assert timing.end_s >= timing.start_s
                previous_end = timing.end_s

    def test_last_layer_ends_at_latency(self, lenet_results):
        for result in lenet_results.values():
            assert result.layer_timeline[-1].end_s == pytest.approx(
                result.latency_s, rel=1e-6
            )

    def test_energy_breakdown_sums(self, lenet_results):
        for result in lenet_results.values():
            e = result.energy
            assert e.total_j == pytest.approx(
                e.network_static_j + e.network_dynamic_j
                + e.compute_static_j + e.compute_dynamic_j
                + e.logic_static_j
            )

    def test_platform_names(self, lenet_results):
        assert set(lenet_results) == {
            "CrossLight", "2.5D-CrossLight-Elec", "2.5D-CrossLight-SiPh",
        }

    def test_siph_reconfigures_on_real_traffic(self, runner):
        result = runner.run("2.5D-CrossLight-SiPh", "MobileNetV2")
        assert result.reconfigurations > 0

    def test_all_platforms_registry(self):
        assert set(ALL_PLATFORMS) == {
            "CrossLight", "2.5D-CrossLight-Elec", "2.5D-CrossLight-SiPh",
        }
        for name, cls in ALL_PLATFORMS.items():
            assert cls().name == name


class TestPaperShapes:
    """Relative claims of Section VI, at per-model granularity."""

    @pytest.mark.parametrize(
        "model", ["MobileNetV2", "ResNet50", "DenseNet121", "VGG16"]
    )
    def test_siph_fastest_on_large_models(self, runner, model):
        siph = runner.run("2.5D-CrossLight-SiPh", model)
        mono = runner.run("CrossLight", model)
        elec = runner.run("2.5D-CrossLight-Elec", model)
        assert siph.latency_s < mono.latency_s < elec.latency_s

    def test_lenet_siph_loses_epb_edge(self, runner):
        siph = runner.run("2.5D-CrossLight-SiPh", "LeNet5")
        mono = runner.run("CrossLight", "LeNet5")
        assert siph.energy_per_bit_j >= 0.8 * mono.energy_per_bit_j

    @pytest.mark.parametrize(
        "model", ["LeNet5", "ResNet50", "VGG16"]
    )
    def test_elec_lowest_power(self, runner, model):
        elec = runner.run("2.5D-CrossLight-Elec", model)
        siph = runner.run("2.5D-CrossLight-SiPh", model)
        assert elec.average_power_w < siph.average_power_w

    def test_resipi_power_scales_with_model_size(self, runner):
        small = runner.run("2.5D-CrossLight-SiPh", "LeNet5")
        large = runner.run("2.5D-CrossLight-SiPh", "VGG16")
        assert small.average_power_w < large.average_power_w


class TestConfigurationVariants:
    def test_fewer_wavelengths_slower_reads(self):
        workload = extract_workload(zoo.build("MobileNetV2"))
        narrow = CrossLight25DSiPh(
            DEFAULT_PLATFORM.with_wavelengths(8)
        ).run_workload(workload)
        wide = CrossLight25DSiPh(
            DEFAULT_PLATFORM.with_wavelengths(64)
        ).run_workload(workload)
        assert narrow.latency_s >= wide.latency_s

    def test_static_controller_runs(self):
        workload = extract_workload(zoo.build("LeNet5"))
        result = CrossLight25DSiPh(controller="static").run_workload(workload)
        assert result.reconfigurations == 0

    def test_prowaves_controller_runs(self):
        workload = extract_workload(zoo.build("LeNet5"))
        result = CrossLight25DSiPh(controller="prowaves").run_workload(
            workload
        )
        assert result.latency_s > 0

    def test_unknown_controller_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossLight25DSiPh(controller="oracle")

    def test_quantization_reduces_latency_on_comm_bound_platform(self):
        model = zoo.build("MobileNetV2")
        platform = CrossLight25DElec()
        full = platform.run_model(model, QuantizationConfig())
        slim = platform.run_model(
            model, QuantizationConfig(weight_bits=4, activation_bits=4)
        )
        assert slim.latency_s < full.latency_s

    def test_run_model_equals_run_workload(self):
        model = zoo.build("LeNet5")
        platform = MonolithicCrossLight()
        via_model = platform.run_model(model)
        via_workload = platform.run_workload(extract_workload(model))
        assert via_model.latency_s == pytest.approx(via_workload.latency_s)


class TestMonolithicMapping:
    def test_single_allocation_per_layer(self):
        workload = extract_workload(zoo.build("LeNet5"))
        mapping = monolithic_mapping(workload, DEFAULT_PLATFORM)
        for layer_mapping in mapping:
            assert len(layer_mapping.allocations) == 1
            alloc = layer_mapping.allocations[0]
            assert alloc.chiplet_id == "mono-0"
            assert alloc.n_macs == DEFAULT_PLATFORM.mono_n_vdp_units
            assert alloc.vector_length == DEFAULT_PLATFORM.mono_vector_length

    def test_full_traffic_on_single_die(self):
        workload = extract_workload(zoo.build("LeNet5"))
        mapping = monolithic_mapping(workload, DEFAULT_PLATFORM)
        for layer_mapping, layer in zip(mapping, workload):
            assert layer_mapping.allocations[0].weight_bits == (
                layer.weight_bits
            )
