"""Result export (JSON/CSV) and ASCII Gantt rendering."""

import csv
import io
import json

import pytest

from repro.core.gantt import render_gantt, utilization_summary
from repro.core.metrics import EnergyBreakdown, InferenceResult, LayerTiming
from repro.errors import ConfigurationError
from repro.experiments.export import (
    RESULT_FIELDS,
    result_to_dict,
    results_to_csv,
    results_to_json,
    table3_to_csv,
)
from repro.experiments.table3 import build_table3


class TestExport:
    def test_result_to_dict_fields(self, lenet_results):
        record = result_to_dict(lenet_results["CrossLight"])
        for field in RESULT_FIELDS:
            assert field in record
        assert "energy_breakdown_j" in record
        assert len(record["layer_timeline"]) == 5

    def test_json_round_trip(self, lenet_results):
        text = results_to_json(lenet_results.values())
        parsed = json.loads(text)
        assert len(parsed) == 3
        platforms = {entry["platform"] for entry in parsed}
        assert "2.5D-CrossLight-SiPh" in platforms

    def test_csv_structure(self, lenet_results):
        text = results_to_csv(lenet_results.values())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == list(RESULT_FIELDS)
        assert len(rows) == 4  # header + 3 results

    def test_csv_values_parse_as_numbers(self, lenet_results):
        text = results_to_csv(lenet_results.values())
        rows = list(csv.DictReader(io.StringIO(text)))
        for row in rows:
            assert float(row["latency_s"]) > 0
            assert float(row["average_power_w"]) > 0

    def test_table3_csv(self, runner):
        text = table3_to_csv(build_table3(runner))
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 11  # header + 10 platforms
        assert rows[0][0] == "platform"

    def test_write_text(self, tmp_path, lenet_results):
        from repro.experiments.export import write_text

        path = tmp_path / "results.json"
        write_text(str(path), results_to_json(lenet_results.values()))
        assert json.loads(path.read_text())


class TestGantt:
    def test_render_contains_all_layers(self, lenet_results):
        chart = render_gantt(lenet_results["2.5D-CrossLight-SiPh"])
        for layer in ("c1", "c3", "c5", "f6", "output"):
            assert layer in chart
        assert "#" in chart

    def test_bars_ordered_left_to_right(self, lenet_results):
        chart = render_gantt(lenet_results["CrossLight"])
        lines = [l for l in chart.splitlines() if "#" in l]
        first_positions = [line.index("#") for line in lines]
        assert first_positions == sorted(first_positions)

    def test_downsampling_long_models(self, runner):
        result = runner.run("2.5D-CrossLight-SiPh", "ResNet50")
        chart = render_gantt(result, max_rows=10)
        assert "showing every" in chart
        bar_lines = [l for l in chart.splitlines() if "#" in l]
        assert len(bar_lines) <= 12

    def test_width_validation(self, lenet_results):
        with pytest.raises(ConfigurationError):
            render_gantt(lenet_results["CrossLight"], width=5)

    def test_empty_timeline(self):
        result = InferenceResult(
            platform="p", model="m", latency_s=1.0,
            energy=EnergyBreakdown(0, 0, 0, 0, 0),
            traffic_bits=1, layer_timeline=(),
        )
        assert "empty timeline" in render_gantt(result)

    def test_utilization_summary(self, lenet_results):
        text = utilization_summary(lenet_results["2.5D-CrossLight-SiPh"])
        assert "critical path" in text
        assert "reconfigurations" in text
