"""Study compiler: lowering, cache identity, scenarios, CLI verb."""

import subprocess
import sys

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.accelerator import MonolithicCrossLight
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError, UnknownNameError
from repro.experiments.serving_study import (
    ScenarioCell,
    ServingCell,
    render_slo_summary,
    serving_study,
    simulate_scenario_cell,
)
from repro.serving.scheduler import (
    BatchPolicy,
    RequestHandle,
    RequestScheduler,
)
from repro.sim.core import Environment
from repro.sim.traffic import PoissonArrivals
from repro.studies import (
    ModelTraffic,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)
from repro.studies.builders import (
    run_spec,
    serve_study_spec,
    slo_attainment_sweep_spec,
)
from repro.studies.compile import (
    expand_points,
    is_classic_serving,
    lower_serving_point,
    render_study,
    resolve_config,
    run_study,
)

WORKLOAD = extract_workload(zoo.build("LeNet5"))


def classic_spec(**overrides) -> StudySpec:
    kwargs = dict(
        name="classic",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet5"),),
            rate_rps=150e3, duration_s=0.5e-3,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="fifo"),
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


def mix_spec(policy="edf", rate_rps=60e3, shed=False,
             capacity_bits=None) -> StudySpec:
    return StudySpec(
        name="mix",
        kind="serving",
        workload=WorkloadSpec(
            models=(
                ModelTraffic(model="LeNet5", fraction=0.7, slo_s=150e-6,
                             priority=1),
                ModelTraffic(model="MobileNetV2", fraction=0.3,
                             slo_s=4e-3, priority=0),
            ),
            rate_rps=rate_rps, duration_s=0.5e-3,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy=policy, shed_expired=shed),
        residency_capacity_bits=capacity_bits,
    )


class TestLowering:
    def test_classic_point_lowers_to_serving_cell(self):
        point = classic_spec()
        assert is_classic_serving(point)
        cell = lower_serving_point(point, resolve_config(point))
        assert isinstance(cell, ServingCell)
        # Same cache identity as a directly-built classic cell.
        legacy = ServingCell(
            platform="CrossLight", model="LeNet5", controller="resipi",
            policy=BatchPolicy.fifo(), arrival_kind="poisson",
            rate_rps=150e3, duration_s=0.5e-3, seed=7,
            config=DEFAULT_PLATFORM,
        )
        assert cell.key() == legacy.key()

    def test_scenario_features_lower_to_scenario_cell(self):
        for point in (
            mix_spec(),  # multi-tenant
            classic_spec(scheduler=SchedulerSpec(policy="edf")),
            classic_spec(scheduler=SchedulerSpec(policy="fifo",
                                                 shed_expired=True)),
            classic_spec(residency_capacity_bits=1e9),
            classic_spec(workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5", slo_s=1e-4),),
            )),
            classic_spec(workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),),
                arrival="mmpp", burstiness=2.0,
            )),
        ):
            cell = lower_serving_point(point, resolve_config(point))
            assert isinstance(cell, ScenarioCell), point

    def test_scenario_key_tracks_spec_digest(self):
        base = mix_spec()
        cell = lower_serving_point(base, resolve_config(base))
        same = lower_serving_point(mix_spec(), resolve_config(base))
        moved = mix_spec(rate_rps=61e3)
        other = lower_serving_point(moved, resolve_config(moved))
        assert cell.key() == same.key()
        assert cell.key() != other.key()

    def test_scenario_cells_never_collide_without_digest(self):
        """Directly-built cells (default digest) still key uniquely."""
        base = dict(
            platform="CrossLight",
            models=(("LeNet5", 1.0, None, 0),),
            controller="resipi", policy=BatchPolicy.edf(),
            arrival_kind="poisson", rate_rps=1e5, duration_s=1e-3,
            seed=1, config=DEFAULT_PLATFORM,
        )
        cells = [
            ScenarioCell(**base),
            ScenarioCell(**{**base, "rate_rps": 2e5}),
            ScenarioCell(**{**base, "seed": 9}),
            ScenarioCell(**{**base, "arrival_kind": "mmpp"}),
            ScenarioCell(**{**base, "policy": BatchPolicy.fifo()}),
            ScenarioCell(**{**base, "burstiness": 2.0}),
            ScenarioCell(**{**base, "residency_capacity_bits": 1e9}),
            ScenarioCell(**{**base,
                            "models": (("LeNet5", 1.0, 1e-4, 0),)}),
        ]
        assert len({cell.key() for cell in cells}) == len(cells)

    def test_policy_spec_knobs_never_silently_noop(self):
        """max_batch > 1 on a single-dispatch policy is an error, not a
        silent no-op (digest would move without behavior moving)."""
        from repro.studies.compile import build_policy

        for policy in ("fifo", "edf", "priority"):
            with pytest.raises(ConfigurationError):
                build_policy(SchedulerSpec(policy=policy, max_batch=8))
        built = build_policy(SchedulerSpec(policy="max-batch",
                                           max_batch=8))
        assert built.max_batch == 8

    def test_registered_controller_is_buildable(self):
        """A plugin controller registered through CONTROLLERS reaches
        platform construction, not just spec validation."""
        from repro.core.accelerator import CrossLight25DSiPh
        from repro.studies import CONTROLLERS

        def dummy(env, fabric, config):  # pragma: no cover - not built
            raise NotImplementedError

        CONTROLLERS.register("dummy-ctl", dummy)
        try:
            platform = CrossLight25DSiPh(controller="dummy-ctl")
            assert platform.controller_name == "dummy-ctl"
        finally:
            CONTROLLERS._entries.pop("dummy-ctl")

    def test_scenario_key_stable_across_processes(self):
        spec = mix_spec()
        script = (
            "import sys\n"
            "from repro.studies import StudySpec\n"
            "from repro.studies.compile import (lower_serving_point, "
            "resolve_config)\n"
            "spec = StudySpec.from_json(sys.stdin.read())\n"
            "print(lower_serving_point(spec, resolve_config(spec)).key())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], input=spec.to_json(),
            capture_output=True, text=True, check=True,
        )
        local = lower_serving_point(spec, resolve_config(spec))
        assert out.stdout.strip() == local.key()

    def test_controller_axis_pins_off_siph(self):
        spec = serve_study_spec(
            "LeNet5", ("CrossLight", "2.5D-CrossLight-SiPh"),
            ("resipi", "static"), SchedulerSpec(), (1e5,),
        )
        points = expand_points(spec)
        combos = [
            (p.platform.name, p.platform.controller) for p in points
        ]
        assert combos == [
            ("CrossLight", "resipi"),
            ("2.5D-CrossLight-SiPh", "resipi"),
            ("2.5D-CrossLight-SiPh", "static"),
        ]

    def test_unknown_names_fail_fast_with_suggestions(self):
        bad_model = classic_spec(workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet"),),
        ))
        with pytest.raises(UnknownNameError, match="LeNet5"):
            run_study(bad_model)
        bad_platform = classic_spec(
            platform=PlatformSpec(name="CrossLite"),
        )
        with pytest.raises(UnknownNameError, match="CrossLight"):
            run_study(bad_platform)


class TestClassicEquivalence:
    def test_spec_path_matches_legacy_serving_study(self, tmp_path):
        spec = serve_study_spec(
            "LeNet5", ("CrossLight",), ("resipi",), SchedulerSpec(),
            (100e3, 250e3), duration_s=0.5e-3,
        )
        study = run_study(spec, cache_dir=tmp_path / "a")
        legacy = serving_study(
            model_name="LeNet5", platforms=("CrossLight",),
            rates_rps=(100e3, 250e3), duration_s=0.5e-3,
            cache_dir=tmp_path / "b",
        )
        assert study.serving_results() == legacy

    def test_inference_spec_matches_run_model(self):
        spec = run_spec("LeNet5", "CrossLight", batch_size=2)
        result = run_study(spec).points[0].results[0]
        direct = MonolithicCrossLight().run_model(
            zoo.build("LeNet5"), batch_size=2
        )
        assert result == direct

    def test_warm_cache_serves_bit_identical(self, tmp_path):
        spec = mix_spec()
        cold = run_study(spec, cache_dir=tmp_path)
        warm = run_study(spec, cache_dir=tmp_path)
        assert cold.points == warm.points


class TestScenarios:
    def test_multi_tenant_mix_serves_both_models(self):
        study = run_study(mix_spec())
        (result,) = study.serving_results()
        assert result.model == "70%LeNet5+30%MobileNetV2"
        served = {stats.model for stats in result.per_model}
        assert served == {"LeNet5", "MobileNetV2"}
        for stats in result.per_model:
            assert stats.completed > 0
        assert result.requests_completed == result.requests_injected
        assert result.total_energy_j > 0.0

    def test_mix_is_deterministic(self):
        first = run_study(mix_spec()).serving_results()
        second = run_study(mix_spec()).serving_results()
        assert first == second

    def test_edf_beats_fifo_for_tight_slo_tenant(self):
        spec = slo_attainment_sweep_spec(
            rates_rps=(100e3,), duration_s=1e-3,
        )
        study = run_study(spec)
        by_policy = {}
        for result in study.serving_results():
            tight = next(s for s in result.per_model
                         if s.model == "LeNet5")
            loose = next(s for s in result.per_model
                         if s.model == "MobileNetV2")
            by_policy[result.policy] = (tight, loose)
        fifo_tight, fifo_loose = by_policy["fifo+shed"]
        edf_tight, edf_loose = by_policy["edf+shed"]
        assert edf_tight.slo_attainment > fifo_tight.slo_attainment
        assert edf_loose.slo_attainment == fifo_loose.slo_attainment == 1.0

    def test_shedding_drops_expired_requests(self):
        study = run_study(slo_attainment_sweep_spec(
            rates_rps=(200e3,), duration_s=1e-3,
        ))
        for result in study.serving_results():
            assert result.requests_shed > 0
            assert (
                result.requests_completed + result.requests_shed
                == result.requests_injected
            )
            assert result.slo_violations >= result.requests_shed
            assert 0.0 < result.slo_attainment < 1.0

    def test_residency_capacity_forces_cross_model_eviction(self):
        tight = run_study(mix_spec(capacity_bits=1e6)).serving_results()[0]
        roomy = run_study(mix_spec()).serving_results()[0]
        # Evictions cost re-fetches: the capped run cannot be faster.
        assert tight.latency.p99_s >= roomy.latency.p99_s

    def test_render_study_includes_slo_table(self):
        study = run_study(mix_spec())
        text = render_study(study)
        assert "per-model SLO attainment" in text
        assert "LeNet5" in text and "MobileNetV2" in text
        assert render_slo_summary(study.serving_results())


class TestSchedulerApi:
    def make_scheduler(self, **kwargs):
        env = Environment()
        sim = MonolithicCrossLight().build_simulation(env)
        return RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5", **kwargs
        ), env

    def test_submit_returns_public_handle_with_deadline(self):
        scheduler, env = self.make_scheduler(slo_s=5e-5)
        handle = scheduler.submit()
        assert isinstance(handle, RequestHandle)
        assert handle.model == "LeNet5"
        assert handle.submit_s == env.now
        assert handle.deadline_s == pytest.approx(env.now + 5e-5)
        no_slo, _ = self.make_scheduler()
        assert no_slo.submit().deadline_s is None

    def test_submit_unknown_model_is_typed(self):
        scheduler, _ = self.make_scheduler()
        with pytest.raises(UnknownNameError, match="LeNet5"):
            scheduler.submit(model="LeNet")

    def test_duplicate_model_registration_rejected(self):
        scheduler, env = self.make_scheduler()
        with pytest.raises(ConfigurationError, match="already served"):
            scheduler.add_model("LeNet5", scheduler.mapping)

    def test_served_models_and_slos(self):
        scheduler, env = self.make_scheduler(slo_s=1e-4)
        scheduler.add_model("second", scheduler.mapping, slo_s=2e-4,
                            priority=3)
        assert scheduler.served_models == ("LeNet5", "second")
        assert scheduler.slos() == {"LeNet5": 1e-4, "second": 2e-4}

    def test_edf_dispatches_earliest_deadline_first(self):
        """Under a backlog, tight-deadline requests jump loose ones."""
        delays = {}
        for policy in (BatchPolicy.fifo(max_inflight=1),
                       BatchPolicy.edf(max_inflight=1)):
            scheduler, env = self.make_scheduler(
                policy=policy, slo_s=1e-3,
            )
            scheduler.add_model("tight", scheduler.mapping, slo_s=1e-5)
            scheduler.serve(
                PoissonArrivals(rate_rps=400e3, seed=3), 0.3e-3,
                models=iter(
                    ["LeNet5", "LeNet5", "tight", "LeNet5", "tight"] * 200
                ),
            )
            mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
            delays[policy.name] = {
                model: mean([r.queue_delay_s for r in scheduler.records
                             if r.model == model])
                for model in ("LeNet5", "tight")
            }
        # fifo is deadline-blind: both classes queue alike; edf pulls
        # the tight class ahead at the loose class's expense.
        assert delays["edf"]["tight"] < delays["fifo"]["tight"]
        assert delays["edf"]["tight"] < delays["edf"]["LeNet5"]

    def test_priority_policy_prefers_high_priority_model(self):
        scheduler, env = self.make_scheduler(
            policy=BatchPolicy.priority(max_inflight=1), priority=0,
        )
        scheduler.add_model("vip", scheduler.mapping, priority=5)
        order = iter(["LeNet5", "LeNet5", "vip", "LeNet5", "vip"] * 100)
        scheduler.serve(
            PoissonArrivals(rate_rps=500e3, seed=5), 0.2e-3, models=order,
        )
        vip_delay = [r.queue_delay_s for r in scheduler.records
                     if r.model == "vip"]
        base_delay = [r.queue_delay_s for r in scheduler.records
                      if r.model == "LeNet5"]
        assert vip_delay and base_delay
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(vip_delay) < mean(base_delay)

    def test_max_batch_sheds_expired_gathered_requests(self):
        """Shedding applies to batch members, not just the head."""
        scheduler, env = self.make_scheduler(
            policy=BatchPolicy.max_batch_with_timeout(
                max_batch=8, batch_timeout_s=20e-6, max_inflight=1,
                shed_expired=True,
            ),
            slo_s=5e-6,
        )
        scheduler.serve(PoissonArrivals(rate_rps=800e3, seed=2), 0.3e-3)
        assert scheduler.requests_shed > 0
        assert (
            scheduler.requests_completed + scheduler.requests_shed
            == scheduler.requests_injected
        )
        dropped = [r for r in scheduler.records if r.dropped]
        assert len(dropped) == scheduler.requests_shed
        # Executed batches only ever contain live requests.
        assert all(r.batch_size >= 1 for r in scheduler.records
                   if not r.dropped)

    def test_new_policy_labels_and_validation(self):
        assert BatchPolicy.edf().label == "edf"
        assert BatchPolicy.priority(shed_expired=True).label == (
            "priority+shed"
        )
        assert BatchPolicy.fifo(shed_expired=True).label == "fifo+shed"
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="edf", max_batch=2)
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="lifo")


class TestStudyCli:
    def test_study_verb_runs_spec_file(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "spec.json"
        path.write_text(classic_spec().to_json())
        json_out = tmp_path / "out.json"
        assert main(["study", str(path), "--json", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "classic" in out
        assert "goodput/s" in out
        assert json_out.exists()

    def test_study_verb_rejects_bad_spec(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{\"name\": \"x\"}")
        assert main(["study", str(path)]) == 2
        assert "workload" in capsys.readouterr().err

    def test_study_verb_reports_unknown_names(self, capsys, tmp_path):
        from repro.cli import main

        spec = classic_spec(workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet"),),
        ))
        path = tmp_path / "typo.json"
        path.write_text(spec.to_json())
        assert main(["study", str(path)]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_study_verb_missing_file(self, capsys):
        from repro.cli import main

        assert main(["study", "/nonexistent/spec.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_example_specs_parse(self):
        from repro.studies.compile import load_spec

        for name in ("examples/study_spec.json",
                     "examples/slo_sweep_spec.json"):
            spec = load_spec(name)
            assert spec.kind == "serving"
            assert spec.sweep.n_points >= 2
