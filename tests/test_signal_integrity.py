"""Signal integrity: crosstalk accumulation, BER, comb sizing."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DEFAULT_PLATFORM
from repro.errors import ConfigurationError
from repro.interposer.photonic.links import swmr_read_budget
from repro.interposer.topology import build_floorplan
from repro.photonics.link_budget import LinkBudget
from repro.photonics.signal_integrity import (
    crosstalk_fraction_per_ring,
    interposer_filter_ring,
    interposer_grid,
    link_signal_report,
    max_wavelengths_for_ber,
)
from repro.photonics.wdm import WDMGrid


@pytest.fixture(scope="module")
def read_budget(floorplan):
    return swmr_read_budget(DEFAULT_PLATFORM, floorplan)


class TestInterposerFilterDesign:
    def test_fsr_spans_the_64_channel_comb(self):
        ring = interposer_filter_ring()
        grid = interposer_grid(64)
        assert grid.fits_in_fsr(ring)

    def test_96_channels_alias(self):
        ring = interposer_filter_ring()
        assert not interposer_grid(96).fits_in_fsr(ring)

    def test_interposer_spacing_tighter_than_default(self):
        assert interposer_grid(2).channel_spacing_hz < WDMGrid(
            n_channels=2
        ).channel_spacing_hz


class TestCrosstalkFraction:
    def test_single_channel_no_crosstalk(self):
        ring = interposer_filter_ring()
        assert crosstalk_fraction_per_ring(ring, interposer_grid(1)) == 0.0

    def test_second_order_suppresses_quadratically(self):
        ring = interposer_filter_ring()
        grid = interposer_grid(64)
        first = crosstalk_fraction_per_ring(ring, grid, filter_order=1)
        second = crosstalk_fraction_per_ring(ring, grid, filter_order=2)
        single = first / 2.5
        assert second == pytest.approx(2.5 * single ** 2, rel=1e-9)
        assert second < first / 10

    def test_invalid_order(self):
        ring = interposer_filter_ring()
        with pytest.raises(ConfigurationError):
            crosstalk_fraction_per_ring(ring, interposer_grid(4), 0)

    @given(st.integers(min_value=1, max_value=4))
    def test_fraction_decreases_with_order(self, order):
        ring = interposer_filter_ring()
        grid = interposer_grid(16)
        assert crosstalk_fraction_per_ring(
            ring, grid, order + 1
        ) < crosstalk_fraction_per_ring(ring, grid, order)


class TestLinkSignalReport:
    def test_second_order_filters_close_64_lambda_link(self, read_budget):
        report = link_signal_report(
            read_budget, interposer_grid(64), n_rings_passed=8,
            filter_order=2,
        )
        assert report.meets_1e12
        assert report.q_factor > 7.0

    def test_first_order_filters_fail(self, read_budget):
        """The finding that motivates flat-top gateway filters."""
        report = link_signal_report(
            read_budget, interposer_grid(64), n_rings_passed=8,
            filter_order=1,
        )
        assert not report.meets_1e12
        assert report.ber > 1e-3

    def test_more_rings_more_crosstalk(self, read_budget):
        few = link_signal_report(read_budget, interposer_grid(64),
                                 n_rings_passed=2)
        many = link_signal_report(read_budget, interposer_grid(64),
                                  n_rings_passed=16)
        assert many.crosstalk_w > few.crosstalk_w
        assert many.ber >= few.ber

    def test_extra_launch_power_buys_margin(self, read_budget):
        nominal = link_signal_report(read_budget, interposer_grid(64),
                                     n_rings_passed=8)
        det = None
        boosted = link_signal_report(
            read_budget, interposer_grid(64), None, det, 8, 2,
            launch_power_w=nominal.received_signal_w
            / read_budget.transmission * 2.0,
        )
        assert boosted.received_signal_w > nominal.received_signal_w
        # Crosstalk grows with launch power too, but receiver noise no
        # longer dominates, so Q still improves.
        assert boosted.q_factor > nominal.q_factor

    def test_ber_is_valid_probability(self, read_budget):
        report = link_signal_report(read_budget, interposer_grid(32),
                                    n_rings_passed=4)
        assert 0.0 <= report.ber <= 0.5
        assert report.snr_db == pytest.approx(
            20 * math.log10(report.q_factor)
        )

    def test_invalid_ring_count(self, read_budget):
        with pytest.raises(ConfigurationError):
            link_signal_report(read_budget, interposer_grid(4),
                               n_rings_passed=0)


class TestCombSizing:
    def test_table1_comb_validated(self, read_budget):
        """The headline result: 64 wavelengths are exactly achievable
        with second-order gateway filters."""
        assert max_wavelengths_for_ber(read_budget, filter_order=2) == 64

    def test_first_order_filters_support_almost_nothing(self, read_budget):
        assert max_wavelengths_for_ber(read_budget, filter_order=1) == 1

    def test_lossier_path_cannot_do_worse_than_one(self):
        terrible = LinkBudget().add("path", 60.0)
        assert max_wavelengths_for_ber(terrible) >= 1
