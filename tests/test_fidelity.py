"""Hybrid-fidelity engine: fluid fast path, calibration, warm-state
fork, vectorized injection, spec lowering, cache counters and export."""

from dataclasses import fields, replace

import numpy as np
import pytest

from repro.cluster.study import ClusterCell
from repro.config import DEFAULT_PLATFORM
from repro.core.analytic import (
    FluidWindow,
    analytic_estimate,
    erlang_c,
    fluid_queue_delays,
    mgk_queue_delay,
)
from repro.core.accelerator import MonolithicCrossLight
from repro.core.engine import ExecutionTrace
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError, SpecError
from repro.experiments.export import (
    cluster_results_to_csv,
    serving_result_to_dict,
    serving_results_to_csv,
)
from repro.experiments.fidelity import (
    FidelityPolicy,
    clear_warm_store,
    simulate_fidelity_cell,
    warm_store_size,
)
from repro.experiments.runner import CacheStats, ResultCache, run_cached
from repro.experiments.serving_study import (
    ScenarioCell,
    ServingCell,
    simulate_scenario_cell,
    simulate_serving_cell,
)
from repro.mapping.residency import WeightResidency
from repro.serving.scheduler import BatchPolicy, RequestScheduler
from repro.sim.core import Environment
from repro.sim.traffic import MMPPArrivals, PoissonArrivals
from repro.studies import (
    FaultEventSpec,
    FaultSpec,
    FidelitySpec,
    ModelTraffic,
    PlatformSpec,
    ResilienceSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
    build_fidelity,
    lower_study,
    render_dry_run,
    run_study,
    spec_digest,
)

WORKLOAD = extract_workload(zoo.build("LeNet5"))


@pytest.fixture(autouse=True)
def _fresh_warm_store():
    clear_warm_store()
    yield
    clear_warm_store()


def fluid_spec(mode="auto", error_budget=0.25, calibration_s=None,
               **overrides) -> StudySpec:
    if mode == "des":
        fidelity = FidelitySpec()  # degenerate: budget knobs are inert
    else:
        fidelity = FidelitySpec(
            mode=mode, error_budget=error_budget,
            calibration_s=calibration_s,
        )
    kwargs = dict(
        name="fidelity",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet5"),),
            rate_rps=80e3, duration_s=1.5e-3, seed=7,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="fifo"),
        fidelity=fidelity,
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


def classic_cell(**overrides) -> ServingCell:
    kwargs = dict(
        platform="2.5D-CrossLight-SiPh", model="LeNet5",
        controller="resipi", policy=BatchPolicy.fifo(),
        arrival_kind="poisson", rate_rps=60e3, duration_s=1.5e-3,
        seed=7, config=DEFAULT_PLATFORM,
    )
    kwargs.update(overrides)
    return ServingCell(**kwargs)


# ---------------------------------------------------------------------------
# Spec layer: validation, inert knobs, degenerate lowering.
# ---------------------------------------------------------------------------


class TestFidelitySpec:
    def test_validation_is_typed(self):
        with pytest.raises(SpecError):
            FidelitySpec(mode="quantum")
        with pytest.raises(SpecError):
            FidelitySpec(mode="fluid", error_budget=0.0)
        with pytest.raises(SpecError):
            FidelitySpec(mode="fluid", error_budget=1.5)
        with pytest.raises(SpecError):
            FidelitySpec(mode="auto", calibration_s=-1e-3)

    def test_inert_knobs_on_des_mode_are_rejected(self):
        with pytest.raises(SpecError, match="error_budget"):
            FidelitySpec(mode="des", error_budget=0.5)
        with pytest.raises(SpecError, match="calibration_s"):
            FidelitySpec(mode="des", calibration_s=1e-3)

    def test_default_is_degenerate(self):
        assert not FidelitySpec()
        assert FidelitySpec(mode="fluid")
        assert build_fidelity(fluid_spec(mode="des")) is None
        policy = build_fidelity(fluid_spec(mode="auto", error_budget=0.2))
        assert policy == FidelityPolicy(mode="auto", error_budget=0.2)

    def test_round_trips_through_json(self):
        spec = fluid_spec(mode="fluid", error_budget=0.3,
                          calibration_s=0.2e-3)
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_incompatible_features_rejected_at_spec_level(self):
        with pytest.raises(SpecError, match="closed"):
            fluid_spec(workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),),
                rate_rps=80e3, duration_s=1.5e-3, seed=7,
                arrival="closed",
            ))
        with pytest.raises(SpecError, match="resilience"):
            fluid_spec(resilience=ResilienceSpec(timeout_s=100e-6))
        with pytest.raises(SpecError, match="shed_expired"):
            fluid_spec(scheduler=SchedulerSpec(
                policy="fifo", shed_expired=True,
            ))
        with pytest.raises(SpecError, match="serving"):
            StudySpec(
                name="inf", kind="inference",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),),
                ),
                platform=PlatformSpec(name="CrossLight"),
                fidelity=FidelitySpec(mode="fluid"),
            )

    def test_fabric_faults_rejected_at_compile_time(self):
        spec = fluid_spec(platform=PlatformSpec(
            name="2.5D-CrossLight-SiPh",
            faults=FaultSpec(events=(
                FaultEventSpec(kind="gateway-fail", at_s=0.2e-3,
                               memory_gateways=1),
            )),
        ))
        with pytest.raises(SpecError, match="fabric-level"):
            lower_study(spec)

    def test_degenerate_des_keeps_legacy_digest_and_cache_key(self):
        explicit = fluid_spec(mode="des")
        implicit = StudySpec(**{
            f.name: getattr(explicit, f.name)
            for f in fields(StudySpec) if f.name != "fidelity"
        })
        assert spec_digest(implicit) == spec_digest(explicit)
        explicit_cell = lower_study(explicit)[1][0][0]
        implicit_cell = lower_study(implicit)[1][0][0]
        assert explicit_cell.fidelity is None
        assert explicit_cell.key() == implicit_cell.key()

    def test_mode_sweep_forks_keys_only_when_armed(self):
        spec = fluid_spec(mode="des", sweep=SweepSpec(axes=(
            SweepAxis(field="fidelity.mode", values=("des", "fluid")),
        )))
        _, cells_per_point = lower_study(spec)
        des_cell = cells_per_point[0][0]
        fluid_cell = cells_per_point[1][0]
        assert des_cell.fidelity is None
        assert fluid_cell.fidelity is not None
        assert des_cell.key() != fluid_cell.key()
        legacy = replace(fluid_cell, fidelity=None)
        assert legacy.key() == des_cell.key()


# ---------------------------------------------------------------------------
# Analytic building blocks.
# ---------------------------------------------------------------------------


class TestQueueModel:
    def test_erlang_c_known_values(self):
        # M/M/1 at rho: C(1, rho) == rho.
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        # Saturated and idle edges.
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 0.0) == 0.0
        # Erlang-C for k=2, a=1: 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)
        with pytest.raises(ConfigurationError):
            erlang_c(0, 1.0)

    def test_mgk_matches_mm1_wait(self):
        # M/M/1: Wq = rho/(mu - lambda) = rho*s/(1-rho).
        prob, wait = mgk_queue_delay(
            rate_rps=5e4, servers=1, service_mean_s=10e-6,
        )
        rho = 5e4 * 10e-6
        assert prob == pytest.approx(rho)
        assert wait == pytest.approx(rho * 10e-6 / (1 - rho))
        # Allen-Cunneen scales by (ca^2+cs^2)/2: deterministic service
        # halves the M/M/1 wait.
        _, wait_det = mgk_queue_delay(
            rate_rps=5e4, servers=1, service_mean_s=10e-6,
            service_scv=0.0,
        )
        assert wait_det == pytest.approx(wait / 2)

    def test_mgk_saturation_and_idle(self):
        prob, wait = mgk_queue_delay(2e5, 1, 10e-6)
        assert prob == 1.0 and wait == float("inf")
        assert mgk_queue_delay(0.0, 4, 10e-6) == (0.0, 0.0)

    def test_fluid_window_validation(self):
        with pytest.raises(ConfigurationError):
            FluidWindow(start_s=1.0, end_s=0.5, servers=1,
                        service_mean_s=1e-6)
        with pytest.raises(ConfigurationError):
            FluidWindow(start_s=0.0, end_s=1.0, servers=0,
                        service_mean_s=1e-6)
        window = FluidWindow(start_s=0.0, end_s=1.0, servers=2,
                             service_mean_s=10e-6, mean_batch=2.0)
        assert window.capacity_rps == pytest.approx(4e5)

    def test_fluid_queue_delays_subsaturation_stays_stationary(self):
        rng = np.random.default_rng(3)
        arrivals = np.sort(rng.uniform(0.0, 1.0, size=2000))
        window = FluidWindow(start_s=0.0, end_s=1.0, servers=4,
                             service_mean_s=1e-3)
        waits = fluid_queue_delays(
            arrivals, [window], rng.random(2000)
        )
        assert waits.shape == (2000,)
        assert (waits >= 0).all()
        # Offered load 0.5: most arrivals do not wait (Erlang-C ~ 0.17).
        assert (waits == 0).mean() > 0.6

    def test_fluid_queue_delays_overload_backlog_grows(self):
        arrivals = np.linspace(0.0, 1.0, 4000, endpoint=False)
        window = FluidWindow(start_s=0.0, end_s=1.0, servers=1,
                             service_mean_s=1e-3)  # capacity 1k < 4k
        waits = fluid_queue_delays(
            arrivals, [window], np.full(4000, 0.5)
        )
        # Transient backlog: later arrivals wait longer, roughly the
        # fluid limit (lambda-mu)*t/mu at the end of the window.
        assert waits[-1] > waits[100]
        assert waits[-1] == pytest.approx(3.0, rel=0.05)

    def test_fluid_queue_delays_validates_shapes(self):
        window = FluidWindow(start_s=0.0, end_s=1.0, servers=1,
                             service_mean_s=1e-3)
        with pytest.raises(ConfigurationError):
            fluid_queue_delays(np.zeros(3), [window], np.zeros(2))
        with pytest.raises(ConfigurationError):
            fluid_queue_delays(np.zeros(3), [], np.zeros(3))


class TestAnalyticMacDegrade:
    @pytest.fixture(scope="class")
    def mapping(self):
        from repro.interposer.topology import build_floorplan
        from repro.mapping.mapper import KernelMatchMapper

        floorplan = build_floorplan(DEFAULT_PLATFORM)
        return KernelMatchMapper(
            DEFAULT_PLATFORM, floorplan
        ).map_workload(WORKLOAD)

    def test_mac_fraction_stretches_compute_bound_latency(self, mapping):
        nominal = analytic_estimate(mapping, DEFAULT_PLATFORM)
        degraded = analytic_estimate(
            mapping, DEFAULT_PLATFORM, mac_fraction=0.5
        )
        assert degraded.lower_bound_s > nominal.lower_bound_s
        # Fully compute-bound layers would double; the mix must stay
        # within [1x, 2x].
        ratio = degraded.lower_bound_s / nominal.lower_bound_s
        assert 1.0 < ratio <= 2.0

    def test_mac_fraction_validated(self, mapping):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                analytic_estimate(mapping, DEFAULT_PLATFORM,
                                  mac_fraction=bad)


# ---------------------------------------------------------------------------
# Vectorized injection: bulk-scheduled cohorts == event-driven injector.
# ---------------------------------------------------------------------------


class TestVectorizedInjection:
    def _serve(self, arrivals, vectorized):
        platform = MonolithicCrossLight()
        env = Environment()
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            policy=BatchPolicy.fifo(), residency=WeightResidency(env),
            trace=ExecutionTrace(),
        )
        scheduler.serve(arrivals, 1e-3, vectorized=vectorized)
        return scheduler.records, env.now

    @pytest.mark.parametrize("arrivals_factory", [
        lambda: PoissonArrivals(rate_rps=80e3, seed=11),
        lambda: MMPPArrivals(rate_rps=80e3, seed=11),
    ])
    def test_cohort_injection_replays_event_driven_run(
        self, arrivals_factory
    ):
        records, elapsed = self._serve(arrivals_factory(), False)
        cohort, cohort_elapsed = self._serve(arrivals_factory(), True)
        # Every request record — arrival, dispatch, batch, finish — is
        # bit-identical; only the final clock differs (the event-driven
        # injector overshoots the horizon by the one gap it draws past
        # the end, the cohort stops exactly at it).
        assert cohort == records
        assert abs(cohort_elapsed - elapsed) < 2e-4
        assert len(records) > 10

    def test_arrival_times_match_gap_stream(self):
        arrivals = PoissonArrivals(rate_rps=80e3, seed=3)
        times = arrivals.arrival_times(1e-3)
        expected, now = [], 0.0
        for gap in arrivals.gaps():
            now += gap
            if now > 1e-3:
                break
            expected.append(now)
        assert times == pytest.approx(expected)

    def test_schedule_calls_rejects_past_times(self):
        env = Environment()
        env._now = 1.0
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            env.schedule_calls([0.5], lambda at: None)


# ---------------------------------------------------------------------------
# The fluid fast path end to end.
# ---------------------------------------------------------------------------


class TestFluidPath:
    def test_fluid_agrees_with_des_within_budget(self):
        des = simulate_serving_cell(classic_cell())
        fluid = simulate_fidelity_cell(classic_cell(
            fidelity=FidelityPolicy(mode="auto", error_budget=0.25),
        ))
        report = fluid.fidelity
        assert report is not None
        assert report.mode_used == "fluid"
        assert report.within_budget
        assert report.p99_rel_err <= 0.25
        assert report.goodput_rel_err <= 0.25
        # The fluid result itself stays close to the full DES truth.
        assert fluid.requests_completed == pytest.approx(
            des.requests_completed, rel=0.1
        )
        assert fluid.latency.p99_s == pytest.approx(
            des.latency.p99_s, rel=0.25
        )
        assert fluid.goodput_rps == pytest.approx(
            des.goodput_rps, rel=0.25
        )

    @pytest.mark.parametrize("rate_rps", [30e3, 60e3, 120e3])
    def test_error_budget_holds_across_rates(self, rate_rps):
        fluid = simulate_fidelity_cell(classic_cell(
            rate_rps=rate_rps,
            fidelity=FidelityPolicy(mode="fluid", error_budget=0.25),
        ))
        assert fluid.fidelity.mode_used == "fluid"
        assert fluid.fidelity.within_budget

    def test_auto_mode_falls_back_beyond_budget(self):
        des = simulate_serving_cell(classic_cell())
        fluid = simulate_fidelity_cell(classic_cell(
            fidelity=FidelityPolicy(mode="auto", error_budget=1e-9),
        ))
        report = fluid.fidelity
        assert report.mode_used == "des-fallback"
        # The fallback is the exact full-DES result, report attached.
        assert replace(fluid, fidelity=None) == des

    def test_fluid_mode_never_falls_back(self):
        fluid = simulate_fidelity_cell(classic_cell(
            fidelity=FidelityPolicy(mode="fluid", error_budget=1e-9),
        ))
        assert fluid.fidelity.mode_used == "fluid"
        assert not fluid.fidelity.within_budget

    def test_warm_state_fork_shares_calibration(self):
        policy = FidelityPolicy(mode="fluid", error_budget=0.25)
        first = simulate_fidelity_cell(classic_cell(fidelity=policy))
        assert not first.fidelity.warm_forked
        assert warm_store_size() == 1
        # A longer window of the same point forks from the checkpoint.
        second = simulate_fidelity_cell(classic_cell(
            duration_s=3e-3, fidelity=policy,
        ))
        assert second.fidelity.warm_forked
        assert warm_store_size() == 1
        assert second.requests_injected > first.requests_injected

    def test_scenario_variants_fork_from_one_checkpoint(self):
        policy = FidelityPolicy(mode="fluid", error_budget=0.25)
        base = ScenarioCell(
            platform="2.5D-CrossLight-SiPh",
            models=(("LeNet5", 1.0, 200e-6, 0),),
            controller="resipi", policy=BatchPolicy.fifo(),
            arrival_kind="poisson", rate_rps=60e3, duration_s=1.5e-3,
            seed=7, config=DEFAULT_PLATFORM, fidelity=policy,
        )
        degrade = FaultSpec(events=(FaultEventSpec(
            kind="chiplet-mac-degrade", at_s=0.5e-3,
            mac_fraction=0.4, duration_s=0.5e-3,
        ),))
        nominal = simulate_fidelity_cell(base)
        faulted = simulate_fidelity_cell(replace(base, faults=degrade))
        assert not nominal.fidelity.warm_forked
        assert faulted.fidelity.warm_forked
        assert warm_store_size() == 1
        # The degraded window slows the MAC arrays: the hazard variant
        # must report the event and at least as much tail latency.
        assert faulted.time_degraded_s == pytest.approx(0.5e-3)
        assert len(faulted.hazard_events) == 1
        assert faulted.latency.p99_s >= nominal.latency.p99_s
        labels = [window.label for window in faulted.windows]
        assert labels == ["before", "during", "after"]

    def test_fluid_cluster_cell_with_node_outage(self):
        cell = ClusterCell(
            platform="CrossLight",
            models=(("LeNet5", 1.0, None, 0),),
            controller="resipi", policy=BatchPolicy.fifo(),
            arrival_kind="poisson", rate_rps=60e3, duration_s=1.5e-3,
            seed=7, config=DEFAULT_PLATFORM, replicas=3,
            router="least-outstanding",
            node_faults=FaultSpec(events=(
                FaultEventSpec(kind="node-fail", at_s=0.4e-3, node=1),
                FaultEventSpec(kind="node-repair", at_s=1.0e-3, node=1),
            )),
            fidelity=FidelityPolicy(mode="fluid", error_budget=0.3),
        )
        result = simulate_fidelity_cell(cell)
        assert result.fidelity.mode_used == "fluid"
        assert result.n_nodes == 3
        assert len(result.per_node) == 3
        assert result.per_node[1].state == "up"  # repaired by the end
        assert 0.0 < result.availability < 1.0
        assert len(result.incidents) == 1
        incident = result.incidents[0]
        assert incident.node == 1 and incident.resolved
        assert result.mttr_s == pytest.approx(0.6e-3)
        assert [event.kind for event in result.node_events] == [
            "node-fail", "node-repair",
        ]
        assert result.requests_completed == sum(
            stats.requests_completed for stats in result.per_node
        )
        # Fleet CSV rows carry the error-budget columns too.
        csv_text = cluster_results_to_csv([result])
        lines = csv_text.strip().splitlines()
        assert "fidelity_mode" in lines[0]
        assert any("fluid" in line for line in lines[1:])

    def test_multi_tenant_mix_assignment_matches_stream(self):
        policy = FidelityPolicy(mode="fluid", error_budget=0.3)
        cell = ScenarioCell(
            platform="CrossLight",
            models=(("LeNet5", 0.7, None, 0),
                    ("MobileNetV2", 0.3, None, 1)),
            controller="resipi", policy=BatchPolicy.fifo(),
            arrival_kind="poisson", rate_rps=40e3, duration_s=1.5e-3,
            seed=7, config=DEFAULT_PLATFORM, fidelity=policy,
        )
        result = simulate_fidelity_cell(cell)
        per_model = {stats.model: stats for stats in result.per_model}
        assert set(per_model) == {"LeNet5", "MobileNetV2"}
        total = sum(stats.completed for stats in result.per_model)
        assert total == result.requests_completed
        assert per_model["LeNet5"].completed > per_model[
            "MobileNetV2"
        ].completed


# ---------------------------------------------------------------------------
# Sequence-aware fluid path: autoregressive cells without full DES.
# ---------------------------------------------------------------------------


def sequence_cell(mode="fluid", error_budget=0.25, rate_rps=60e3,
                  duration_s=2e-3, length_distribution="fixed"
                  ) -> ScenarioCell:
    spec = StudySpec(
        name="seq-fluid",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="TransformerTiny",
                                 prompt_tokens=16, output_tokens=8),),
            rate_rps=rate_rps, duration_s=duration_s, seed=7,
            length_distribution=length_distribution,
        ),
        scheduler=SchedulerSpec(policy="continuous", max_batch=4),
        fidelity=FidelitySpec(mode=mode, error_budget=error_budget),
    )
    (cell,) = lower_study(spec)[1][0]
    return cell


class TestSequenceFluidPath:
    def test_sequence_cell_agrees_with_des_within_budget(self):
        cell = sequence_cell()
        des = simulate_scenario_cell(replace(cell, fidelity=None))
        fluid = simulate_fidelity_cell(cell)
        report = fluid.fidelity
        assert report.mode_used == "fluid"
        assert report.within_budget
        # Sequence cells validate the token metrics, not just e2e p99.
        assert report.ttft_rel_err is not None
        assert report.ttft_rel_err <= 0.25
        assert report.token_p99_rel_err is not None
        assert report.token_p99_rel_err <= 0.25
        assert fluid.is_sequence_run and des.is_sequence_run
        assert fluid.tokens_per_s == pytest.approx(
            des.tokens_per_s, rel=0.25
        )
        assert fluid.ttft.p99_s == pytest.approx(des.ttft.p99_s, rel=0.25)
        assert fluid.token_latency.p99_s == pytest.approx(
            des.token_latency.p99_s, rel=0.25
        )

    @pytest.mark.parametrize("rate_rps", [30e3, 60e3, 100e3])
    def test_sequence_budget_holds_across_rates(self, rate_rps):
        fluid = simulate_fidelity_cell(sequence_cell(rate_rps=rate_rps))
        assert fluid.fidelity.mode_used == "fluid"
        assert fluid.fidelity.within_budget

    def test_single_step_cells_skip_sequence_errors(self):
        fluid = simulate_fidelity_cell(classic_cell(
            fidelity=FidelityPolicy(mode="fluid", error_budget=0.25),
        ))
        assert fluid.fidelity.ttft_rel_err is None
        assert fluid.fidelity.token_p99_rel_err is None

    def test_sequence_auto_fallback_is_exact_des(self):
        cell = sequence_cell(mode="auto", error_budget=1e-9)
        des = simulate_scenario_cell(replace(cell, fidelity=None))
        fluid = simulate_fidelity_cell(cell)
        assert fluid.fidelity.mode_used == "des-fallback"
        assert replace(fluid, fidelity=None) == des

    def test_sequence_fault_variant_forks_warm(self):
        base = sequence_cell()
        degrade = FaultSpec(events=(FaultEventSpec(
            kind="chiplet-mac-degrade", at_s=0.5e-3,
            mac_fraction=0.4, duration_s=0.5e-3,
        ),))
        nominal = simulate_fidelity_cell(base)
        faulted = simulate_fidelity_cell(replace(base, faults=degrade))
        assert not nominal.fidelity.warm_forked
        assert faulted.fidelity.warm_forked
        assert warm_store_size() == 1
        assert faulted.fidelity.mode_used == "fluid"

    def test_geometric_lengths_stay_on_fluid_path(self):
        fluid = simulate_fidelity_cell(
            sequence_cell(length_distribution="geometric")
        )
        assert fluid.fidelity.mode_used == "fluid"
        assert fluid.tokens_generated > 0
        assert fluid.ttft is not None and fluid.token_latency is not None


# ---------------------------------------------------------------------------
# Study integration: spec in, fidelity block out.
# ---------------------------------------------------------------------------


class TestStudyIntegration:
    def test_run_study_records_fidelity_block(self):
        study = run_study(fluid_spec(mode="auto"))
        (result,) = study.flat_results()
        assert result.fidelity is not None
        assert result.fidelity.mode_requested == "auto"
        assert result.fidelity.error_budget == 0.25
        assert study.cache_stats is not None
        assert study.cache_stats.simulated == 1

    def test_exports_carry_the_error_budget_block(self):
        study = run_study(fluid_spec(mode="auto"))
        (result,) = study.flat_results()
        record = serving_result_to_dict(result)
        block = record["fidelity"]
        assert block["mode_requested"] == "auto"
        assert block["mode_used"] in ("fluid", "des-fallback")
        assert block["p99_rel_err"] <= 1.0
        assert isinstance(block["warm_forked"], bool)
        csv_text = serving_results_to_csv([result])
        header, row = csv_text.strip().splitlines()
        assert "fidelity_mode" in header
        assert "fidelity_p99_err" in header
        assert result.fidelity.mode_used in row
        # Classic results export blank fidelity columns.
        des = simulate_serving_cell(classic_cell())
        classic_record = serving_result_to_dict(des)
        assert classic_record["fidelity"] is None
        classic_row = serving_results_to_csv([des]).strip().splitlines()[1]
        assert classic_row.endswith(",,")

    def test_fidelity_json_round_trip_runs(self, tmp_path):
        spec = fluid_spec(mode="auto")
        path = tmp_path / "fidelity.json"
        path.write_text(spec.to_json())
        loaded = StudySpec.from_json(path.read_text())
        assert loaded == spec


# ---------------------------------------------------------------------------
# Cache counters and dry-run annotation.
# ---------------------------------------------------------------------------


class TestCacheCounters:
    def test_run_cached_tallies_hits_misses(self, tmp_path):
        cells = [classic_cell(), classic_cell(rate_rps=80e3)]
        cold = CacheStats()
        run_cached(cells, lambda c: c.key(), simulate_serving_cell,
                   cache_dir=tmp_path, stats=cold)
        assert cold.hits == 0
        assert cold.misses == 2
        assert cold.simulated == 2
        warm = CacheStats()
        run_cached(cells, lambda c: c.key(), simulate_serving_cell,
                   cache_dir=tmp_path, stats=warm)
        assert warm.hits == 2
        assert warm.misses == 0
        assert warm.simulated == 0
        assert "2 hits" in warm.summary()

    def test_corrupt_entries_count_as_evictions(self, tmp_path):
        cell = classic_cell()
        cache = ResultCache(tmp_path)
        cache._path(cell.key()).write_bytes(b"garbage")
        stats = CacheStats()
        run_cached([cell], lambda c: c.key(), simulate_serving_cell,
                   cache_dir=tmp_path, stats=stats)
        assert stats.evictions == 1
        assert stats.misses == 1
        assert stats.simulated == 1
        assert "corrupt" in stats.summary()

    def test_no_cache_dir_counts_simulated_only(self):
        stats = CacheStats()
        run_cached([classic_cell()], lambda c: c.key(),
                   simulate_serving_cell, stats=stats)
        assert stats.simulated == 1
        assert stats.hits == 0 and stats.misses == 0

    def test_dry_run_annotates_cached_cells(self, tmp_path):
        spec = fluid_spec(mode="des")
        text = render_dry_run(spec, cache_dir=tmp_path)
        assert "0 cached, 1 to simulate" in text
        assert "[cold]" in text
        run_study(spec, cache_dir=tmp_path)
        text = render_dry_run(spec, cache_dir=tmp_path)
        assert "1 cached, 0 to simulate" in text
        assert "[cached]" in text
        # Without a cache dir the dry run stays annotation-free.
        assert "[cold]" not in render_dry_run(spec)

    def test_dry_run_names_armed_fidelity(self):
        text = render_dry_run(fluid_spec(mode="auto"))
        assert "fidelity: auto" in text


# ---------------------------------------------------------------------------
# The worked example spec ships and runs.
# ---------------------------------------------------------------------------


class TestExampleSpec:
    def test_example_fidelity_spec_runs_within_budget(self):
        from repro.studies.compile import load_spec

        spec = load_spec("examples/fidelity_spec.json")
        assert spec.fidelity.mode == "auto"
        study = run_study(spec)
        results = study.flat_results()
        assert len(results) >= 2
        warm_forks = 0
        for result in results:
            report = result.fidelity
            assert report is not None
            if report.mode_used == "fluid":
                assert report.within_budget
            warm_forks += report.warm_forked
        assert warm_forks >= 1  # the sweep shares calibration state
