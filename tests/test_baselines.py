"""Literature baseline platforms (Table 3 comparison rows)."""

import pytest

from repro.baselines.platforms import (
    LITERATURE_PLATFORMS,
    NVIDIA_P100,
    BaselinePlatform,
)
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError
from repro.experiments.table3 import PAPER_TABLE3


@pytest.fixture(scope="module")
def workloads():
    return {
        name: extract_workload(zoo.build(name))
        for name in zoo.MODEL_BUILDERS
    }


class TestRoofline:
    def test_compute_bound_latency(self):
        platform = BaselinePlatform(
            name="test", power_w=100.0, throughput_macs_per_s=1e9,
            memory_bandwidth_bps=1e15,
        )
        workload = extract_workload(zoo.build("LeNet5"))
        assert platform.latency_s(workload) == pytest.approx(
            workload.total_macs / 1e9
        )

    def test_memory_bound_latency(self):
        platform = BaselinePlatform(
            name="test", power_w=100.0, throughput_macs_per_s=1e18,
            memory_bandwidth_bps=1e6,
        )
        workload = extract_workload(zoo.build("LeNet5"))
        assert platform.latency_s(workload) == pytest.approx(
            workload.total_traffic_bits / 1e6
        )

    def test_overhead_added(self):
        fast = BaselinePlatform(
            name="fast", power_w=1.0, throughput_macs_per_s=1e18,
            memory_bandwidth_bps=1e18, overhead_s=1e-3,
        )
        workload = extract_workload(zoo.build("LeNet5"))
        assert fast.latency_s(workload) == pytest.approx(1e-3, rel=1e-3)

    def test_result_object_consistency(self):
        workload = extract_workload(zoo.build("LeNet5"))
        result = NVIDIA_P100.run_workload(workload)
        assert result.platform == "Nvidia P100 GPU"
        assert result.average_power_w == pytest.approx(NVIDIA_P100.power_w)
        assert result.total_energy_j == pytest.approx(
            NVIDIA_P100.power_w * result.latency_s
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BaselinePlatform("bad", power_w=0.0, throughput_macs_per_s=1e9,
                             memory_bandwidth_bps=1e9)
        with pytest.raises(ConfigurationError):
            BaselinePlatform("bad", power_w=1.0, throughput_macs_per_s=1e9,
                             memory_bandwidth_bps=0.0)


class TestTable3Calibration:
    """Each platform's five-model average must land on its Table 3 row."""

    @pytest.mark.parametrize(
        "platform", LITERATURE_PLATFORMS, ids=lambda p: p.name
    )
    def test_average_latency_matches_paper(self, platform, workloads):
        latencies = [
            platform.latency_s(workload) for workload in workloads.values()
        ]
        average_ms = sum(latencies) / len(latencies) * 1e3
        paper_ms = PAPER_TABLE3[platform.name][1]
        assert average_ms == pytest.approx(paper_ms, rel=0.05)

    @pytest.mark.parametrize(
        "platform", LITERATURE_PLATFORMS, ids=lambda p: p.name
    )
    def test_power_matches_paper(self, platform):
        assert platform.power_w == PAPER_TABLE3[platform.name][0]

    def test_ordering_gpu_beats_cpus(self, workloads):
        def average(platform):
            return sum(
                platform.latency_s(w) for w in workloads.values()
            ) / len(workloads)

        from repro.baselines.platforms import AMD_3970, INTEL_9282

        assert average(NVIDIA_P100) < average(INTEL_9282) < average(AMD_3970)

    def test_all_seven_platforms_present(self):
        assert len(LITERATURE_PLATFORMS) == 7
        names = {p.name for p in LITERATURE_PLATFORMS}
        assert names == set(PAPER_TABLE3) - {
            "CrossLight", "2.5D-CrossLight-Elec", "2.5D-CrossLight-SiPh",
        }
