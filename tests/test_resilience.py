"""Resilience layer: lifecycle policy, health-checked routing, hazards,
spec validation, degenerate lowering, determinism and export."""

import json
import pickle
from dataclasses import fields

import pytest

from repro.cluster.hazards import RackFail, RackRepair, event_nodes
from repro.cluster.router import ClusterNode, ClusterRouter, HealthPolicy
from repro.cluster.study import ClusterCell
from repro.core.accelerator import MonolithicCrossLight
from repro.core.engine import ExecutionTrace
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError, SpecError
from repro.experiments.export import (
    cluster_result_to_dict,
    cluster_results_to_csv,
    serving_result_to_dict,
    study_results_to_csv,
    study_results_to_json,
)
from repro.experiments.serving_study import (
    ScenarioCell,
    hazard_timeline,
    platform_timelines,
)
from repro.mapping.residency import WeightResidency
from repro.serving.lifecycle import LifecycleDriver, ResiliencePolicy
from repro.serving.metrics import IncidentRecord, mean_time_to_repair
from repro.serving.scheduler import BatchPolicy, RequestScheduler
from repro.sim.core import Environment
from repro.sim.traffic import PoissonArrivals
from repro.studies import (
    HAZARDS,
    ClusterSpec,
    FaultEventSpec,
    FaultSpec,
    ModelTraffic,
    PlatformSpec,
    ResilienceSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)
from repro.studies import spec_digest
from repro.studies.compile import (
    build_health,
    build_resilience,
    expand_points,
    is_classic_serving,
    is_degenerate_resilience,
    lower_cluster_point,
    lower_serving_point,
    resolve_config,
    render_dry_run,
    run_study,
)

WORKLOAD = extract_workload(zoo.build("LeNet5"))

RACK_OUTAGE = (
    FaultEventSpec(kind="rack-fail", at_s=200e-6, nodes=(0, 1)),
    FaultEventSpec(kind="rack-repair", at_s=600e-6, nodes=(0, 1)),
)


def make_fleet(n=3, node_events=(), health=None, reroute_on_fail=True):
    """N monolithic replicas behind a least-outstanding router."""
    from repro.studies.registry import ROUTERS

    env = Environment()
    platform = MonolithicCrossLight()
    nodes = []
    for index in range(n):
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            policy=BatchPolicy.fifo(max_inflight=2),
            residency=WeightResidency(env), trace=ExecutionTrace(),
        )
        nodes.append(ClusterNode(
            index=index, platform=platform, sim=sim,
            scheduler=scheduler, residency=scheduler.residency,
        ))
    router = ClusterRouter(
        nodes, ROUTERS.get("least-outstanding")(n, ()),
        node_events=node_events, reroute_on_fail=reroute_on_fail,
        health=health,
    )
    return env, nodes, router


def resilient_spec(resilience, events=RACK_OUTAGE, replicas=3,
                   rate_rps=60e3, duration_s=0.8e-3, slo_s=300e-6,
                   **overrides) -> StudySpec:
    kwargs = dict(
        name="resilient",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet5", slo_s=slo_s),),
            rate_rps=rate_rps, duration_s=duration_s, seed=7,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="fifo", max_inflight=2),
        cluster=ClusterSpec(
            replicas=replicas, router="least-outstanding",
            reroute_on_fail=False,
            faults=FaultSpec(events=tuple(events)),
        ),
        resilience=resilience,
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


# ---------------------------------------------------------------------------
# Runtime policy (serving layer).
# ---------------------------------------------------------------------------


class TestResiliencePolicy:
    def test_validation_is_typed_and_picklable(self):
        bad = [
            dict(timeout_s=-1e-6),
            dict(timeout_s=0.0),
            dict(max_retries=-1),
            dict(retry_backoff_s=-1e-6),
            dict(retry_jitter=1.5),
            dict(retry_budget=0.0),
            dict(hedge_delay_s=0.0),
        ]
        for kwargs in bad:
            with pytest.raises(ConfigurationError) as err:
                ResiliencePolicy(**kwargs)
            clone = pickle.loads(pickle.dumps(err.value))
            assert str(clone) == str(err.value)

    def test_passthrough_policy_is_falsy(self):
        assert not ResiliencePolicy()
        assert ResiliencePolicy().label == "passthrough"
        assert ResiliencePolicy(timeout_s=100e-6)
        assert ResiliencePolicy(max_retries=2)
        assert ResiliencePolicy(hedge_delay_s=50e-6)

    def test_label_names_armed_knobs(self):
        policy = ResiliencePolicy(
            timeout_s=150e-6, max_retries=3, retry_budget=0.2,
            hedge_delay_s=60e-6,
        )
        assert policy.label == "timeout=150us+retries=3+budget=0.2+hedge=60us"


class TestHealthPolicy:
    def test_validation_is_typed(self):
        with pytest.raises(ConfigurationError):
            HealthPolicy(signal_staleness_s=-1e-6)
        with pytest.raises(ConfigurationError):
            HealthPolicy(probe_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(probe_interval_s=10e-6, probe_misses=0)

    def test_omniscient_default_is_falsy(self):
        assert not HealthPolicy()
        assert not HealthPolicy().probe_based
        assert HealthPolicy(signal_staleness_s=10e-6)
        assert HealthPolicy(probe_interval_s=10e-6).probe_based


# ---------------------------------------------------------------------------
# Spec-layer validation.
# ---------------------------------------------------------------------------


class TestResilienceSpecValidation:
    def test_malformed_json_is_typed(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            StudySpec.from_json('{"schema": 4, "resilience": {')

    def test_unknown_knob_fails_fast(self):
        with pytest.raises(SpecError, match="resilience spec"):
            ResilienceSpec.from_dict({"timeout_us": 100})

    def test_negative_timeout_rejected(self):
        with pytest.raises(SpecError, match="timeout must be positive"):
            ResilienceSpec(timeout_s=-100e-6)

    def test_zero_retry_budget_rejected(self):
        with pytest.raises(SpecError, match="retry budget must be positive"):
            ResilienceSpec(max_retries=2, retry_budget=0.0)

    def test_inert_retry_knobs_rejected(self):
        with pytest.raises(SpecError, match="max_retries >= 1"):
            ResilienceSpec(retry_jitter=0.5)
        with pytest.raises(SpecError, match="max_retries >= 1"):
            ResilienceSpec(retry_budget=0.1)
        with pytest.raises(SpecError, match="max_retries >= 1"):
            ResilienceSpec(retry_backoff_s=10e-6)

    def test_inert_probe_misses_rejected(self):
        with pytest.raises(SpecError, match="probe_interval_s"):
            ResilienceSpec(probe_misses=5)

    def test_hedging_needs_a_cluster(self):
        with pytest.raises(SpecError, match="second node"):
            resilient_spec(
                ResilienceSpec(hedge_delay_s=50e-6),
                cluster=None, events=(),
            )

    def test_health_checking_needs_a_cluster(self):
        with pytest.raises(SpecError, match="router"):
            resilient_spec(
                ResilienceSpec(probe_interval_s=20e-6),
                cluster=None, events=(),
            )

    def test_resilience_applies_only_to_serving(self):
        with pytest.raises(SpecError, match="serving"):
            StudySpec(
                name="inf", kind="inference",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),),
                ),
                platform=PlatformSpec(name="CrossLight"),
                resilience=ResilienceSpec(timeout_s=100e-6),
            )

    def test_spec_errors_pickle_across_the_pool(self):
        with pytest.raises(SpecError) as err:
            ResilienceSpec(timeout_s=-1.0)
        clone = pickle.loads(pickle.dumps(err.value))
        assert "timeout" in str(clone)

    def test_round_trips_through_json(self):
        spec = resilient_spec(ResilienceSpec(
            timeout_s=150e-6, max_retries=2, retry_budget=0.25,
            hedge_delay_s=60e-6, signal_staleness_s=20e-6,
            probe_interval_s=25e-6, probe_misses=2,
        ))
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_resilience_is_sweepable(self):
        spec = resilient_spec(
            ResilienceSpec(timeout_s=150e-6),
            sweep=SweepSpec(axes=(
                SweepAxis(field="resilience.max_retries", values=(0, 2)),
            )),
        )
        points = expand_points(spec)
        assert [p.resilience.max_retries for p in points] == [0, 2]


# ---------------------------------------------------------------------------
# Degenerate lowering: default resilience == the pre-resilience cells.
# ---------------------------------------------------------------------------


class TestDegenerateLowering:
    def test_default_section_lowers_to_legacy_serving_cell(self):
        base = StudySpec(
            name="classic", kind="serving",
            workload=WorkloadSpec(
                models=(ModelTraffic(model="LeNet5"),),
                rate_rps=100e3, duration_s=0.4e-3,
            ),
            platform=PlatformSpec(name="CrossLight"),
            scheduler=SchedulerSpec(policy="fifo"),
        )
        with_default = base  # resilience defaults to ResilienceSpec()
        assert is_degenerate_resilience(with_default)
        assert is_classic_serving(with_default)
        legacy = lower_serving_point(base, resolve_config(base))
        lowered = lower_serving_point(with_default, resolve_config(with_default))
        assert type(lowered) is type(legacy)
        assert lowered.key() == legacy.key()

    def test_degenerate_cluster_keeps_legacy_cache_key(self):
        base = resilient_spec(ResilienceSpec(), events=())
        cell = lower_cluster_point(base, resolve_config(base))
        assert isinstance(cell, ClusterCell)
        assert cell.resilience is None
        assert cell.health is None

    def test_active_resilience_moves_the_cache_key(self):
        off_spec = resilient_spec(ResilienceSpec())
        off = lower_cluster_point(off_spec, resolve_config(off_spec))
        on_spec = resilient_spec(ResilienceSpec(timeout_s=150e-6))
        on = lower_cluster_point(on_spec, resolve_config(on_spec))
        assert off.key() != on.key()
        # A spec that never mentions resilience and one spelling out the
        # degenerate default are the same study: same digest, same key.
        omitted = resilient_spec(ResilienceSpec())
        implicit = StudySpec(**{
            f.name: getattr(omitted, f.name)
            for f in fields(StudySpec) if f.name != "resilience"
        })
        assert spec_digest(implicit) == spec_digest(omitted)
        assert lower_cluster_point(
            implicit, resolve_config(implicit)
        ).key() == off.key()

    def test_builders_return_none_for_degenerate_sections(self):
        spec = resilient_spec(ResilienceSpec())
        assert build_resilience(spec) is None
        assert build_health(spec) is None
        active = resilient_spec(ResilienceSpec(
            timeout_s=150e-6, probe_interval_s=25e-6,
        ))
        assert build_resilience(active) == ResiliencePolicy(timeout_s=150e-6)
        assert build_health(active) == HealthPolicy(probe_interval_s=25e-6)

    def test_degenerate_results_bit_identical_to_legacy(self):
        legacy = run_study(resilient_spec(ResilienceSpec(), events=()))
        degenerate = run_study(resilient_spec(ResilienceSpec(), events=()))
        assert legacy.flat_results() == degenerate.flat_results()
        result = legacy.flat_results()[0]
        assert result.resilience is None
        assert result.availability == 1.0


# ---------------------------------------------------------------------------
# Lifecycle runtime: timeouts, retries, hedging, budgets.
# ---------------------------------------------------------------------------


def run_one(resilience, **overrides):
    study = run_study(resilient_spec(resilience, **overrides))
    return study.flat_results()[0]


class TestLifecycle:
    def test_timeout_without_retries_gives_up(self):
        result = run_one(ResilienceSpec(
            timeout_s=120e-6, probe_interval_s=25e-6,
        ))
        stats = result.resilience
        assert stats is not None
        assert stats.timeouts > 0
        assert stats.gave_up == stats.timeouts
        assert result.requests_shed >= stats.gave_up
        assert result.requests_injected == (
            result.requests_completed + result.requests_shed
        )

    def test_retries_recover_timed_out_requests(self):
        result = run_one(ResilienceSpec(
            timeout_s=120e-6, max_retries=3, probe_interval_s=25e-6,
        ))
        stats = result.resilience
        assert stats.retries > 0
        assert dict(stats.retry_causes).get("timeout", 0) > 0
        assert stats.gave_up == 0
        assert stats.retry_amplification > 1.0

    def test_hedging_wins_and_cancels_losers(self):
        result = run_one(ResilienceSpec(
            timeout_s=150e-6, hedge_delay_s=60e-6,
            probe_interval_s=25e-6,
        ))
        stats = result.resilience
        assert stats.hedges > 0
        assert stats.hedge_wins > 0
        assert stats.cancelled > 0
        assert 0.0 < stats.hedge_win_rate <= 1.0
        assert stats.wasted_attempts >= stats.hedge_wins

    def test_resilience_improves_slo_attainment_under_outage(self):
        baseline = run_one(ResilienceSpec(probe_interval_s=25e-6))
        hardened = run_one(ResilienceSpec(
            timeout_s=120e-6, max_retries=3, hedge_delay_s=60e-6,
            probe_interval_s=25e-6,
        ))
        def attainment(result):
            (stats,) = result.per_model
            return stats.slo_attainment
        assert attainment(hardened) > attainment(baseline)

    def test_tight_retry_budget_denies_retry_storms(self):
        generous = run_one(ResilienceSpec(
            timeout_s=120e-6, max_retries=3, probe_interval_s=25e-6,
        ))
        starved = run_one(ResilienceSpec(
            timeout_s=120e-6, max_retries=3, retry_budget=0.01,
            probe_interval_s=25e-6,
        ))
        assert generous.resilience.budget_denied == 0
        assert starved.resilience.budget_denied > 0
        assert starved.resilience.retries < generous.resilience.retries

    def test_lifecycle_works_on_a_single_node(self):
        result = run_one(
            ResilienceSpec(timeout_s=5e-3, max_retries=1),
            cluster=None, events=(), rate_rps=100e3, duration_s=0.4e-3,
        )
        assert result.resilience is not None
        assert result.resilience.requests == result.requests_injected
        assert result.requests_completed > 0

    def test_driver_serve_is_single_shot(self):
        env, _, router = make_fleet()
        driver = LifecycleDriver(router, ResiliencePolicy(timeout_s=1e-3))
        driver.serve(PoissonArrivals(rate_rps=50e3, seed=1), 0.1e-3)
        with pytest.raises(Exception):
            driver.serve(PoissonArrivals(rate_rps=50e3, seed=1), 0.1e-3)


# ---------------------------------------------------------------------------
# Health-checked routing: stale signals and probe-based detection.
# ---------------------------------------------------------------------------


class TestHealthRouting:
    def test_probe_detection_lags_the_failure(self):
        health = HealthPolicy(probe_interval_s=25e-6, probe_misses=3)
        env, _, router = make_fleet(
            node_events=(RackFail(at_s=200e-6, nodes=(0, 1)),
                         RackRepair(at_s=500e-6, nodes=(0, 1))),
            health=health, reroute_on_fail=False,
        )
        router.serve(PoissonArrivals(rate_rps=60e3, seed=7), 0.8e-3)
        incidents = router.incidents()
        assert len(incidents) == 2
        for incident in incidents:
            assert incident.resolved
            assert incident.detection_lag_s is not None
            assert 0.0 < incident.detection_lag_s <= 3 * 25e-6 + 1e-9

    def test_omniscient_detection_has_zero_lag(self):
        env, _, router = make_fleet(
            node_events=(RackFail(at_s=200e-6, nodes=(0, 1)),
                         RackRepair(at_s=500e-6, nodes=(0, 1))),
        )
        router.serve(PoissonArrivals(rate_rps=60e3, seed=7), 0.8e-3)
        for incident in router.incidents():
            assert incident.detection_lag_s == 0.0

    def test_stale_signals_are_sampled_not_live(self):
        health = HealthPolicy(signal_staleness_s=20e-6)
        env, nodes, router = make_fleet(health=health)
        router.serve(PoissonArrivals(rate_rps=60e3, seed=7), 0.3e-3)
        assert all(n.sampled_outstanding is not None for n in nodes)

    def test_total_outage_requires_probe_based_health(self):
        events = (RackFail(at_s=100e-6, nodes=(0, 1, 2)),
                  RackRepair(at_s=200e-6, nodes=(0, 1, 2)))
        with pytest.raises(ConfigurationError, match="at least one must stay"):
            make_fleet(node_events=events)
        env, _, router = make_fleet(
            node_events=events,
            health=HealthPolicy(probe_interval_s=20e-6, probe_misses=2),
        )
        router.serve(PoissonArrivals(rate_rps=40e3, seed=3), 0.4e-3)
        assert router.availability(0.4e-3) < 1.0

    def test_availability_and_mttr_in_results(self):
        result = run_one(ResilienceSpec(
            timeout_s=150e-6, max_retries=2, probe_interval_s=25e-6,
        ))
        assert result.availability == 1.0  # node 2 never fails
        assert result.mttr_s == pytest.approx(400e-6)
        assert len(result.incidents) == 2
        assert {i.node for i in result.incidents} == {0, 1}
        labels = [w.label for w in result.windows]
        assert labels == ["before", "during", "after"]


# ---------------------------------------------------------------------------
# Correlated and compute-side hazards.
# ---------------------------------------------------------------------------


class TestCorrelatedHazards:
    def test_rack_kinds_registered_with_validation(self):
        event = HAZARDS.get("rack-fail")(at_s=1e-6, nodes=(0, 2))
        assert isinstance(event, RackFail)
        assert event_nodes(event) == (0, 2)
        with pytest.raises(ConfigurationError, match="nodes"):
            HAZARDS.get("rack-fail")(at_s=1e-6)
        with pytest.raises(ConfigurationError):
            HAZARDS.get("rack-repair")(at_s=1e-6, nodes=(0,),
                                       memory_gateways=2)

    def test_unknown_kind_suggests_neighbours(self):
        with pytest.raises(Exception, match="rack-fail"):
            HAZARDS.get("rack-fial")

    def test_rack_members_fail_and_repair_together(self):
        result = run_one(ResilienceSpec(probe_interval_s=25e-6))
        starts = {i.start_s for i in result.incidents}
        ends = {i.end_s for i in result.incidents}
        assert starts == {200e-6}
        assert ends == {600e-6}


class TestMacDegradeHazard:
    def test_registered_with_inert_knob_rejection(self):
        event = HAZARDS.get("chiplet-mac-degrade")(
            at_s=10e-6, mac_fraction=0.5, duration_s=100e-6,
        )
        assert event.mac_fraction == 0.5
        with pytest.raises(ConfigurationError, match="mac_fraction"):
            HAZARDS.get("chiplet-mac-degrade")(at_s=10e-6, mac_fraction=1.0)
        with pytest.raises(ConfigurationError):
            HAZARDS.get("chiplet-mac-degrade")(
                at_s=10e-6, mac_fraction=0.5, memory_gateways=2,
            )

    def test_rejected_on_the_inference_path(self):
        faults = FaultSpec(events=(FaultEventSpec(
            kind="chiplet-mac-degrade", at_s=10e-6, mac_fraction=0.5,
            duration_s=100e-6,
        ),))
        with pytest.raises(ConfigurationError, match="serving"):
            hazard_timeline(faults)

    def test_split_from_fabric_timeline(self):
        faults = FaultSpec(events=(
            FaultEventSpec(kind="chiplet-mac-degrade", at_s=10e-6,
                           mac_fraction=0.5, duration_s=100e-6),
        ))
        timeline, compute_events = platform_timelines(faults)
        assert timeline is None
        assert len(compute_events) == 1

    def test_degrade_slows_serving(self):
        def serve(events):
            spec = StudySpec(
                name="mac", kind="serving",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),),
                    rate_rps=100e3, duration_s=0.4e-3, seed=7,
                ),
                platform=PlatformSpec(
                    name="2.5D-CrossLight-SiPh", controller="resipi",
                    faults=FaultSpec(events=tuple(events)),
                ),
                scheduler=SchedulerSpec(policy="fifo"),
            )
            return run_study(spec).flat_results()[0]
        healthy = serve(())
        degraded = serve((FaultEventSpec(
            kind="chiplet-mac-degrade", at_s=50e-6, mac_fraction=0.25,
            duration_s=200e-6,
        ),))
        assert degraded.latency.mean_s > healthy.latency.mean_s
        assert degraded.time_degraded_s == pytest.approx(200e-6)


# ---------------------------------------------------------------------------
# Scheduler regression: backdated arrivals must clamp, not go negative.
# ---------------------------------------------------------------------------


class TestBackdatedArrivals:
    def make_scheduler(self):
        env = Environment()
        platform = MonolithicCrossLight()
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            policy=BatchPolicy.fifo(), slo_s=100e-6,
            residency=WeightResidency(env), trace=ExecutionTrace(),
        )
        return env, scheduler

    def test_remaining_time_clamps_at_zero(self):
        env, scheduler = self.make_scheduler()
        env.run(until=1e-3)
        handle = scheduler.submit(arrival_s=0.0)
        assert handle.deadline_s == pytest.approx(100e-6)
        assert handle.deadline_s < env.now
        assert handle.remaining_s(env.now) == 0.0

    def test_unbounded_request_never_expires(self):
        env, scheduler = self.make_scheduler()
        handle = scheduler.submit()
        handle.deadline_s = None
        assert handle.remaining_s(1.0) == float("inf")


# ---------------------------------------------------------------------------
# Determinism: serial == parallel == cold/warm cache.
# ---------------------------------------------------------------------------


class TestDeterminism:
    def spec(self):
        return resilient_spec(ResilienceSpec(
            timeout_s=120e-6, max_retries=2, retry_jitter=0.5,
            hedge_delay_s=60e-6, probe_interval_s=25e-6,
            signal_staleness_s=20e-6,
        ), duration_s=0.6e-3)

    def test_serial_matches_process_pool(self):
        serial = run_study(self.spec()).flat_results()
        parallel = run_study(self.spec(), jobs=4).flat_results()
        assert serial == parallel

    def test_cold_and_warm_cache_bit_identical(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_study(self.spec(), cache_dir=cache).flat_results()
        warm = run_study(self.spec(), cache_dir=cache).flat_results()
        assert cold == warm
        assert cold[0].resilience == warm[0].resilience
        assert cold[0].incidents == warm[0].incidents


# ---------------------------------------------------------------------------
# Dry run rendering.
# ---------------------------------------------------------------------------


class TestDryRun:
    def test_dry_run_renders_resilience_knobs(self):
        spec = resilient_spec(
            ResilienceSpec(timeout_s=150e-6, probe_interval_s=25e-6),
            sweep=SweepSpec(axes=(
                SweepAxis(field="resilience.max_retries", values=(0, 2)),
            )),
        )
        text = render_dry_run(spec)
        assert "resilience: lifecycle timeout=150us" in text
        assert "retries=2" in text
        assert "probe=25usx3" in text

    def test_degenerate_points_render_without_resilience(self):
        text = render_dry_run(resilient_spec(ResilienceSpec(), events=()))
        assert "resilience:" not in text


# ---------------------------------------------------------------------------
# Export: availability, MTTR, retry amplification in JSON and CSV.
# ---------------------------------------------------------------------------


class TestExport:
    def result(self):
        return run_one(ResilienceSpec(
            timeout_s=120e-6, max_retries=2, hedge_delay_s=60e-6,
            probe_interval_s=25e-6,
        ))

    def test_cluster_json_carries_resilience_block(self):
        data = cluster_result_to_dict(self.result())
        assert data["availability"] == 1.0
        assert data["mttr_s"] == pytest.approx(400e-6)
        stats = data["resilience"]
        assert stats["requests"] > 0
        assert set(stats) >= {
            "attempts", "retries", "hedges", "hedge_wins", "timeouts",
            "retry_amplification", "hedge_win_rate", "wasted_attempts",
            "retry_causes",
        }
        assert len(data["incidents"]) == 2
        assert data["incidents"][0]["detection_lag_s"] > 0
        json.dumps(data)  # must be serialisable as-is

    def test_cluster_csv_has_availability_columns(self):
        text = cluster_results_to_csv([self.result()])
        header, row = text.strip().splitlines()[:2]
        columns = header.split(",")
        for name in ("availability", "mttr_s", "retry_amplification",
                     "hedge_win_rate", "wasted_attempts"):
            assert name in columns
        values = dict(zip(columns, row.split(",")))
        assert float(values["availability"]) == 1.0
        assert float(values["retry_amplification"]) >= 1.0

    def test_legacy_results_export_empty_resilience(self):
        legacy = run_one(ResilienceSpec(), events=())
        data = cluster_result_to_dict(legacy)
        assert data["resilience"] is None
        assert data["incidents"] == []
        assert data["availability"] == 1.0
        assert data["mttr_s"] == 0.0
        text = cluster_results_to_csv([legacy])
        assert "availability" in text.splitlines()[0]

    def test_single_node_serving_result_exports(self):
        result = run_one(
            ResilienceSpec(timeout_s=5e-3, max_retries=1),
            cluster=None, events=(), rate_rps=100e3, duration_s=0.4e-3,
        )
        data = serving_result_to_dict(result)
        assert data["resilience"]["requests"] > 0
        assert data["availability"] == 1.0
        text = study_results_to_csv([result])
        assert "retry_amplification" in text.splitlines()[0]

    def test_mixed_study_export_handles_both_shapes(self):
        cluster = self.result()
        single = run_one(ResilienceSpec(), cluster=None, events=())
        text = study_results_to_json([cluster, single])
        payload = json.loads(text)
        assert payload[0]["resilience"] is not None
        assert payload[1]["resilience"] is None


class TestMeanTimeToRepair:
    def test_empty_and_unresolved_incidents(self):
        assert mean_time_to_repair(()) == 0.0
        open_incident = IncidentRecord(node=0, start_s=1e-3)
        assert not open_incident.resolved
        assert open_incident.repair_s is None
        assert mean_time_to_repair((open_incident,)) == 0.0

    def test_mean_over_resolved(self):
        incidents = (
            IncidentRecord(node=0, start_s=0.0, detected_s=1e-6,
                           end_s=100e-6),
            IncidentRecord(node=1, start_s=0.0, end_s=300e-6),
            IncidentRecord(node=2, start_s=50e-6),  # unresolved
        )
        assert mean_time_to_repair(incidents) == pytest.approx(200e-6)
