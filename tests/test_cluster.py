"""Cluster serving: router policies, node hazards, fleet studies, CLI."""

import pickle
from types import SimpleNamespace

import pytest

from repro.cluster.hazards import (
    NodeDrain,
    NodeFail,
    NodeRepair,
    node_hazard_timeline,
    validate_node_timeline,
)
from repro.cluster.router import ClusterNode, ClusterRouter
from repro.cluster.study import ClusterCell
from repro.core.accelerator import MonolithicCrossLight
from repro.core.engine import ExecutionTrace
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import (
    ConfigurationError,
    SimulationError,
    SpecError,
    UnknownNameError,
)
from repro.experiments.export import (
    cluster_results_to_csv,
    cluster_results_to_json,
    study_results_to_json,
)
from repro.experiments.serving_study import ServingCell, hazard_timeline
from repro.mapping.residency import WeightResidency
from repro.serving.metrics import ClusterResult, LatencyProfile, NodeStats
from repro.serving.scheduler import BatchPolicy, RequestScheduler
from repro.sim.core import Environment
from repro.sim.traffic import PoissonArrivals
from repro.studies import (
    ROUTERS,
    ClusterSpec,
    FaultEventSpec,
    FaultSpec,
    ModelTraffic,
    NodeOverrideSpec,
    PlatformSpec,
    SchedulerSpec,
    StudySpec,
    SweepAxis,
    SweepSpec,
    WorkloadSpec,
)
from repro.studies.compile import (
    is_degenerate_cluster,
    lower_serving_point,
    render_dry_run,
    render_study,
    resolve_config,
    run_study,
)

WORKLOAD = extract_workload(zoo.build("LeNet5"))


def make_fleet(n=3, router="round-robin", weights=(), node_events=(),
               reroute_on_fail=True, max_inflight=2):
    """N monolithic replicas behind a router, all in one environment."""
    env = Environment()
    platform = MonolithicCrossLight()
    nodes = []
    for index in range(n):
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            policy=BatchPolicy.fifo(max_inflight=max_inflight),
            residency=WeightResidency(env), trace=ExecutionTrace(),
        )
        nodes.append(ClusterNode(
            index=index, platform=platform, sim=sim,
            scheduler=scheduler, residency=scheduler.residency,
        ))
    policy = ROUTERS.get(router)(n, weights)
    return env, nodes, ClusterRouter(
        nodes, policy, node_events=node_events,
        reroute_on_fail=reroute_on_fail,
    )


def cluster_spec(replicas=4, router="round-robin", rate_rps=8e6,
                 duration_s=0.3e-3, events=(), max_inflight=1,
                 **overrides) -> StudySpec:
    kwargs = dict(
        name="fleet",
        kind="serving",
        workload=WorkloadSpec(
            models=(ModelTraffic(model="LeNet5"),),
            rate_rps=rate_rps, duration_s=duration_s,
        ),
        platform=PlatformSpec(name="CrossLight"),
        scheduler=SchedulerSpec(policy="fifo", max_inflight=max_inflight),
        cluster=ClusterSpec(
            replicas=replicas, router=router,
            faults=FaultSpec(events=tuple(events)),
        ),
    )
    kwargs.update(overrides)
    return StudySpec(**kwargs)


FAIL_REPAIR = (
    FaultEventSpec(kind="node-fail", at_s=100e-6, node=1),
    FaultEventSpec(kind="node-repair", at_s=250e-6, node=1),
)


# ---------------------------------------------------------------------------
# Node hazards.
# ---------------------------------------------------------------------------


class TestNodeHazards:
    def test_node_kinds_resolve_via_hazards_registry(self):
        from repro.studies import HAZARDS

        for kind in ("node-fail", "node-drain", "node-repair"):
            assert kind in HAZARDS

    def test_factories_require_node_and_reject_fabric_knobs(self):
        from repro.studies import HAZARDS

        with pytest.raises(ConfigurationError, match="'node' index"):
            HAZARDS.get("node-fail")(at_s=0.0)
        with pytest.raises(ConfigurationError, match="do\\(es\\) not apply"):
            HAZARDS.get("node-drain")(at_s=0.0, node=0, memory_gateways=2)
        with pytest.raises(ConfigurationError, match="do\\(es\\) not apply"):
            HAZARDS.get("node-repair")(at_s=0.0, node=0, duration_s=1e-6)
        event = HAZARDS.get("node-fail")(at_s=1e-6, node=2)
        assert event == NodeFail(at_s=1e-6, node=2)

    def test_fabric_factories_reject_node_knob(self):
        from repro.studies import HAZARDS

        with pytest.raises(ConfigurationError, match="node"):
            HAZARDS.get("gateway-fail")(
                at_s=0.0, memory_gateways=1, node=0
            )

    def test_layer_crossing_kinds_rejected_both_ways(self):
        node_section = FaultSpec(events=(
            FaultEventSpec(kind="gateway-fail", at_s=0.0,
                           memory_gateways=1),
        ))
        with pytest.raises(ConfigurationError, match="platform.faults"):
            node_hazard_timeline(node_section)
        fabric_section = FaultSpec(events=(
            FaultEventSpec(kind="node-fail", at_s=0.0, node=0),
        ))
        with pytest.raises(ConfigurationError, match="cluster.faults"):
            hazard_timeline(fabric_section)

    def test_timeline_validation(self):
        with pytest.raises(ConfigurationError, match="names node 5"):
            validate_node_timeline((NodeFail(at_s=0.0, node=5),), 2)
        with pytest.raises(ConfigurationError, match="already failed"):
            validate_node_timeline(
                (NodeFail(at_s=0.0, node=0), NodeFail(at_s=1e-6, node=0)),
                2,
            )
        with pytest.raises(ConfigurationError, match="already up"):
            validate_node_timeline((NodeRepair(at_s=0.0, node=0),), 2)
        with pytest.raises(ConfigurationError, match="only an up node"):
            validate_node_timeline(
                (NodeFail(at_s=0.0, node=0), NodeDrain(at_s=1e-6, node=0)),
                2,
            )
        with pytest.raises(ConfigurationError, match="chronologically"):
            validate_node_timeline(
                (NodeFail(at_s=2e-6, node=0),
                 NodeDrain(at_s=1e-6, node=1)),
                3,
            )

    def test_timeline_must_leave_one_node_up(self):
        with pytest.raises(ConfigurationError, match="leaves no node up"):
            validate_node_timeline(
                (NodeFail(at_s=0.0, node=0), NodeDrain(at_s=1e-6, node=1)),
                2,
            )
        # A repair re-opens capacity for a later failure.
        validate_node_timeline(
            (
                NodeFail(at_s=0.0, node=0),
                NodeRepair(at_s=1e-6, node=0),
                NodeFail(at_s=2e-6, node=1),
            ),
            2,
        )


# ---------------------------------------------------------------------------
# Routing policies (pure choose() behavior over stub nodes).
# ---------------------------------------------------------------------------


def stub_node(index, outstanding=0, queue_length=0, routed=0, weight=1.0,
              resident=()):
    return SimpleNamespace(
        index=index, outstanding=outstanding, queue_length=queue_length,
        routed=routed, weight=weight,
        holds_model=lambda model, resident=resident: model in resident,
    )


class TestRoutingPolicies:
    def test_registry_lists_all_routers(self):
        for name in ("round-robin", "least-outstanding", "weighted",
                     "join-shortest-queue", "model-affinity"):
            assert name in ROUTERS

    def test_round_robin_cycles(self):
        policy = ROUTERS.get("round-robin")(3, ())
        nodes = [stub_node(i) for i in range(3)]
        picks = [policy.choose(nodes, "m").index for _ in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_least_outstanding_picks_min_then_index(self):
        policy = ROUTERS.get("least-outstanding")(3, ())
        nodes = [stub_node(0, outstanding=2), stub_node(1, outstanding=1),
                 stub_node(2, outstanding=1)]
        assert policy.choose(nodes, "m").index == 1

    def test_jsq_ignores_inflight(self):
        policy = ROUTERS.get("join-shortest-queue")(2, ())
        nodes = [stub_node(0, outstanding=9, queue_length=0),
                 stub_node(1, outstanding=0, queue_length=3)]
        assert policy.choose(nodes, "m").index == 0

    def test_weighted_tracks_weight_share(self):
        policy = ROUTERS.get("weighted")(2, (3.0, 1.0))
        nodes = [stub_node(0, weight=3.0), stub_node(1, weight=1.0)]
        picks = []
        for _ in range(8):
            node = policy.choose(nodes, "m")
            node.routed += 1
            picks.append(node.index)
        assert picks.count(0) == 6 and picks.count(1) == 2

    def test_model_affinity_prefers_resident_nodes(self):
        policy = ROUTERS.get("model-affinity")(3, ())
        nodes = [stub_node(0, outstanding=0),
                 stub_node(1, outstanding=5, resident=("ResNet50",)),
                 stub_node(2, outstanding=7, resident=("ResNet50",))]
        assert policy.choose(nodes, "ResNet50").index == 1
        # No node holds the model yet: least-outstanding fallback.
        assert policy.choose(nodes, "LeNet5").index == 0

    def test_weighted_factory_validates_weights(self):
        with pytest.raises(ConfigurationError, match="one weight per"):
            ROUTERS.get("weighted")(3, (1.0,))
        with pytest.raises(ConfigurationError, match="positive"):
            ROUTERS.get("weighted")(2, (1.0, -1.0))

    def test_other_routers_reject_weights(self):
        with pytest.raises(ConfigurationError, match="ignores"):
            ROUTERS.get("round-robin")(2, (1.0, 2.0))

    def test_unknown_router_error_names_registry(self):
        with pytest.raises(UnknownNameError) as excinfo:
            ROUTERS.get("lest-outstanding")
        message = str(excinfo.value)
        assert "in ROUTERS registry" in message
        assert "'least-outstanding'" in message

    def test_registry_labelled_errors_survive_pickling(self):
        try:
            ROUTERS.get("nope")
        except UnknownNameError as error:
            clone = pickle.loads(pickle.dumps(error))
            assert str(clone) == str(error)
            assert clone.registry == "ROUTERS"


# ---------------------------------------------------------------------------
# The router against live schedulers.
# ---------------------------------------------------------------------------


class TestClusterRouter:
    def test_route_distributes_and_counts(self):
        env, nodes, router = make_fleet(n=3)
        for _ in range(6):
            router.route()
        assert [node.routed for node in nodes] == [2, 2, 2]
        assert router.requests_routed == 6

    def test_nodes_must_share_an_environment(self):
        env, nodes, _ = make_fleet(n=2)
        other_env, other_nodes, _ = make_fleet(n=1)
        with pytest.raises(ConfigurationError, match="Environment"):
            ClusterRouter(
                [nodes[0], other_nodes[0]],
                ROUTERS.get("round-robin")(2, ()),
            )

    def test_serve_is_single_shot(self):
        env, nodes, router = make_fleet(n=2)
        router.serve(PoissonArrivals(rate_rps=100e3, seed=1), 0.1e-3)
        with pytest.raises(SimulationError, match="single-shot"):
            router.serve(PoissonArrivals(rate_rps=100e3, seed=1), 0.1e-3)

    def test_fail_reroutes_queued_requests(self):
        events = (NodeFail(at_s=100e-6, node=1),
                  NodeRepair(at_s=250e-6, node=1))
        env, nodes, router = make_fleet(
            n=4, node_events=events, max_inflight=1,
        )
        router.serve(PoissonArrivals(rate_rps=8e6, seed=7), 0.3e-3)
        assert router.requests_rerouted > 0
        assert nodes[1].rerouted_away == router.requests_rerouted
        assert nodes[1].state == "up"  # repaired
        assert [record.kind for record in router.records] == [
            "node-fail", "node-repair",
        ]
        assert router.records[0].rerouted == router.requests_rerouted
        # Fleet conservation: every routed request closed exactly once.
        closed = sum(
            node.scheduler.requests_completed + node.scheduler.requests_shed
            for node in nodes
        )
        assert closed == router.requests_routed
        assert sum(
            node.scheduler.requests_injected for node in nodes
        ) == router.requests_routed

    def test_reroute_preserves_arrival_times(self):
        events = (NodeFail(at_s=100e-6, node=1),)
        env, nodes, router = make_fleet(
            n=2, node_events=events, max_inflight=1,
        )
        router.serve(PoissonArrivals(rate_rps=8e6, seed=7), 0.2e-3)
        assert router.requests_rerouted > 0
        survivor = nodes[0].scheduler
        # Requests rerouted at t=100us kept their original (earlier)
        # arrival stamps: some of the survivor's records must have
        # arrived before the failure yet dispatched after it.
        carried = [
            record for record in survivor.records
            if record.arrival_s < 100e-6 and record.dispatch_s > 100e-6
        ]
        assert carried

    def test_without_reroute_failed_node_drains_in_place(self):
        events = (NodeFail(at_s=100e-6, node=1),)
        env, nodes, router = make_fleet(
            n=2, node_events=events, reroute_on_fail=False,
            max_inflight=1,
        )
        router.serve(PoissonArrivals(rate_rps=8e6, seed=7), 0.2e-3)
        assert router.requests_rerouted == 0
        assert nodes[1].state == "failed"
        # The queue it had accepted still completes locally.
        assert (
            nodes[1].scheduler.requests_completed
            == nodes[1].scheduler.requests_injected
        )

    def test_drain_stops_new_routing_but_completes_queue(self):
        events = (NodeDrain(at_s=100e-6, node=0),)
        env, nodes, router = make_fleet(
            n=2, node_events=events, max_inflight=1,
        )
        router.serve(PoissonArrivals(rate_rps=8e6, seed=7), 0.3e-3)
        drained_node = nodes[0].scheduler
        assert nodes[0].state == "draining"
        assert router.requests_rerouted == 0
        assert drained_node.requests_completed == (
            drained_node.requests_injected
        )
        # Every arrival after the drain went to node 1.
        assert all(
            record.arrival_s <= 100e-6
            for record in drained_node.records
        )


# ---------------------------------------------------------------------------
# Spec validation and lowering.
# ---------------------------------------------------------------------------


class TestClusterSpec:
    def test_round_trip(self):
        spec = cluster_spec(events=FAIL_REPAIR)
        clone = StudySpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.digest == spec.digest

    def test_validation_errors(self):
        with pytest.raises(SpecError, match="replica count"):
            ClusterSpec(replicas=0)
        with pytest.raises(SpecError, match="one weight per replica"):
            ClusterSpec(replicas=2, weights=(1.0,))
        with pytest.raises(SpecError, match="positive"):
            ClusterSpec(replicas=2, weights=(1.0, 0.0))
        with pytest.raises(SpecError, match="duplicate node overrides"):
            ClusterSpec(replicas=2, nodes=(
                NodeOverrideSpec(node=0), NodeOverrideSpec(node=0),
            ))
        with pytest.raises(SpecError, match="has 2 replica"):
            ClusterSpec(replicas=2, nodes=(NodeOverrideSpec(node=5),))
        with pytest.raises(SpecError, match="needs a 'node' index"):
            ClusterSpec(replicas=2, faults=FaultSpec(events=(
                FaultEventSpec(kind="node-fail", at_s=0.0),
            )))
        with pytest.raises(SpecError, match="names node 7"):
            ClusterSpec(replicas=2, faults=FaultSpec(events=(
                FaultEventSpec(kind="node-fail", at_s=0.0, node=7),
            )))

    def test_cluster_applies_only_to_serving(self):
        with pytest.raises(SpecError, match="serving"):
            StudySpec(
                name="x", kind="inference",
                workload=WorkloadSpec(
                    models=(ModelTraffic(model="LeNet5"),),
                ),
                cluster=ClusterSpec(replicas=2),
            )

    def test_unknown_router_fails_fast_with_registry_name(self):
        spec = cluster_spec(router="lest-outstanding")
        with pytest.raises(UnknownNameError, match="in ROUTERS registry"):
            run_study(spec)

    def test_sweepable_cluster_axes(self):
        spec = cluster_spec(
            replicas=2, rate_rps=100e3,
            sweep=SweepSpec(axes=(
                SweepAxis(field="cluster.replicas", values=(2, 4)),
                SweepAxis(field="cluster.router",
                          values=("round-robin", "least-outstanding")),
            )),
        )
        points = spec.expand()
        assert [
            (p.cluster.replicas, p.cluster.router) for p in points
        ] == [
            (2, "round-robin"), (2, "least-outstanding"),
            (4, "round-robin"), (4, "least-outstanding"),
        ]

    def test_sweeping_missing_cluster_section_is_typed(self):
        spec = cluster_spec(cluster=None)
        with pytest.raises(SpecError, match="no cluster section"):
            spec.with_override("cluster.replicas", 2)

    def test_one_replica_cluster_is_degenerate(self):
        plain = cluster_spec(cluster=None, rate_rps=150e3)
        one = cluster_spec(
            cluster=ClusterSpec(replicas=1, router="least-outstanding"),
            rate_rps=150e3,
        )
        assert is_degenerate_cluster(one)
        assert not is_degenerate_cluster(cluster_spec(replicas=2))
        assert not is_degenerate_cluster(cluster_spec(
            replicas=1, events=(
                FaultEventSpec(kind="node-drain", at_s=0.0, node=0),
            ),
        ))
        cell_plain = lower_serving_point(plain, resolve_config(plain))
        cell_one = lower_serving_point(one, resolve_config(one))
        assert isinstance(cell_plain, ServingCell)
        assert isinstance(cell_one, ServingCell)
        assert cell_plain.key() == cell_one.key()

    def test_one_replica_cluster_matches_single_node_bit_identical(self):
        plain = cluster_spec(cluster=None, rate_rps=150e3,
                             duration_s=0.4e-3, max_inflight=4)
        one = cluster_spec(cluster=ClusterSpec(replicas=1),
                           rate_rps=150e3, duration_s=0.4e-3,
                           max_inflight=4)
        assert (
            run_study(plain).flat_results()
            == run_study(one).flat_results()
        )


# ---------------------------------------------------------------------------
# End-to-end fleet studies.
# ---------------------------------------------------------------------------


class TestClusterStudy:
    def test_fleet_with_fail_and_repair(self):
        study = run_study(cluster_spec(events=FAIL_REPAIR))
        (result,) = study.cluster_results()
        assert isinstance(result, ClusterResult)
        assert result.n_nodes == 4
        assert result.requests_rerouted > 0
        assert result.requests_completed + result.requests_shed == (
            result.requests_injected
        )
        assert [event.kind for event in result.node_events] == [
            "node-fail", "node-repair",
        ]
        assert {stats.state for stats in result.per_node} == {"up"}
        assert result.load_imbalance >= 1.0
        assert result.goodput_rps > 0
        assert result.latency.p99_s >= result.latency.p50_s > 0

    def test_fleet_is_deterministic_and_cacheable(self, tmp_path):
        spec = cluster_spec(replicas=2, rate_rps=1e6,
                            duration_s=0.2e-3, events=(
                                FaultEventSpec(kind="node-fail",
                                               at_s=80e-6, node=0),
                                FaultEventSpec(kind="node-repair",
                                               at_s=150e-6, node=0),
                            ))
        serial = run_study(spec)
        parallel = run_study(spec, jobs=2)
        cold = run_study(spec, cache_dir=tmp_path)
        warm = run_study(spec, cache_dir=tmp_path)
        assert serial.points == parallel.points
        assert serial.points == cold.points
        assert cold.points == warm.points

    def test_routers_differentiate_under_skew(self):
        # Heterogeneous weights steer traffic toward node 0.
        spec = cluster_spec(
            replicas=2, router="weighted", rate_rps=500e3,
            duration_s=0.3e-3,
            cluster=ClusterSpec(replicas=2, router="weighted",
                                weights=(3.0, 1.0)),
        )
        (result,) = run_study(spec).cluster_results()
        node0, node1 = result.per_node
        assert node0.requests_completed > 2 * node1.requests_completed

    def test_heterogeneous_node_overrides_run(self):
        spec = cluster_spec(
            replicas=2, rate_rps=50e3, duration_s=0.2e-3,
            platform=PlatformSpec(name="2.5D-CrossLight-SiPh"),
            cluster=ClusterSpec(
                replicas=2, router="round-robin",
                nodes=(NodeOverrideSpec(node=1, n_wavelengths=8,
                                        controller="static"),),
            ),
        )
        (result,) = run_study(spec).cluster_results()
        assert result.requests_completed == result.requests_injected > 0

    def test_fleet_per_model_stats_cover_mix(self):
        spec = cluster_spec(
            replicas=2, rate_rps=40e3, duration_s=0.5e-3,
            max_inflight=2,
            workload=WorkloadSpec(models=(
                ModelTraffic(model="LeNet5", fraction=0.7, slo_s=300e-6),
                ModelTraffic(model="MobileNetV2", fraction=0.3),
            ), rate_rps=40e3, duration_s=0.5e-3),
        )
        (result,) = run_study(spec).cluster_results()
        assert {stats.model for stats in result.per_model} == {
            "LeNet5", "MobileNetV2",
        }
        assert result.model == "70%LeNet5+30%MobileNetV2"

    def test_render_study_includes_fleet_tables(self):
        study = run_study(cluster_spec(events=FAIL_REPAIR))
        text = render_study(study)
        assert "router" in text and "imbal" in text
        assert "per-node breakdown" in text
        assert "node1" in text

    def test_dry_run_renders_cluster_grid_with_keys(self):
        spec = cluster_spec(
            replicas=2, rate_rps=100e3,
            sweep=SweepSpec(axes=(
                SweepAxis(field="cluster.router",
                          values=("round-robin", "least-outstanding")),
                SweepAxis(field="workload.rate_rps",
                          values=(50e3, 100e3)),
            )),
        )
        text = render_dry_run(spec)
        assert "grid: 4 point(s), 4 cell(s)" in text
        assert text.count("ClusterCell") == 4
        assert "2x[least-outstanding] LeNet5" in text
        assert "cluster.router=round-robin" in text
        assert text.count(" key ") == 4
        for point in spec.expand():
            cell = lower_serving_point(point, resolve_config(point))
            assert cell.key() in text

    def test_cluster_cells_key_on_every_fleet_field(self):
        base = lower_serving_point(
            cluster_spec(events=FAIL_REPAIR),
            resolve_config(cluster_spec()),
        )
        variants = [
            cluster_spec(replicas=3, events=FAIL_REPAIR),
            cluster_spec(router="least-outstanding", events=FAIL_REPAIR),
            cluster_spec(events=()),
            cluster_spec(events=FAIL_REPAIR,
                         cluster=ClusterSpec(replicas=4,
                                             reroute_on_fail=False)),
        ]
        keys = {base.key()}
        for spec in variants:
            keys.add(
                lower_serving_point(spec, resolve_config(spec)).key()
            )
        assert len(keys) == len(variants) + 1

    def test_cluster_cell_pickles(self):
        cell = lower_serving_point(
            cluster_spec(events=FAIL_REPAIR),
            resolve_config(cluster_spec()),
        )
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell and clone.key() == cell.key()


# ---------------------------------------------------------------------------
# Export and CLI.
# ---------------------------------------------------------------------------


def tiny_cluster_result() -> ClusterResult:
    profile = LatencyProfile.from_samples([1e-6, 2e-6])
    return ClusterResult(
        platform="CrossLight", model="LeNet5", controller="resipi",
        router="round-robin", policy="fifo", arrival_kind="poisson",
        n_nodes=2, offered_rps=1e5, duration_s=1e-3, elapsed_s=1e-3,
        requests_injected=2, requests_completed=2, latency=profile,
        queue_delay=profile,
        per_node=(
            NodeStats(node="node0", state="up", requests_completed=2,
                      requests_shed=0, rerouted_away=0, latency=profile,
                      goodput_rps=2e3, mean_compute_utilization=0.5),
            NodeStats(node="node1", state="failed", requests_completed=0,
                      requests_shed=0, rerouted_away=2,
                      latency=LatencyProfile.from_samples([]),
                      goodput_rps=0.0, mean_compute_utilization=0.0),
        ),
        requests_rerouted=2,
    )


class TestExport:
    def test_cluster_json_carries_fleet_fields(self):
        import json

        (record,) = json.loads(
            cluster_results_to_json([tiny_cluster_result()])
        )
        assert record["router"] == "round-robin"
        assert record["requests_rerouted"] == 2
        assert record["load_imbalance"] == 2.0
        assert [node["node"] for node in record["per_node"]] == [
            "node0", "node1",
        ]
        assert record["per_node"][1]["state"] == "failed"
        assert record["latency_s"]["p99"] == pytest.approx(2e-6)

    def test_cluster_csv_has_aggregate_and_node_rows(self):
        text = cluster_results_to_csv([tiny_cluster_result()])
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 1 + 2  # header + aggregate + 2 nodes
        assert "load_imbalance" in lines[0]
        assert "node1" in lines[3]

    def test_mixed_study_export_dispatches_by_type(self):
        import json

        study = run_study(cluster_spec(
            replicas=2, rate_rps=100e3, duration_s=0.2e-3,
        ))
        payload = json.loads(
            study_results_to_json(study.flat_results())
        )
        assert payload[0]["n_nodes"] == 2

    def test_imbalance_edge_cases(self):
        result = tiny_cluster_result()
        assert result.load_imbalance == 2.0
        idle = ClusterResult(
            **{**result.__dict__,
               "per_node": tuple(
                   NodeStats(**{**stats.__dict__,
                                "mean_compute_utilization": 0.0})
                   for stats in result.per_node
               )},
        )
        assert idle.load_imbalance == 0.0
        assert idle.slo_attainment == 1.0  # no per-model stats


class TestClusterCli:
    def test_example_cluster_spec_parses_and_dry_runs(self, capsys):
        from repro.cli import main

        assert main(["study", "examples/cluster_spec.json",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "ClusterCell" in out
        assert "cluster.router=" in out

    def test_study_verb_runs_cluster_spec_with_exports(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        spec = cluster_spec(replicas=2, rate_rps=200e3,
                            duration_s=0.2e-3, events=(
                                FaultEventSpec(kind="node-fail",
                                               at_s=80e-6, node=1),
                            ))
        path = tmp_path / "fleet.json"
        path.write_text(spec.to_json())
        json_out = tmp_path / "out.json"
        csv_out = tmp_path / "out.csv"
        assert main(["study", str(path), "--json", str(json_out),
                     "--csv", str(csv_out)]) == 0
        out = capsys.readouterr().out
        assert "per-node breakdown" in out
        assert json_out.exists() and csv_out.exists()
        assert "node_rerouted_away" in csv_out.read_text()
