"""Roofline analysis."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError
from repro.experiments.roofline import (
    PlatformRoofline,
    operational_intensity,
    platform_rooflines,
    render_roofline,
    roofline_analysis,
)


@pytest.fixture(scope="module")
def workloads():
    return {
        name: extract_workload(zoo.build(name))
        for name in ("LeNet5", "ResNet50", "VGG16")
    }


class TestRoofline:
    def test_ridge_point(self):
        roofline = PlatformRoofline("x", peak_macs_per_s=1e12,
                                    bandwidth_bps=1e11)
        assert roofline.ridge_intensity_macs_per_bit == pytest.approx(10.0)

    def test_attainable_clamps_at_peak(self):
        roofline = PlatformRoofline("x", 1e12, 1e11)
        assert roofline.attainable_macs_per_s(100.0) == 1e12
        assert roofline.attainable_macs_per_s(1.0) == pytest.approx(1e11)

    def test_bound_classification(self):
        roofline = PlatformRoofline("x", 1e12, 1e11)
        assert roofline.is_compute_bound(20.0)
        assert not roofline.is_compute_bound(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PlatformRoofline("x", 0.0, 1e11)
        with pytest.raises(ConfigurationError):
            PlatformRoofline("x", 1e12, 1e11).attainable_macs_per_s(0.0)

    def test_three_platforms(self):
        rooflines = platform_rooflines()
        assert set(rooflines) == {
            "CrossLight", "2.5D-CrossLight-Elec", "2.5D-CrossLight-SiPh",
        }

    def test_2p5d_platforms_share_compute_peak(self):
        rooflines = platform_rooflines()
        assert rooflines["2.5D-CrossLight-Elec"].peak_macs_per_s == (
            rooflines["2.5D-CrossLight-SiPh"].peak_macs_per_s
        )

    def test_siph_has_much_higher_bandwidth(self):
        rooflines = platform_rooflines()
        assert rooflines["2.5D-CrossLight-SiPh"].bandwidth_bps > (
            50 * rooflines["2.5D-CrossLight-Elec"].bandwidth_bps
        )

    def test_intensity_of_vgg_higher_than_lenet(self, workloads):
        # VGG16 reuses each parameter across a 224x224 map: much higher
        # operational intensity than the tiny LeNet5.
        assert operational_intensity(workloads["VGG16"]) > (
            operational_intensity(workloads["LeNet5"])
        )

    def test_analysis_explains_the_paper_shape(self, workloads):
        """The crossover story: big CNNs are compute-bound on SiPh but
        memory-bound on the electrical interposer."""
        points = roofline_analysis(workloads)
        by_key = {(p.model, p.platform): p for p in points}
        assert by_key[("VGG16", "2.5D-CrossLight-SiPh")].compute_bound
        assert not by_key[("VGG16", "2.5D-CrossLight-Elec")].compute_bound
        assert not by_key[("ResNet50", "2.5D-CrossLight-Elec")].compute_bound

    def test_attainable_consistent_with_simulation_ordering(self, workloads,
                                                            runner):
        """Roofline-attainable throughput ranks platforms like the DES."""
        points = roofline_analysis(workloads)
        by_key = {(p.model, p.platform): p for p in points}
        for model in ("ResNet50", "VGG16"):
            siph = by_key[(model, "2.5D-CrossLight-SiPh")]
            elec = by_key[(model, "2.5D-CrossLight-Elec")]
            assert siph.attainable_macs_per_s > elec.attainable_macs_per_s
            sim_siph = runner.run("2.5D-CrossLight-SiPh", model)
            sim_elec = runner.run("2.5D-CrossLight-Elec", model)
            assert sim_siph.latency_s < sim_elec.latency_s

    def test_render(self, workloads):
        text = render_roofline(roofline_analysis(workloads))
        assert "ridge" in text
        assert "VGG16" in text
        assert "compute" in text and "memory" in text

    def test_zero_traffic_rejected(self):
        class Fake:
            total_macs = 10
            total_traffic_bits = 0

        with pytest.raises(ConfigurationError):
            operational_intensity(Fake())
