"""Batched inference semantics and the quantisation study."""

import pytest

from repro.core.accelerator import (
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.experiments.quantization_study import (
    quantization_schemes,
    quantization_study,
    render_quantization_study,
)


@pytest.fixture(scope="module")
def mobilenet_workload():
    return extract_workload(zoo.build("MobileNetV2"))


class TestBatching:
    def test_batch_one_is_default(self, mobilenet_workload):
        platform = CrossLight25DSiPh()
        explicit = platform.run_workload(mobilenet_workload, batch_size=1)
        implicit = platform.run_workload(mobilenet_workload)
        assert explicit.latency_s == pytest.approx(implicit.latency_s)
        assert implicit.batch_size == 1

    def test_invalid_batch_rejected(self, mobilenet_workload):
        with pytest.raises(ValueError):
            CrossLight25DSiPh().run_workload(mobilenet_workload,
                                             batch_size=0)

    def test_batch_amortises_per_image_latency(self, mobilenet_workload):
        platform = CrossLight25DSiPh()
        single = platform.run_workload(mobilenet_workload, batch_size=1)
        batched = platform.run_workload(mobilenet_workload, batch_size=8)
        assert batched.latency_per_inference_s <= (
            single.latency_per_inference_s * 1.001
        )
        assert batched.throughput_inferences_per_s >= (
            single.throughput_inferences_per_s * 0.999
        )

    def test_batch_total_latency_sublinear(self, mobilenet_workload):
        """Weights are fetched once: 8 images cost < 8x one image."""
        platform = MonolithicCrossLight()
        single = platform.run_workload(mobilenet_workload, batch_size=1)
        batched = platform.run_workload(mobilenet_workload, batch_size=8)
        assert batched.latency_s < 8 * single.latency_s

    def test_traffic_scales_with_batch(self, mobilenet_workload):
        platform = CrossLight25DSiPh()
        single = platform.run_workload(mobilenet_workload, batch_size=1)
        batched = platform.run_workload(mobilenet_workload, batch_size=4)
        assert batched.traffic_bits == pytest.approx(
            4 * single.traffic_bits
        )

    def test_trace_ops_scale_with_batch(self, mobilenet_workload):
        platform = MonolithicCrossLight()
        single = platform.run_workload(mobilenet_workload, batch_size=1)
        batched = platform.run_workload(mobilenet_workload, batch_size=3)
        # Compute energy triples with the batch.
        assert batched.energy.compute_dynamic_j == pytest.approx(
            3 * single.energy.compute_dynamic_j, rel=1e-6
        )


class TestQuantizationStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return quantization_study("LeNet5")

    def test_four_schemes(self, points):
        assert len(points) == 4
        schemes = {point.scheme for point in points}
        assert "uniform-8b" in schemes
        assert "binary (LightBulb-style)" in schemes

    def test_traffic_monotone_in_precision(self, points):
        by_scheme = {p.scheme: p.traffic_bits for p in points}
        assert by_scheme["binary (LightBulb-style)"] < by_scheme[
            "uniform-4b"
        ] < by_scheme["heterogeneous-8/4b"] < by_scheme["uniform-8b"]

    def test_energy_improves_with_lower_precision(self, points):
        by_scheme = {p.scheme: p.result.total_energy_j for p in points}
        assert by_scheme["binary (LightBulb-style)"] < by_scheme[
            "uniform-8b"
        ]

    def test_render(self, points):
        text = render_quantization_study(points)
        assert "uniform-8b" in text
        assert "traffic(Mb)" in text

    def test_schemes_factory(self):
        schemes = quantization_schemes(10)
        assert schemes["uniform-4b"].weight_bits == 4
        assert schemes["binary (LightBulb-style)"].activation_bits == 1
        hetero = schemes["heterogeneous-8/4b"]
        assert hetero.weight_bits_for(0) == 8
        assert hetero.weight_bits_for(9) == 4
