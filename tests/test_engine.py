"""DES inference engine semantics: overlap, streaming, tracing."""

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.crosslight import MonolithicFabric, monolithic_mapping
from repro.core.engine import InferenceEngine
from repro.dnn import zoo
from repro.dnn.workload import LayerWorkload, extract_workload
from repro.errors import SimulationError
from repro.interposer.photonic.fabric import PhotonicInterposerFabric
from repro.interposer.topology import build_floorplan
from repro.mapping.mapper import (
    Allocation,
    KernelMatchMapper,
    LayerMapping,
    ModelMapping,
)
from repro.mapping.tiling import TilingResult
from repro.sim.core import Environment


def synthetic_mapping(n_layers=3, vector_ops=1_000_000, weight_bits=1e6,
                      input_bits=1e6, output_bits=1e6):
    """A uniform synthetic workload mapped onto one pseudo-chiplet."""
    layers = []
    for index in range(n_layers):
        workload = LayerWorkload(
            index=index, name=f"l{index}", kind="Conv2D", kernel_size=3,
            dot_length=9, n_dots=vector_ops, macs=9 * vector_ops,
            weight_bits=int(weight_bits), input_bits=int(input_bits),
            output_bits=int(output_bits),
        )
        alloc = Allocation(
            chiplet_id="mono-0", kind="mono-vdp", n_macs=16,
            vector_length=64, vector_ops=vector_ops,
            weight_bits=int(weight_bits), output_bits=int(output_bits),
        )
        layers.append(LayerMapping(
            layer=workload, allocations=(alloc,),
            tiling=TilingResult(vector_ops, "spatial", 1.0),
        ))
    return ModelMapping(workload=None, layers=tuple(layers))


def run_mono(mapping, config=DEFAULT_PLATFORM):
    env = Environment()
    fabric = MonolithicFabric(env, config)
    engine = InferenceEngine(env, config, fabric,
                             mac_rate_hz=config.mono_mac_rate_hz)
    latency = engine.run(mapping)
    return latency, engine, fabric


class TestExecutionSemantics:
    def test_empty_mapping_completes_instantly(self):
        latency, _, _ = run_mono(ModelMapping(workload=None, layers=()))
        assert latency == 0.0

    def test_compute_bound_layer_time(self):
        # One layer, negligible traffic: latency ~ ops / (units * rate).
        mapping = synthetic_mapping(n_layers=1, vector_ops=16_000_000,
                                    weight_bits=8, input_bits=8,
                                    output_bits=8)
        latency, _, _ = run_mono(mapping)
        expected = 16_000_000 / (16 * DEFAULT_PLATFORM.mono_mac_rate_hz)
        assert latency == pytest.approx(expected, rel=0.01)

    def test_communication_bound_layer_time(self):
        # Negligible compute, 1 Gbit input: bounded by NoC bandwidth.
        mapping = synthetic_mapping(n_layers=1, vector_ops=1,
                                    weight_bits=8, input_bits=1e9,
                                    output_bits=8)
        latency, _, _ = run_mono(mapping)
        expected = 1e9 / DEFAULT_PLATFORM.mono_noc_bandwidth_bps
        assert latency == pytest.approx(expected, rel=0.05)

    def test_weight_prefetch_overlaps_compute(self):
        """Weights of layer N+1 stream during layer N's compute."""
        heavy_weights = 1e9  # 5 ms on the 0.2 Tb/s DRAM channel
        compute_ops = 16_000_000  # 1 ms of compute per layer
        mapping = synthetic_mapping(n_layers=2, vector_ops=compute_ops,
                                    weight_bits=heavy_weights,
                                    input_bits=8, output_bits=8)
        latency, _, _ = run_mono(mapping)
        weight_time = heavy_weights / DEFAULT_PLATFORM.mono_dram_bandwidth_bps
        compute_time = compute_ops / (16 * DEFAULT_PLATFORM.mono_mac_rate_hz)
        serial = 2 * (weight_time + compute_time)
        overlapped = weight_time + max(weight_time, compute_time) + (
            compute_time
        )
        assert latency == pytest.approx(overlapped, rel=0.05)
        assert latency < serial * 0.95

    def test_streaming_max_semantics(self):
        """Layer time = max(input stream, compute), not the sum."""
        input_bits = 1.28e9  # exactly 1 ms on the NoC
        compute_ops = 16_000_000  # exactly 1 ms of compute
        mapping = synthetic_mapping(n_layers=1, vector_ops=compute_ops,
                                    weight_bits=8, input_bits=input_bits,
                                    output_bits=8)
        latency, _, _ = run_mono(mapping)
        assert latency == pytest.approx(1e-3, rel=0.1)
        assert latency < 1.9e-3  # clearly not the 2 ms serial sum

    def test_trace_accumulates_ops(self):
        mapping = synthetic_mapping(n_layers=3, vector_ops=1000)
        _, engine, _ = run_mono(mapping)
        assert engine.trace.total_vector_ops == 3000
        assert engine.trace.lane_ops_by_kind["mono-vdp"] == 3000 * 64

    def test_time_limit_guard(self):
        mapping = synthetic_mapping(n_layers=1, vector_ops=int(1e15))
        env = Environment()
        fabric = MonolithicFabric(env, DEFAULT_PLATFORM)
        engine = InferenceEngine(env, DEFAULT_PLATFORM, fabric,
                                 mac_rate_hz=1e3)
        with pytest.raises(SimulationError):
            engine.run(mapping, time_limit_s=1e-3)


class TestAgainstRealWorkload:
    def test_lenet_on_photonic_fabric_layer_order(self):
        config = DEFAULT_PLATFORM
        workload = extract_workload(zoo.build("LeNet5"))
        env = Environment()
        floorplan = build_floorplan(config)
        fabric = PhotonicInterposerFabric(env, config, floorplan)
        mapping = KernelMatchMapper(config, floorplan).map_workload(workload)
        engine = InferenceEngine(env, config, fabric)
        latency = engine.run(mapping)
        names = [t.name for t in engine.trace.layer_timings]
        assert names == [layer.name for layer in workload]
        assert latency > 0
        # All traffic accounted: weights + inputs + outputs reached fabric.
        total_weights = sum(layer.weight_bits for layer in workload)
        assert fabric.bits_read >= total_weights
