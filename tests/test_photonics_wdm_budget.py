"""WDM grids and link-budget solving."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LinkBudgetError
from repro.photonics.laser import LaserSource
from repro.photonics.link_budget import LinkBudget, LossElement
from repro.photonics.microring import MicroringResonator
from repro.photonics.photodetector import Photodetector
from repro.photonics.wdm import WDMGrid, max_channels_for_crosstalk


class TestWDMGrid:
    def test_single_channel_at_center(self):
        grid = WDMGrid(n_channels=1)
        assert grid.wavelength_m(0) == pytest.approx(
            grid.center_wavelength_m
        )
        assert grid.span_m == 0.0

    def test_uniform_frequency_spacing(self):
        grid = WDMGrid(n_channels=8)
        freqs = [grid.frequency_hz(i) for i in range(8)]
        gaps = [b - a for a, b in zip(freqs, freqs[1:])]
        for gap in gaps:
            assert gap == pytest.approx(grid.channel_spacing_hz)

    def test_64_channels_at_100ghz_span(self):
        grid = WDMGrid(n_channels=64)
        # 63 gaps of 100 GHz around 193.4 THz -> ~50.5 nm span.
        assert grid.span_m == pytest.approx(50.5e-9, rel=0.03)

    def test_adjacent_spacing_near_0p8nm(self):
        grid = WDMGrid(n_channels=2)
        assert grid.adjacent_spacing_m == pytest.approx(0.8e-9, rel=0.03)

    def test_aggregate_bandwidth(self):
        grid = WDMGrid(n_channels=64)
        assert grid.aggregate_bandwidth_bps(12e9) == pytest.approx(768e9)

    def test_aggregate_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(n_channels=4).aggregate_bandwidth_bps(0)

    def test_wavelengths_iterator_descending(self):
        grid = WDMGrid(n_channels=4)
        wavelengths = list(grid.wavelengths())
        assert len(wavelengths) == 4
        # Higher channel -> higher frequency -> shorter wavelength.
        assert wavelengths == sorted(wavelengths, reverse=True)

    def test_invalid_channel_count(self):
        with pytest.raises(ConfigurationError):
            WDMGrid(n_channels=0)

    def test_fsr_aliasing_check(self):
        ring = MicroringResonator()  # FSR ~9.1 nm
        small = WDMGrid(n_channels=8)  # span ~5.6 nm
        large = WDMGrid(n_channels=64)  # span ~50 nm
        assert small.fits_in_fsr(ring)
        assert not large.fits_in_fsr(ring)

    def test_crosstalk_improves_with_spacing(self):
        ring = MicroringResonator()
        tight = WDMGrid(n_channels=4, channel_spacing_hz=50e9)
        loose = WDMGrid(n_channels=4, channel_spacing_hz=200e9)
        assert loose.worst_case_crosstalk_db(ring) < (
            tight.worst_case_crosstalk_db(ring)
        )

    def test_single_channel_has_no_crosstalk(self):
        ring = MicroringResonator()
        assert WDMGrid(n_channels=1).worst_case_crosstalk_db(ring) == float(
            "-inf"
        )

    def test_max_channels_positive_and_bounded(self):
        ring = MicroringResonator()
        n = max_channels_for_crosstalk(ring, crosstalk_floor_db=-20.0)
        assert n >= 1
        # Higher Q (narrower line) supports more channels in the same FSR.
        sharp = MicroringResonator(quality_factor=20000)
        assert max_channels_for_crosstalk(sharp) >= n

    def test_max_channels_rejects_positive_floor(self):
        with pytest.raises(ConfigurationError):
            max_channels_for_crosstalk(MicroringResonator(), 3.0)


class TestLinkBudget:
    def test_total_includes_margin(self):
        budget = LinkBudget().add("a", 1.0).add("b", 2.0)
        assert budget.total_loss_db == pytest.approx(3.0 + budget.margin_db)

    def test_counted_elements(self):
        budget = LinkBudget(margin_db=0.0).add("rings", 0.02, count=64)
        assert budget.total_loss_db == pytest.approx(1.28)

    def test_breakdown_merges_names(self):
        budget = LinkBudget().add("wg", 1.0).add("wg", 0.5)
        assert budget.breakdown()["wg"] == pytest.approx(1.5)

    def test_negative_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            LossElement("gain", -1.0)

    def test_required_power_follows_sensitivity(self):
        pd = Photodetector(sensitivity_dbm=-20.0)
        budget = LinkBudget(margin_db=0.0).add("path", 10.0)
        # -20 dBm + 10 dB = -10 dBm = 100 uW.
        assert budget.required_on_chip_power_w(pd) == pytest.approx(100e-6)

    def test_laser_power_scales_with_wavelengths(self):
        pd = Photodetector()
        laser = LaserSource.off_chip()
        budget = LinkBudget().add("path", 5.0)
        one = budget.required_laser_electrical_power_w(laser, pd, 1)
        many = budget.required_laser_electrical_power_w(laser, pd, 64)
        assert many == pytest.approx(64 * one)

    def test_link_budget_error_when_laser_too_small(self):
        pd = Photodetector()
        laser = LaserSource(max_optical_power_w=1e-6)
        budget = LinkBudget().add("path", 30.0)
        with pytest.raises(LinkBudgetError):
            budget.required_laser_electrical_power_w(laser, pd, 64)

    def test_closes_at_required_power(self):
        pd = Photodetector()
        budget = LinkBudget().add("path", 12.0)
        required = budget.required_on_chip_power_w(pd)
        assert budget.closes(required * 1.01, pd)
        assert not budget.closes(required * 0.5, pd)

    def test_received_power_subtracts_loss(self):
        budget = LinkBudget(margin_db=0.0).add("path", 7.0)
        assert budget.received_power_dbm(1e-3) == pytest.approx(-7.0)

    def test_received_power_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            LinkBudget().received_power_dbm(0.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=10
        )
    )
    def test_transmission_consistent_with_loss(self, losses):
        budget = LinkBudget(margin_db=0.0)
        for index, loss in enumerate(losses):
            budget.add(f"el{index}", loss)
        assert budget.transmission == pytest.approx(
            10 ** (-sum(losses) / 10), rel=1e-9
        )

    def test_wavelength_count_validated(self):
        budget = LinkBudget().add("p", 1.0)
        with pytest.raises(ConfigurationError):
            budget.required_laser_electrical_power_w(
                LaserSource.off_chip(), Photodetector(), 0
            )
