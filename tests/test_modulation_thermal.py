"""PAM-4 modulation trade-off and thermal co-modelling."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DEFAULT_PLATFORM
from repro.errors import ConfigurationError
from repro.interposer.photonic.links import swmr_read_budget
from repro.interposer.topology import build_floorplan
from repro.photonics.link_budget import LinkBudget
from repro.photonics.modulation import (
    OOK,
    PAM4,
    ModulationScheme,
    operating_point,
    pam4_tradeoff,
    required_q_factor,
)
from repro.photonics.thermal import (
    AMBIENT_MARGIN_K,
    ThermalOperatingPoint,
    thermal_operating_point,
    thermal_runaway_limit_w,
)


@pytest.fixture(scope="module")
def read_budget(floorplan):
    return swmr_read_budget(DEFAULT_PLATFORM, floorplan)


class TestModulationSpecs:
    def test_ook_no_penalty(self):
        assert OOK.power_penalty_db == pytest.approx(0.0)
        assert OOK.bits_per_symbol == 1

    def test_pam4_penalty_about_4_8db_optical(self):
        # 1/3 eye opening in the optical power domain -> 10*log10(3).
        assert PAM4.power_penalty_db == pytest.approx(4.77, abs=0.05)
        assert PAM4.bits_per_symbol == 2

    def test_data_rate(self):
        assert PAM4.data_rate_bps(12e9) == pytest.approx(24e9)
        with pytest.raises(ConfigurationError):
            OOK.data_rate_bps(0)


class TestOperatingPoints:
    def test_pam4_doubles_rate(self, read_budget):
        trade = pam4_tradeoff(read_budget)
        assert trade.bandwidth_gain == pytest.approx(2.0)

    def test_pam4_laser_penalty_factor(self, read_budget):
        trade = pam4_tradeoff(read_budget)
        # 4.77 dB -> 3x more laser power.
        assert trade.laser_power_ratio == pytest.approx(3.0, rel=0.05)

    def test_energy_verdict_depends_on_electronics_share(self, read_budget):
        """On low-loss links the laser is cheap: PAM-4's halved
        serialisation energy dominates only if electronics dominate."""
        cheap_link = LinkBudget().add("short", 2.0)
        lossy_link = LinkBudget().add("long", 12.0)
        cheap = pam4_tradeoff(cheap_link)
        lossy = pam4_tradeoff(lossy_link)
        # On the lossy link the 3x laser factor hurts more.
        cheap_delta = (cheap.pam4.energy_per_bit_j
                       - cheap.ook.energy_per_bit_j)
        lossy_delta = (lossy.pam4.energy_per_bit_j
                       - lossy.ook.energy_per_bit_j)
        assert lossy_delta > cheap_delta

    def test_operating_point_scales_with_wavelengths(self, read_budget):
        one = operating_point(OOK, read_budget, 12e9, n_wavelengths=1)
        many = operating_point(OOK, read_budget, 12e9, n_wavelengths=64)
        assert many.laser_power_w == pytest.approx(
            64 * one.laser_power_w
        )
        assert many.data_rate_bps == pytest.approx(64 * one.data_rate_bps)

    def test_budget_not_mutated(self, read_budget):
        before = read_budget.total_loss_db
        pam4_tradeoff(read_budget)
        assert read_budget.total_loss_db == before


class TestRequiredQ:
    def test_known_points(self):
        # BER 1e-9 -> Q ~ 6.0; BER 1e-12 -> Q ~ 7.03.
        assert required_q_factor(1e-9) == pytest.approx(6.0, abs=0.05)
        assert required_q_factor(1e-12) == pytest.approx(7.03, abs=0.05)

    def test_inverse_of_erfc_formula(self):
        q = required_q_factor(1e-6)
        assert 0.5 * math.erfc(q / math.sqrt(2)) == pytest.approx(
            1e-6, rel=0.02
        )

    def test_invalid_ber(self):
        with pytest.raises(ConfigurationError):
            required_q_factor(0.0)
        with pytest.raises(ConfigurationError):
            required_q_factor(0.7)


class TestThermal:
    def test_cool_chiplet_needs_no_trimming(self):
        point = thermal_operating_point(base_power_w=5.0, n_rings=500)
        # 5 W x 0.45 K/W = 2.25 K < 10 K margin.
        assert point.thermal_trimming_power_w == 0.0
        assert point.resonance_drift_nm == 0.0

    def test_hot_chiplet_pays_trimming(self):
        point = thermal_operating_point(base_power_w=40.0, n_rings=2000)
        assert point.temperature_rise_k > AMBIENT_MARGIN_K
        assert point.thermal_trimming_power_w > 0.0
        assert point.total_power_w > point.base_power_w

    def test_fixed_point_self_consistent(self):
        point = thermal_operating_point(base_power_w=40.0, n_rings=2000)
        assert point.temperature_rise_k == pytest.approx(
            point.total_power_w * 0.45, rel=1e-3
        )

    def test_more_rings_more_trimming(self):
        small = thermal_operating_point(base_power_w=40.0, n_rings=500)
        large = thermal_operating_point(base_power_w=40.0, n_rings=4000)
        assert large.thermal_trimming_power_w > (
            small.thermal_trimming_power_w
        )

    def test_converges_quickly(self):
        point = thermal_operating_point(base_power_w=30.0, n_rings=3000)
        assert point.iterations < 30

    def test_runaway_limit_positive_for_sane_designs(self):
        limit = thermal_runaway_limit_w(n_rings=2000)
        assert limit > 0
        # Larger banks lower the runaway ceiling.
        assert thermal_runaway_limit_w(n_rings=8000) < limit

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            thermal_operating_point(-1.0, 100)
        with pytest.raises(ConfigurationError):
            thermal_operating_point(1.0, -5)
        with pytest.raises(ConfigurationError):
            thermal_operating_point(1.0, 5, thermal_resistance_k_per_w=0.0)

    @given(st.floats(min_value=0.0, max_value=60.0))
    def test_total_power_monotone_in_base(self, base_power):
        point = thermal_operating_point(base_power, n_rings=1000)
        assert point.total_power_w >= base_power
        assert isinstance(point, ThermalOperatingPoint)
