"""Request-serving layer: scheduler, metrics, residency, load curves."""

import json

import pytest

from repro.config import DEFAULT_PLATFORM
from repro.core.accelerator import CrossLight25DSiPh, MonolithicCrossLight
from repro.core.engine import ComputeOccupancy, ExecutionTrace
from repro.dnn import zoo
from repro.dnn.workload import extract_workload
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.export import (
    serving_result_to_dict,
    serving_results_to_csv,
    serving_results_to_json,
)
from repro.experiments.serving_study import (
    ServingCell,
    latency_throughput_curve,
    render_serving_study,
    serving_study,
    simulate_serving_cell,
)
from repro.mapping.residency import WeightResidency
from repro.serving.metrics import (
    LatencyProfile,
    RequestRecord,
    aggregate,
    percentile,
)
from repro.serving.scheduler import BatchPolicy, RequestScheduler
from repro.sim.core import Environment
from repro.sim.traffic import (
    ClosedLoopClients,
    MMPPArrivals,
    PoissonArrivals,
)

WORKLOAD = extract_workload(zoo.build("LeNet5"))


def make_scheduler(platform=None, policy=None, **kwargs):
    platform = platform or MonolithicCrossLight()
    env = Environment()
    sim = platform.build_simulation(env)
    scheduler = RequestScheduler(
        sim, sim.map_workload(WORKLOAD), "LeNet5",
        policy=policy or BatchPolicy.fifo(), **kwargs
    )
    return scheduler, sim


class TestBatchPolicy:
    def test_fifo_label_and_defaults(self):
        policy = BatchPolicy.fifo()
        assert policy.label == "fifo"
        assert policy.max_batch == 1

    def test_max_batch_label(self):
        policy = BatchPolicy.max_batch_with_timeout(max_batch=8)
        assert policy.label == "max-batch(8)"

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="lifo")
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="max-batch", max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="fifo", max_batch=2)
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="max-batch", max_batch=4, batch_timeout_s=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(name="fifo", max_inflight=0)


class TestPercentiles:
    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50.0) == 50.0
        assert percentile(samples, 99.0) == 99.0
        assert percentile(samples, 100.0) == 100.0

    def test_empty_and_bounds(self):
        assert percentile([], 99.0) == 0.0
        with pytest.raises(SimulationError):
            percentile([1.0], 101.0)

    def test_profile_from_samples(self):
        profile = LatencyProfile.from_samples([3.0, 1.0, 2.0])
        assert profile.count == 3
        assert profile.mean_s == pytest.approx(2.0)
        assert profile.p50_s == 2.0
        assert profile.max_s == 3.0

    def test_single_sample_collapses_every_percentile(self):
        # Nearest-rank on one sample: every quantile is that sample.
        for q in (0.0, 1.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile([7e-6], q) == 7e-6
        profile = LatencyProfile.from_samples([7e-6])
        assert profile.count == 1
        assert (
            profile.mean_s == profile.p50_s == profile.p95_s
            == profile.p99_s == profile.max_s == 7e-6
        )


def _record(request_id, model="LeNet5", arrival_s=0.0, finish_s=1e-6,
            deadline_s=None, dropped=False):
    return RequestRecord(
        request_id=request_id, model=model, arrival_s=arrival_s,
        dispatch_s=arrival_s if dropped else finish_s / 2,
        finish_s=finish_s, batch_size=0 if dropped else 1,
        deadline_s=deadline_s, dropped=dropped,
    )


class TestMetricsEdgeCases:
    def test_windowed_stats_with_empty_window(self):
        from repro.serving.metrics import windowed_stats

        # Both requests arrive before the fault window: the during and
        # after windows exist but hold zero completed requests.
        records = [
            _record(0, arrival_s=10e-6, finish_s=20e-6),
            _record(1, arrival_s=20e-6, finish_s=40e-6),
        ]
        windows = windowed_stats(records, 100e-6, 200e-6, 300e-6)
        assert [window.label for window in windows] == [
            "before", "during", "after",
        ]
        before, during, after = windows
        assert before.completed == 2
        for empty in (during, after):
            assert empty.completed == empty.shed == 0
            assert empty.submitted == 0
            assert empty.goodput_rps == 0.0
            assert empty.slo_attainment == 1.0
            assert empty.latency.count == 0
            assert empty.latency.p99_s == 0.0

    def test_windowed_stats_with_no_records_at_all(self):
        from repro.serving.metrics import windowed_stats

        windows = windowed_stats([], 1e-6, 2e-6, 3e-6)
        assert len(windows) == 3
        assert all(window.completed == 0 for window in windows)

    def test_windowed_stats_single_request_window(self):
        from repro.serving.metrics import windowed_stats

        records = [_record(0, arrival_s=150e-6, finish_s=160e-6)]
        windows = windowed_stats(records, 100e-6, 200e-6, 300e-6)
        during = next(w for w in windows if w.label == "during")
        assert during.completed == 1
        assert during.latency.p50_s == during.latency.p99_s == (
            pytest.approx(10e-6)
        )

    def test_windowed_stats_rejects_disordered_window(self):
        from repro.serving.metrics import windowed_stats

        with pytest.raises(SimulationError, match="ordered"):
            windowed_stats([], 2e-6, 1e-6, 3e-6)

    def test_per_model_stats_with_only_shed_requests(self):
        from repro.serving.metrics import per_model_stats

        records = [
            _record(0, arrival_s=0.0, finish_s=1e-6,
                    deadline_s=0.5e-6, dropped=True),
            _record(1, arrival_s=1e-6, finish_s=2e-6,
                    deadline_s=1.5e-6, dropped=True),
        ]
        (stats,) = per_model_stats(records, elapsed_s=2e-6)
        assert stats.completed == 0
        assert stats.shed == 2
        assert stats.slo_violations == 2
        assert stats.slo_attainment == 0.0
        assert stats.goodput_rps == 0.0
        assert stats.latency.count == 0

    def test_per_model_stats_single_request_and_empty(self):
        from repro.serving.metrics import per_model_stats

        assert per_model_stats([], elapsed_s=1e-3) == ()
        (stats,) = per_model_stats(
            [_record(0, arrival_s=0.0, finish_s=3e-6)], elapsed_s=1e-3
        )
        assert stats.completed == 1
        assert stats.slo_attainment == 1.0
        assert stats.latency.p50_s == stats.latency.p99_s == (
            pytest.approx(3e-6)
        )


class TestSchedulerSemantics:
    def test_every_request_completes(self):
        scheduler, _ = make_scheduler()
        scheduler.serve(PoissonArrivals(rate_rps=100e3, seed=11), 1e-3)
        assert scheduler.requests_injected > 50
        assert scheduler.requests_completed == scheduler.requests_injected
        assert len(scheduler.records) == scheduler.requests_completed
        assert scheduler.queue_length == 0

    def test_records_are_causal(self):
        scheduler, _ = make_scheduler()
        scheduler.serve(PoissonArrivals(rate_rps=200e3, seed=3), 0.5e-3)
        for record in scheduler.records:
            assert record.arrival_s <= record.dispatch_s <= record.finish_s
            assert record.latency_s >= 0.0

    def test_seeded_rerun_is_bit_identical(self):
        first, _ = make_scheduler()
        first.serve(PoissonArrivals(rate_rps=150e3, seed=5), 1e-3)
        second, _ = make_scheduler()
        second.serve(PoissonArrivals(rate_rps=150e3, seed=5), 1e-3)
        assert first.records == second.records

    def test_single_request_matches_one_shot_engine(self):
        """The serving path is the one-shot path for one request."""
        platform = MonolithicCrossLight()
        one_shot = platform.run_workload(WORKLOAD).latency_s
        scheduler, _ = make_scheduler(platform)
        scheduler.serve(PoissonArrivals(rate_rps=20e3, seed=1), 60e-6)
        assert scheduler.requests_injected == 1
        record = scheduler.records[0]
        assert record.latency_s == pytest.approx(one_shot, rel=1e-9)

    def test_max_batch_policy_batches_under_load(self):
        policy = BatchPolicy.max_batch_with_timeout(
            max_batch=8, batch_timeout_s=20e-6
        )
        scheduler, _ = make_scheduler(policy=policy)
        scheduler.serve(PoissonArrivals(rate_rps=400e3, seed=7), 1e-3)
        mean_batch = aggregate(scheduler.records)[2]
        assert mean_batch > 1.5
        assert max(r.batch_size for r in scheduler.records) <= 8
        assert scheduler.batches_dispatched < scheduler.requests_completed

    def test_batch_timeout_bounds_queue_delay(self):
        """A lone request must not wait beyond the gather timeout."""
        timeout_s = 10e-6
        policy = BatchPolicy.max_batch_with_timeout(
            max_batch=64, batch_timeout_s=timeout_s
        )
        scheduler, _ = make_scheduler(policy=policy)
        scheduler.serve(PoissonArrivals(rate_rps=20e3, seed=1), 0.2e-3)
        assert scheduler.records
        for record in scheduler.records:
            assert record.queue_delay_s <= timeout_s * (
                record.batch_size + 1
            )

    def test_admission_caps_inflight(self):
        scheduler, sim = make_scheduler(
            policy=BatchPolicy.fifo(max_inflight=1)
        )
        scheduler.serve(PoissonArrivals(rate_rps=600e3, seed=9), 0.5e-3)
        # With a single execution slot the time-averaged concurrency
        # can never exceed one request... per dispatched batch of 1.
        assert sim.fabric.inflight_requests.value == 0.0
        assert sim.fabric.mean_inflight_requests <= 1.0 + 1e-9

    def test_closed_loop_self_throttles(self):
        clients = ClosedLoopClients(n_clients=3, think_time_s=5e-6, seed=2)
        scheduler, sim = make_scheduler()
        scheduler.serve(clients, 1e-3)
        assert scheduler.requests_completed == scheduler.requests_injected
        assert scheduler.requests_completed > 20
        # Never more requests in flight than clients.
        assert sim.fabric.mean_inflight_requests <= 3.0 + 1e-9

    def test_rejects_bad_duration_and_arrivals(self):
        scheduler, _ = make_scheduler()
        with pytest.raises(ConfigurationError):
            scheduler.serve(PoissonArrivals(rate_rps=1e5), 0.0)
        with pytest.raises(ConfigurationError):
            scheduler.serve(object(), 1e-3)

    def test_serve_is_single_shot(self):
        scheduler, _ = make_scheduler()
        scheduler.serve(PoissonArrivals(rate_rps=100e3, seed=1), 0.2e-3)
        with pytest.raises(SimulationError):
            scheduler.serve(PoissonArrivals(rate_rps=100e3, seed=1),
                            0.2e-3)


class TestComputeOccupancy:
    def test_concurrent_requests_queue_on_chiplets(self):
        """p99 latency is monotonically non-decreasing in arrival rate."""
        p99s = []
        for rate in (100e3, 700e3):
            scheduler, _ = make_scheduler()
            scheduler.serve(PoissonArrivals(rate_rps=rate, seed=11), 2e-3)
            p99s.append(aggregate(scheduler.records)[0].p99_s)
        assert p99s[0] <= p99s[1]
        assert p99s[1] > 1.5 * p99s[0]  # visibly queueing, not noise

    def test_utilization_grows_with_load(self):
        utils = []
        for rate in (50e3, 700e3):
            scheduler, _ = make_scheduler()
            scheduler.serve(PoissonArrivals(rate_rps=rate, seed=4), 1e-3)
            utils.append(scheduler.compute.mean_utilization())
        assert 0.0 < utils[0] < utils[1] <= 1.0

    def test_unused_occupancy_reports_zero(self):
        occupancy = ComputeOccupancy(Environment())
        assert occupancy.mean_utilization() == 0.0
        assert occupancy.utilization("nowhere") == 0.0


class TestWeightResidency:
    def test_fetch_once_then_hit(self):
        platform = MonolithicCrossLight()
        env = Environment()
        sim = platform.build_simulation(env)
        residency = WeightResidency(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            residency=residency,
        )
        scheduler.serve(PoissonArrivals(rate_rps=300e3, seed=6), 0.5e-3)
        assert residency.fetches_issued == len(WORKLOAD)
        assert residency.fetch_hits > 0
        assert residency.resident_bits == float(
            WORKLOAD.total_weight_bits
        )

    def test_warm_requests_are_faster_than_cold(self):
        scheduler, _ = make_scheduler()
        scheduler.serve(PoissonArrivals(rate_rps=50e3, seed=11), 2e-3)
        cold = scheduler.records[0].latency_s
        warm = aggregate(scheduler.records[1:])[0].p50_s
        assert warm < cold

    def test_capacity_evicts_lru_model(self):
        env = Environment()
        residency = WeightResidency(env, capacity_bits=100.0)
        platform = MonolithicCrossLight()
        sim = platform.build_simulation(env)
        mapping = sim.map_workload(WORKLOAD)
        layer = mapping.layers[0]
        residency.acquire("model-a", layer, sim.fabric)
        assert residency.resident_bits_for("model-a") > 100.0
        residency.acquire("model-b", layer, sim.fabric)
        assert residency.resident_bits_for("model-a") == 0.0
        assert residency.evictions == 1

    def test_explicit_evict_forces_refetch(self):
        env = Environment()
        residency = WeightResidency(env)
        platform = MonolithicCrossLight()
        sim = platform.build_simulation(env)
        layer = sim.map_workload(WORKLOAD).layers[0]
        residency.acquire("m", layer, sim.fabric)
        residency.evict("m")
        residency.acquire("m", layer, sim.fabric)
        assert residency.fetches_issued == 2
        assert residency.fetch_hits == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            WeightResidency(Environment(), capacity_bits=0.0)


class TestFabricLoadSignal:
    def test_unbalanced_finish_raises(self):
        env = Environment()
        fabric = MonolithicCrossLight().build_simulation(env).fabric
        with pytest.raises(SimulationError):
            fabric.request_finished()


class TestControllersUnderLoad:
    """Reconfiguration controllers react to multi-request demand."""

    def _serve(self, controller, rate_rps, duration_s=0.4e-3):
        platform = CrossLight25DSiPh(controller=controller)
        env = Environment()
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(WORKLOAD), "LeNet5",
            policy=BatchPolicy.fifo(max_inflight=8),
        )
        scheduler.serve(
            PoissonArrivals(rate_rps=rate_rps, seed=13), duration_s
        )
        return sim, scheduler

    def test_resipi_sees_overlapping_demand(self):
        """The epoch monitor aggregates traffic across in-flight
        requests — epochs during the serving window carry read traffic
        for multiple chiplets at once."""
        sim, scheduler = self._serve("resipi", 900e3)
        assert sim.fabric.mean_inflight_requests > 1.0
        busy_epochs = [
            epoch for epoch in sim.fabric.monitor.history
            if sum(1 for key in epoch if key.startswith("read:")) >= 2
        ]
        assert busy_epochs

    def test_prowaves_scales_wavelengths_with_load(self):
        """Time-varying demand moves the wavelength fraction: busy
        epochs ramp it above the idle floor, and the drain tail lets it
        fall back down."""
        sim, _ = self._serve("prowaves", 500e3)
        log = sim.controller.decision_log
        floor = 1.0 / DEFAULT_PLATFORM.n_wavelengths
        assert max(log) > floor
        assert log[-1] < max(log)


class TestServingStudy:
    def test_p99_monotone_and_curve_export(self, tmp_path):
        """Acceptance: Poisson at two rates -> non-decreasing p99, and
        the latency-throughput curve survives the JSON export layer."""
        results = serving_study(
            model_name="LeNet5", platforms=("CrossLight",),
            rates_rps=(100e3, 700e3), duration_s=2e-3,
            cache_dir=tmp_path / "cache",
        )
        curve = latency_throughput_curve(results)
        assert len(curve) == 2
        (rate_lo, good_lo, p99_lo), (rate_hi, good_hi, p99_hi) = curve
        assert rate_lo < rate_hi
        assert p99_lo <= p99_hi
        assert good_hi > good_lo

        parsed = json.loads(serving_results_to_json(results))
        assert parsed[0]["latency_s"]["p99"] == pytest.approx(p99_lo)
        assert "goodput_rps" in parsed[0]

    def test_study_is_cacheable_and_deterministic(self, tmp_path):
        cache_dir = tmp_path / "cache"
        kwargs = dict(
            model_name="LeNet5", platforms=("CrossLight",),
            rates_rps=(150e3,), duration_s=0.5e-3, cache_dir=cache_dir,
        )
        cold = serving_study(**kwargs)
        warm = serving_study(**kwargs)
        assert cold == warm
        fresh = serving_study(
            model_name="LeNet5", platforms=("CrossLight",),
            rates_rps=(150e3,), duration_s=0.5e-3,
        )
        assert fresh == cold

    def test_cells_do_not_collide_across_parameters(self):
        base = ServingCell(
            platform="CrossLight", model="LeNet5", controller="resipi",
            policy=BatchPolicy.fifo(), arrival_kind="poisson",
            rate_rps=1e5, duration_s=1e-3, seed=7,
            config=DEFAULT_PLATFORM,
        )
        variants = [
            ServingCell(**{**base.__dict__, "rate_rps": 2e5}),
            ServingCell(**{**base.__dict__, "arrival_kind": "mmpp"}),
            ServingCell(**{**base.__dict__, "seed": 8}),
            ServingCell(**{**base.__dict__,
                           "policy": BatchPolicy.max_batch_with_timeout()}),
        ]
        keys = {base.key()} | {cell.key() for cell in variants}
        assert len(keys) == 5

    def test_mmpp_study_runs(self):
        cell = ServingCell(
            platform="CrossLight", model="LeNet5", controller="resipi",
            policy=BatchPolicy.max_batch_with_timeout(max_batch=4),
            arrival_kind="mmpp", rate_rps=2e5, duration_s=0.5e-3,
            seed=3, config=DEFAULT_PLATFORM,
        )
        result = simulate_serving_cell(cell)
        assert result.requests_completed == result.requests_injected
        assert result.arrival_kind == "mmpp"
        assert result.total_energy_j > 0.0

    def test_render_and_csv(self):
        results = serving_study(
            model_name="LeNet5", platforms=("CrossLight",),
            rates_rps=(100e3,), duration_s=0.3e-3,
        )
        text = render_serving_study(results)
        assert "goodput/s" in text
        assert "CrossLight" in text
        csv_text = serving_results_to_csv(results)
        assert "p99_s" in csv_text.splitlines()[0]
        record = serving_result_to_dict(results[0])
        assert record["platform"] == "CrossLight"
        assert record["channel_utilization"]
