"""Tiling of layer dot products onto photonic MAC vector units.

A MAC unit of vector length ``v`` consumes dot products in chunks of at
most ``v`` lanes per pass.  Two dataflows are available (Section V: the
MAC units buffer parameters and tune MRs per pass with fast EO tuning):

* **spatial**: the unit holds one ``K x K`` kernel slice; a conv dot of
  length ``K*K*C_in`` takes ``C_in * ceil(K*K / v)`` passes.  Perfectly
  efficient when the kernel matches the unit (the heterogeneity argument
  of the paper).
* **channel-major**: the dot is streamed as flat chunks of ``v`` lanes:
  ``ceil(dot_length / v)`` passes.  This is how dense layers, 1x1
  convolutions and mismatched kernels run.

The tiler picks whichever needs fewer passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dnn.workload import LayerWorkload
from ..errors import MappingError


@dataclass(frozen=True)
class TilingResult:
    """Vector-operation count for one layer on one unit geometry."""

    vector_ops: int
    mode: str
    efficiency: float

    def __post_init__(self) -> None:
        if self.vector_ops < 0:
            raise MappingError("vector op count cannot be negative")


def tile_layer(layer: LayerWorkload, vector_length: int,
               unit_kernel_size: int = 0,
               spatial_only: bool = False) -> TilingResult:
    """Vector ops to run ``layer`` on units of ``vector_length`` lanes.

    With ``spatial_only`` (the strict heterogeneous dataflow), conv
    layers (K >= 2) may only use the window-based spatial mode — the
    assumption that a k x k conv unit's line buffers cannot stage
    arbitrary channel-major chunks.  The default allows both, because
    CrossLight's fast EO weight tuning makes a conv unit a generic
    chunked vector engine.
    """
    if vector_length < 1:
        raise MappingError(f"vector length must be >= 1, got {vector_length}")
    if layer.macs == 0:
        return TilingResult(vector_ops=0, mode="empty", efficiency=1.0)

    # Channel-major: flat chunking of the whole dot.
    channel_ops = layer.n_dots * math.ceil(layer.dot_length / vector_length)

    if layer.kernel_size >= 2:
        # Spatial: per-channel kernel-window passes.
        window = layer.kernel_size * layer.kernel_size
        channels = layer.dot_length // window
        spatial_ops = layer.n_dots * channels * math.ceil(
            window / vector_length
        )
        if spatial_only or spatial_ops <= channel_ops:
            efficiency = layer.macs / (spatial_ops * vector_length)
            return TilingResult(spatial_ops, "spatial", efficiency)

    efficiency = layer.macs / (channel_ops * vector_length)
    return TilingResult(channel_ops, "channel-major", efficiency)
