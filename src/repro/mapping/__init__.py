"""Layer-to-chiplet mapping, MAC-unit tiling, and weight residency."""

from .mapper import Allocation, KernelMatchMapper, LayerMapping, ModelMapping
from .residency import WeightResidency
from .tiling import TilingResult, tile_layer

__all__ = [
    "Allocation",
    "KernelMatchMapper",
    "LayerMapping",
    "ModelMapping",
    "TilingResult",
    "WeightResidency",
    "tile_layer",
]
