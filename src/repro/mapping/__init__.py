"""Layer-to-chiplet mapping and MAC-unit tiling."""

from .mapper import Allocation, KernelMatchMapper, LayerMapping, ModelMapping
from .tiling import TilingResult, tile_layer

__all__ = [
    "Allocation",
    "KernelMatchMapper",
    "LayerMapping",
    "ModelMapping",
    "TilingResult",
    "tile_layer",
]
