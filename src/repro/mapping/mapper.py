"""Layer-to-chiplet mapping policies.

The paper attributes part of the 2.5D platform's win to "the ability to
select appropriate chiplets to map layers of each DNN model".  The
default policy here implements that: for each layer it ranks MAC-unit
kinds by packing efficiency (kernel-matching kinds rank highest), takes
every kind within an efficiency threshold of the best, and splits the
layer's work across those chiplets proportionally to their effective
throughput.  Small layers are deliberately kept on few chiplets to avoid
paying broadcast and gateway overheads for no parallelism (the LeNet5
effect in Fig. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MacGroupConfig, PlatformConfig
from ..dnn.workload import InferenceWorkload, LayerWorkload
from ..errors import MappingError
from ..interposer.topology import Floorplan
from .tiling import TilingResult, tile_layer


@dataclass(frozen=True)
class Allocation:
    """One chiplet's share of a layer."""

    chiplet_id: str
    kind: str
    n_macs: int
    vector_length: int
    vector_ops: int
    weight_bits: int
    output_bits: int

    @property
    def lane_ops(self) -> int:
        """Lane-level operations (vector ops x lanes), for energy."""
        return self.vector_ops * self.vector_length


@dataclass(frozen=True)
class LayerMapping:
    """All allocations of one layer plus its shared input traffic."""

    layer: LayerWorkload
    allocations: tuple[Allocation, ...]
    tiling: TilingResult

    @property
    def chiplet_ids(self) -> tuple[str, ...]:
        return tuple(alloc.chiplet_id for alloc in self.allocations)

    @property
    def replication(self) -> int:
        """How many chiplets need a copy of the input activations."""
        return len(self.allocations)

    @property
    def total_vector_ops(self) -> int:
        return sum(alloc.vector_ops for alloc in self.allocations)


@dataclass(frozen=True)
class ModelMapping:
    """Mapping of an entire inference workload."""

    workload: InferenceWorkload
    layers: tuple[LayerMapping, ...]

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class KernelMatchMapper:
    """Efficiency-ranked, threshold-gated heterogeneous mapper."""

    def __init__(
        self,
        config: PlatformConfig,
        floorplan: Floorplan,
        efficiency_threshold: float = 0.75,
        min_vector_ops_per_chiplet: int = 4096,
        strict_kernel_match: bool = False,
    ):
        """``strict_kernel_match`` restricts conv layers to spatial
        dataflow on conv units (no channel-major spillover, no conv work
        on dense units) — the pure form of the paper's heterogeneity
        argument.  The default allows spillover; see DESIGN.md."""
        if not 0.0 < efficiency_threshold <= 1.0:
            raise MappingError(
                "efficiency threshold must be in (0, 1], got "
                f"{efficiency_threshold}"
            )
        self.config = config
        self.floorplan = floorplan
        self.efficiency_threshold = efficiency_threshold
        self.min_vector_ops_per_chiplet = min_vector_ops_per_chiplet
        self.strict_kernel_match = strict_kernel_match
        self._chiplets_by_kind: dict[str, list[str]] = {}
        for site in floorplan.compute_sites:
            self._chiplets_by_kind.setdefault(site.kind, []).append(
                site.chiplet_id
            )

    # -- per-layer mapping ---------------------------------------------------------

    def _rank_groups(
        self, layer: LayerWorkload
    ) -> list[tuple[MacGroupConfig, TilingResult]]:
        """Eligible groups sorted by packing efficiency, best first."""
        ranked = []
        for group in self.config.mac_groups:
            if self.strict_kernel_match and layer.kernel_size >= 2:
                # Conv work runs on conv units only, window dataflow only.
                if group.kernel_size == 0:
                    continue
                tiling = tile_layer(
                    layer, group.vector_length, group.kernel_size,
                    spatial_only=True,
                )
            else:
                tiling = tile_layer(
                    layer, group.vector_length, group.kernel_size
                )
            ranked.append((group, tiling))
        if not ranked:
            raise MappingError(
                f"no MAC group is eligible for layer {layer.name!r}"
            )
        ranked.sort(key=lambda pair: pair[1].efficiency, reverse=True)
        return ranked

    def map_layer(self, layer: LayerWorkload) -> LayerMapping:
        """Choose chiplets and split the layer's work among them."""
        ranked = self._rank_groups(layer)
        best_efficiency = ranked[0][1].efficiency
        chosen = [
            (group, tiling)
            for group, tiling in ranked
            if tiling.efficiency >= self.efficiency_threshold * best_efficiency
        ]

        # Candidate chiplets with their per-chiplet effective throughput.
        candidates: list[tuple[str, MacGroupConfig, TilingResult, float]] = []
        for group, tiling in chosen:
            for chiplet_id in self._chiplets_by_kind[group.kind]:
                throughput = (
                    group.macs_per_chiplet
                    * group.vector_length
                    * tiling.efficiency
                )
                candidates.append((chiplet_id, group, tiling, throughput))
        if not candidates:
            raise MappingError(f"no chiplet can serve layer {layer.name!r}")
        candidates.sort(key=lambda item: item[3], reverse=True)

        # Use only as many chiplets as the layer's size justifies.
        reference_tiling = chosen[0][1]
        wanted = max(
            1,
            math.ceil(
                reference_tiling.vector_ops / self.min_vector_ops_per_chiplet
            ),
        )
        selected = candidates[: min(wanted, len(candidates))]

        total_throughput = sum(item[3] for item in selected)
        allocations: list[Allocation] = []
        remaining_ops: dict[str, int] = {}
        for chiplet_id, group, tiling, throughput in selected:
            share = throughput / total_throughput
            # Each chiplet runs its share of the layer's dots with its own
            # group's tiling (vector op count differs per group).
            ops = math.ceil(tiling.vector_ops * share)
            remaining_ops[chiplet_id] = ops
            allocations.append(
                Allocation(
                    chiplet_id=chiplet_id,
                    kind=group.kind,
                    n_macs=group.macs_per_chiplet,
                    vector_length=group.vector_length,
                    vector_ops=ops,
                    weight_bits=int(round(layer.weight_bits * share)),
                    output_bits=int(round(layer.output_bits * share)),
                )
            )
        return LayerMapping(
            layer=layer,
            allocations=tuple(allocations),
            tiling=reference_tiling,
        )

    def map_workload(self, workload: InferenceWorkload) -> ModelMapping:
        """Map every compute layer of a workload."""
        return ModelMapping(
            workload=workload,
            layers=tuple(self.map_layer(layer) for layer in workload),
        )
