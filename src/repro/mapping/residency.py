"""Resident-weight accounting for the request-serving layer.

When a platform serves a stream of requests, each model's weights are
fetched onto the compute chiplets **once** and stay resident; only
activations stream per request.  :class:`WeightResidency` implements
that contract on top of any fabric:

* the first request needing a layer issues the weight transfers and
  registers the completion barrier,
* every overlapping or later request for the same ``(model, layer)``
  waits on (or skips past) that same barrier instead of re-streaming,
* resident bits are accounted per model against an optional capacity
  budget; when the budget would overflow, the least-recently-used
  *other* model is evicted (its next request re-fetches).

The store is deliberately simulation-native: eviction only forgets the
memoised barrier, so requests already waiting on an in-flight fetch are
unaffected.

:class:`KVCacheResidency` is the second residency class, for
autoregressive serving: each admitted sequence reserves the KV-cache
bits its full generation will need from the **same** capacity pool the
weights use.  KV reservations evict weights under pressure (weights can
always be re-fetched; a sequence's KV cannot), are refused when they
do not fit next to other live sequences, and are released when the
sequence completes.
"""

from __future__ import annotations

from ..errors import AdmissionError, ConfigurationError
from ..interposer.base import InterposerFabric
from ..sim.core import Environment, Event

from .mapper import LayerMapping


class WeightResidency:
    """Per-model resident-weight store shared by in-flight requests."""

    def __init__(self, env: Environment,
                 capacity_bits: float | None = None):
        if capacity_bits is not None and capacity_bits <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bits}"
            )
        self.env = env
        self.capacity_bits = capacity_bits
        self._barriers: dict[tuple[str, int], Event] = {}
        self._bits: dict[str, float] = {}
        self._lru: list[str] = []  # least-recently-used model first
        self.fetches_issued = 0
        self.fetch_hits = 0
        self.evictions = 0
        self.kv: "KVCacheResidency | None" = None
        # Telemetry hook (attached post-construction by the study
        # layer): fetch/evict/refusal decisions land as instants on a
        # shared ``residency`` track; ``None`` costs one comparison.
        self.obs_trace = None

    # -- accounting ---------------------------------------------------------------

    @property
    def resident_bits(self) -> float:
        """All weight bits currently resident, across models."""
        return sum(self._bits.values())

    def resident_bits_for(self, model_name: str) -> float:
        """Weight bits resident for one model."""
        return self._bits.get(model_name, 0.0)

    def _touch(self, model_name: str) -> None:
        if model_name in self._lru:
            self._lru.remove(model_name)
        self._lru.append(model_name)

    def evict(self, model_name: str) -> float:
        """Forget a model's residency; returns the bits freed.

        In-flight fetches keep completing (their barriers already fired
        or will fire); only the memoisation is dropped, so the next
        request for the model re-fetches.
        """
        freed = self._bits.pop(model_name, 0.0)
        if freed or any(key[0] == model_name for key in self._barriers):
            self.evictions += 1
            if self.obs_trace is not None:
                self.obs_trace.instant(
                    "residency", "weight-evict",
                    args={"model": model_name, "bits": freed},
                )
        self._barriers = {
            key: barrier for key, barrier in self._barriers.items()
            if key[0] != model_name
        }
        if model_name in self._lru:
            self._lru.remove(model_name)
        return freed

    def _occupied_bits(self) -> float:
        """Weight bits plus any live KV-cache reservations."""
        kv_bits = self.kv.reserved_bits if self.kv is not None else 0.0
        return self.resident_bits + kv_bits

    def _make_room(self, model_name: str, wanted_bits: float) -> None:
        """Evict LRU models (never the requester) until the new layer fits."""
        if self.capacity_bits is None:
            return
        while (
            self._occupied_bits() + wanted_bits > self.capacity_bits
            and any(name != model_name for name in self._lru)
        ):
            victim = next(
                name for name in self._lru if name != model_name
            )
            self.evict(victim)

    # -- the fetch-once contract ---------------------------------------------------

    def acquire(self, model_name: str, layer_mapping: LayerMapping,
                fabric: InterposerFabric) -> Event:
        """Barrier that fires when the layer's weights are resident.

        The first caller per ``(model, layer)`` issues the transfers;
        everyone else shares the same barrier (a hit on an already-fired
        barrier resumes immediately at the current time).
        """
        key = (model_name, layer_mapping.layer.index)
        barrier = self._barriers.get(key)
        if barrier is not None:
            self.fetch_hits += 1
            self._touch(model_name)
            return barrier

        layer_bits = float(sum(
            alloc.weight_bits for alloc in layer_mapping.allocations
        ))
        self._make_room(model_name, layer_bits)
        transfers = [
            fabric.read_weights(alloc.chiplet_id, alloc.weight_bits)
            for alloc in layer_mapping.allocations
            if alloc.weight_bits > 0
        ]
        barrier = fabric.env.all_of(transfers)
        self._barriers[key] = barrier
        self._bits[model_name] = (
            self._bits.get(model_name, 0.0) + layer_bits
        )
        self._touch(model_name)
        self.fetches_issued += 1
        if self.obs_trace is not None:
            self.obs_trace.instant(
                "residency", "weight-fetch",
                args={"model": model_name,
                      "layer": layer_mapping.layer.index,
                      "bits": layer_bits},
            )
        return barrier


class KVCacheResidency:
    """Per-sequence KV-cache reservations against the weight store's pool.

    An admitted sequence reserves the bits its whole generation will
    need (prompt + output tokens), which guarantees forward progress:
    once admitted, a sequence can always append its next token, so
    decode never deadlocks mid-generation.  The actually-written bits
    grow one token at a time (:meth:`grow`) for occupancy accounting.

    Admission evicts resident weights LRU-first to make room — weights
    re-fetch on the next request, cached KV state cannot — and is
    refused (returns ``False``) when live reservations still leave no
    room.  A sequence whose reservation exceeds the *total* capacity
    can never be admitted and raises :class:`AdmissionError` instead.
    """

    def __init__(self, weights: WeightResidency):
        if weights.kv is not None:
            raise ConfigurationError(
                "weight residency already has a KV-cache store attached"
            )
        self.weights = weights
        self.env = weights.env
        weights.kv = self
        self._reserved: dict[int, float] = {}
        self._written: dict[int, float] = {}
        self.admissions = 0
        self.refusals = 0
        self.releases = 0
        self.pressure_evictions = 0
        self.peak_reserved_bits = 0.0
        self._release_waiters: list[Event] = []

    # -- accounting ---------------------------------------------------------------

    @property
    def capacity_bits(self) -> float | None:
        return self.weights.capacity_bits

    @property
    def reserved_bits(self) -> float:
        """Bits reserved by live sequences (the admission commitment)."""
        return sum(self._reserved.values())

    @property
    def written_bits(self) -> float:
        """KV bits actually appended so far, across live sequences."""
        return sum(self._written.values())

    @property
    def live_sequences(self) -> int:
        return len(self._reserved)

    # -- admission ----------------------------------------------------------------

    def admit(self, request_id: int, total_tokens: int,
              bits_per_token: int) -> bool:
        """Reserve a sequence's full KV footprint; False when refused.

        Evicts LRU weights while the reservation does not fit.  Refusal
        means other live sequences hold the room — wait on
        :meth:`wait_release` and retry.
        """
        if total_tokens < 1:
            raise ConfigurationError(
                f"sequence needs >= 1 token, got {total_tokens}"
            )
        if bits_per_token <= 0:
            raise ConfigurationError(
                f"KV bits per token must be positive, got {bits_per_token}"
            )
        wanted = float(total_tokens * bits_per_token)
        capacity = self.weights.capacity_bits
        if capacity is not None:
            if wanted > capacity:
                raise AdmissionError(
                    f"sequence of {total_tokens} tokens needs "
                    f"{wanted:.0f} KV bits but total residency capacity "
                    f"is {capacity:.0f} bits"
                )
            while (
                self.weights.resident_bits + self.reserved_bits + wanted
                > capacity
                and self.weights._lru
            ):
                self.weights.evict(self.weights._lru[0])
                self.pressure_evictions += 1
            if self.reserved_bits + wanted > capacity:
                self.refusals += 1
                obs = self.weights.obs_trace
                if obs is not None:
                    obs.instant(
                        "residency", "kv-refusal",
                        args={"request": request_id, "bits": wanted},
                    )
                return False
        self._reserved[request_id] = wanted
        self._written[request_id] = 0.0
        self.admissions += 1
        self.peak_reserved_bits = max(
            self.peak_reserved_bits, self.reserved_bits
        )
        return True

    def grow(self, request_id: int, tokens: int,
             bits_per_token: int) -> None:
        """Account ``tokens`` newly appended KV rows for a live sequence."""
        if request_id not in self._reserved:
            raise ConfigurationError(
                f"request {request_id} has no KV reservation"
            )
        self._written[request_id] = min(
            self._reserved[request_id],
            self._written[request_id] + tokens * bits_per_token,
        )

    def release(self, request_id: int) -> float:
        """Free a completed sequence's reservation; returns bits freed."""
        freed = self._reserved.pop(request_id, 0.0)
        self._written.pop(request_id, None)
        if freed:
            self.releases += 1
            waiters, self._release_waiters = self._release_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()
        return freed

    def wait_release(self) -> Event:
        """Event firing at the next reservation release (retry signal).

        Every waiter gets its own event and all of them fire on the
        next release, so refused admissions re-contend together."""
        event = self.env.event()
        self._release_waiters.append(event)
        return event
