"""Resident-weight accounting for the request-serving layer.

When a platform serves a stream of requests, each model's weights are
fetched onto the compute chiplets **once** and stay resident; only
activations stream per request.  :class:`WeightResidency` implements
that contract on top of any fabric:

* the first request needing a layer issues the weight transfers and
  registers the completion barrier,
* every overlapping or later request for the same ``(model, layer)``
  waits on (or skips past) that same barrier instead of re-streaming,
* resident bits are accounted per model against an optional capacity
  budget; when the budget would overflow, the least-recently-used
  *other* model is evicted (its next request re-fetches).

The store is deliberately simulation-native: eviction only forgets the
memoised barrier, so requests already waiting on an in-flight fetch are
unaffected.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..interposer.base import InterposerFabric
from ..sim.core import Environment, Event

from .mapper import LayerMapping


class WeightResidency:
    """Per-model resident-weight store shared by in-flight requests."""

    def __init__(self, env: Environment,
                 capacity_bits: float | None = None):
        if capacity_bits is not None and capacity_bits <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bits}"
            )
        self.env = env
        self.capacity_bits = capacity_bits
        self._barriers: dict[tuple[str, int], Event] = {}
        self._bits: dict[str, float] = {}
        self._lru: list[str] = []  # least-recently-used model first
        self.fetches_issued = 0
        self.fetch_hits = 0
        self.evictions = 0

    # -- accounting ---------------------------------------------------------------

    @property
    def resident_bits(self) -> float:
        """All weight bits currently resident, across models."""
        return sum(self._bits.values())

    def resident_bits_for(self, model_name: str) -> float:
        """Weight bits resident for one model."""
        return self._bits.get(model_name, 0.0)

    def _touch(self, model_name: str) -> None:
        if model_name in self._lru:
            self._lru.remove(model_name)
        self._lru.append(model_name)

    def evict(self, model_name: str) -> float:
        """Forget a model's residency; returns the bits freed.

        In-flight fetches keep completing (their barriers already fired
        or will fire); only the memoisation is dropped, so the next
        request for the model re-fetches.
        """
        freed = self._bits.pop(model_name, 0.0)
        if freed or any(key[0] == model_name for key in self._barriers):
            self.evictions += 1
        self._barriers = {
            key: barrier for key, barrier in self._barriers.items()
            if key[0] != model_name
        }
        if model_name in self._lru:
            self._lru.remove(model_name)
        return freed

    def _make_room(self, model_name: str, wanted_bits: float) -> None:
        """Evict LRU models (never the requester) until the new layer fits."""
        if self.capacity_bits is None:
            return
        while (
            self.resident_bits + wanted_bits > self.capacity_bits
            and any(name != model_name for name in self._lru)
        ):
            victim = next(
                name for name in self._lru if name != model_name
            )
            self.evict(victim)

    # -- the fetch-once contract ---------------------------------------------------

    def acquire(self, model_name: str, layer_mapping: LayerMapping,
                fabric: InterposerFabric) -> Event:
        """Barrier that fires when the layer's weights are resident.

        The first caller per ``(model, layer)`` issues the transfers;
        everyone else shares the same barrier (a hit on an already-fired
        barrier resumes immediately at the current time).
        """
        key = (model_name, layer_mapping.layer.index)
        barrier = self._barriers.get(key)
        if barrier is not None:
            self.fetch_hits += 1
            self._touch(model_name)
            return barrier

        layer_bits = float(sum(
            alloc.weight_bits for alloc in layer_mapping.allocations
        ))
        self._make_room(model_name, layer_bits)
        transfers = [
            fabric.read_weights(alloc.chiplet_id, alloc.weight_bits)
            for alloc in layer_mapping.allocations
            if alloc.weight_bits > 0
        ]
        barrier = fabric.env.all_of(transfers)
        self._barriers[key] = barrier
        self._bits[model_name] = (
            self._bits.get(model_name, 0.0) + layer_bits
        )
        self._touch(model_name)
        self.fetches_issued += 1
        return barrier
