"""Simulator microbenchmarks and the perf-regression smoke check.

The canonical definition of the kernel/fabric microbenchmark bodies
lives here; ``benchmarks/bench_sim_microbenchmarks.py`` wraps the same
bodies in pytest-benchmark fixtures, and ``python -m repro bench``
times them inline with :func:`time.perf_counter` — no test framework
needed.  ``python -m repro bench --check`` compares the inline medians
against the committed ``BENCH_sim.json`` baseline and fails when a
benchmark has regressed more than :data:`REGRESSION_FACTOR`, so the
perf trajectory of the DES kernel is guarded across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

BASELINE_FILENAME = "BENCH_sim.json"
"""Committed baseline written by ``benchmarks/run_all.py``."""

BASELINE_SCHEMA_VERSION = 1

REGRESSION_FACTOR = 2.0
"""A benchmark slower than ``factor x baseline`` fails ``--check``."""

KERNEL_BENCHMARK = "test_bench_kernel_event_throughput"
"""The headline kernel benchmark the acceptance criteria track."""


# ---------------------------------------------------------------------------
# Benchmark bodies.  Each factory does the one-time setup and returns the
# callable that gets timed — mirroring how pytest-benchmark separates
# fixture setup from the benchmarked function.
# ---------------------------------------------------------------------------


def make_kernel_event_throughput() -> Callable[[], float]:
    """Schedule and fire 10k timeout events."""
    from .sim.core import Environment

    def run() -> float:
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1e-9)

        env.process(ticker())
        env.run()
        return env.now

    return run


def make_channel_contention() -> Callable[[], int]:
    """1000 contended transfers through one channel."""
    from .sim.core import Environment
    from .sim.resources import BandwidthChannel

    def run() -> int:
        env = Environment()
        channel = BandwidthChannel(env, bandwidth_bps=1e9)

        def sender():
            yield env.process(channel.transfer(1e3))

        for _ in range(1000):
            env.process(sender())
        env.run()
        return channel.transfer_count

    return run


def make_photonic_fabric_reads() -> Callable[[], float]:
    """100 reads across the full interposer pipeline."""
    from .config import DEFAULT_PLATFORM
    from .interposer.photonic.fabric import PhotonicInterposerFabric
    from .interposer.topology import build_floorplan
    from .sim.core import Environment

    floorplan = build_floorplan(DEFAULT_PLATFORM)

    def run() -> float:
        env = Environment()
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        for site in floorplan.compute_sites:
            for _ in range(12):
                fabric.read(site.chiplet_id, 1e6)
        env.run()
        return fabric.bits_read

    return run


def make_functional_mac_matvec() -> Callable[[], object]:
    """Analog matvec through the device transfer functions."""
    import numpy as np

    from .core.mac_unit import MacUnitSpec, PhotonicMacUnit

    unit = PhotonicMacUnit(MacUnitSpec(vector_length=9))
    rng = np.random.default_rng(11)
    matrix = rng.uniform(-1, 1, (8, 27))
    vector = rng.uniform(-1, 1, 27)

    def run():
        return unit.matvec(matrix, vector)

    return run


def make_serving_request_throughput() -> Callable[[], int]:
    """Steady-state request stream through the serving scheduler.

    A 1 ms Poisson window at 100k requests/s of LeNet5 on the
    monolithic platform — ~100 requests batched through the max-batch
    dispatcher over one shared fabric.  Tracks the serving layer's
    requests/sec of wall time.
    """
    from .core.accelerator import MonolithicCrossLight
    from .core.engine import ExecutionTrace
    from .dnn import zoo
    from .dnn.workload import extract_workload
    from .mapping.residency import WeightResidency
    from .serving.scheduler import BatchPolicy, RequestScheduler
    from .sim.core import Environment
    from .sim.traffic import PoissonArrivals

    platform = MonolithicCrossLight()
    workload = extract_workload(zoo.build("LeNet5"))
    policy = BatchPolicy.max_batch_with_timeout(
        max_batch=8, batch_timeout_s=20e-6
    )

    def run() -> int:
        env = Environment()
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(workload), "LeNet5", policy=policy,
            residency=WeightResidency(env), trace=ExecutionTrace(),
        )
        scheduler.serve(PoissonArrivals(rate_rps=100e3, seed=7), 1e-3)
        return scheduler.requests_completed

    return run


def make_telemetry_null_recorder() -> Callable[[], int]:
    """The serving benchmark under a metrics-only telemetry session.

    The same 1 ms LeNet5 window as ``serving_request_throughput``, but
    with a :class:`~repro.obs.session.TelemetrySession` attached whose
    trace recorder is null (``trace: false``): every span site reduces
    to one attribute comparison while the gauge sampler ticks in the
    background.  The gap to ``serving_request_throughput`` is the cost
    of the null-recorder guards — the acceptance budget keeps it under
    a few percent.
    """
    from .core.accelerator import MonolithicCrossLight
    from .core.engine import ExecutionTrace
    from .dnn import zoo
    from .dnn.workload import extract_workload
    from .mapping.residency import WeightResidency
    from .obs.policy import TelemetryPolicy
    from .obs.session import TelemetrySession
    from .serving.scheduler import BatchPolicy, RequestScheduler
    from .sim.core import Environment
    from .sim.traffic import PoissonArrivals

    platform = MonolithicCrossLight()
    workload = extract_workload(zoo.build("LeNet5"))
    policy = BatchPolicy.max_batch_with_timeout(
        max_batch=8, batch_timeout_s=20e-6
    )
    telemetry = TelemetryPolicy(trace=False)

    def run() -> int:
        env = Environment()
        sim = platform.build_simulation(env)
        scheduler = RequestScheduler(
            sim, sim.map_workload(workload), "LeNet5", policy=policy,
            residency=WeightResidency(env), trace=ExecutionTrace(),
        )
        session = TelemetrySession(env, telemetry)
        scheduler.obs_metrics = session.metrics
        session.metrics.gauge(
            "queue_depth", lambda: float(scheduler.queue_length)
        )
        session.start(1e-3)
        scheduler.serve(PoissonArrivals(rate_rps=100e3, seed=7), 1e-3)
        return scheduler.requests_completed

    return run


def make_hazard_timeline_reads() -> Callable[[], float]:
    """Fabric reads while a hazard timeline mutates capacities.

    The same interposer read pattern as the plain fabric benchmark, but
    with a hazard engine cycling gateway failures, a ring-drift burst
    and repairs mid-run — tracks the overhead of the wrapped capacity
    hooks and the event process itself.
    """
    from .config import DEFAULT_PLATFORM
    from .interposer.photonic.fabric import PhotonicInterposerFabric
    from .interposer.photonic.faults import (
        GatewayFail,
        GatewayRepair,
        HazardEngine,
        HazardTimeline,
        RingDriftBurst,
    )
    from .interposer.topology import build_floorplan
    from .sim.core import Environment

    floorplan = build_floorplan(DEFAULT_PLATFORM)
    chiplets = sorted(
        site.chiplet_id for site in floorplan.compute_sites
    )[:4]
    timeline = HazardTimeline((
        GatewayFail(at_s=2e-7, memory_gateways=4),
        GatewayFail(
            at_s=4e-7,
            chiplet_gateways=tuple((cid, 2, 2) for cid in chiplets),
        ),
        RingDriftBurst(at_s=5e-7, duration_s=4e-7,
                       temperature_rise_k=8.0),
        GatewayRepair(at_s=8e-7, memory_gateways=4),
        GatewayRepair(
            at_s=1e-6,
            chiplet_gateways=tuple((cid, 2, 2) for cid in chiplets),
        ),
    ))

    def run() -> float:
        env = Environment()
        fabric = PhotonicInterposerFabric(env, DEFAULT_PLATFORM, floorplan)
        HazardEngine(fabric, timeline)
        for site in floorplan.compute_sites:
            for _ in range(12):
                fabric.read(site.chiplet_id, 1e6)
        env.run()
        return fabric.bits_read

    return run


def make_cluster_dispatch_throughput() -> Callable[[], int]:
    """Routed request stream across an 8-node fleet.

    A 0.5 ms Poisson window at 800k requests/s of LeNet5 dispatched by
    the least-outstanding router over 8 monolithic replicas sharing one
    environment — tracks the cluster layer's routing + fleet-drain
    overhead on top of the per-node schedulers.
    """
    from .cluster.router import ClusterNode, ClusterRouter
    from .core.accelerator import MonolithicCrossLight
    from .core.engine import ExecutionTrace
    from .dnn import zoo
    from .dnn.workload import extract_workload
    from .mapping.residency import WeightResidency
    from .serving.scheduler import BatchPolicy, RequestScheduler
    from .sim.core import Environment
    from .sim.traffic import PoissonArrivals
    from .studies.registry import ROUTERS

    platform = MonolithicCrossLight()
    workload = extract_workload(zoo.build("LeNet5"))
    policy = BatchPolicy.fifo(max_inflight=2)

    def run() -> int:
        env = Environment()
        nodes = []
        for index in range(8):
            sim = platform.build_simulation(env)
            scheduler = RequestScheduler(
                sim, sim.map_workload(workload), "LeNet5", policy=policy,
                residency=WeightResidency(env), trace=ExecutionTrace(),
            )
            nodes.append(ClusterNode(
                index=index, platform=platform, sim=sim,
                scheduler=scheduler,
                residency=scheduler.residency,
            ))
        router = ClusterRouter(
            nodes, ROUTERS.get("least-outstanding")(len(nodes), ())
        )
        router.serve(PoissonArrivals(rate_rps=800e3, seed=7), 0.5e-3)
        return router.requests_routed

    return run


def make_resilience_retry_hedge() -> Callable[[], int]:
    """Retry/hedge lifecycle over a 2-node fleet with tight timers.

    A 0.4 ms Poisson window at 500k requests/s of LeNet5 driven through
    the :class:`~repro.serving.lifecycle.LifecycleDriver` with a 40 us
    attempt timeout, two retries, and a 20 us hedge — every request
    races attempt completions against hedge and timeout timers, so this
    tracks the timer-race, duplicate-submit, and loser-cancellation
    overhead the resilience layer adds on top of routed dispatch.
    """
    from .cluster.router import ClusterNode, ClusterRouter
    from .core.accelerator import MonolithicCrossLight
    from .core.engine import ExecutionTrace
    from .dnn import zoo
    from .dnn.workload import extract_workload
    from .mapping.residency import WeightResidency
    from .serving.lifecycle import LifecycleDriver, ResiliencePolicy
    from .serving.scheduler import BatchPolicy, RequestScheduler
    from .sim.core import Environment
    from .sim.traffic import PoissonArrivals
    from .studies.registry import ROUTERS

    platform = MonolithicCrossLight()
    workload = extract_workload(zoo.build("LeNet5"))
    policy = BatchPolicy.fifo(max_inflight=2)
    resilience = ResiliencePolicy(
        timeout_s=40e-6, max_retries=2, hedge_delay_s=20e-6
    )

    def run() -> int:
        env = Environment()
        nodes = []
        for index in range(2):
            sim = platform.build_simulation(env)
            scheduler = RequestScheduler(
                sim, sim.map_workload(workload), "LeNet5", policy=policy,
                residency=WeightResidency(env), trace=ExecutionTrace(),
            )
            nodes.append(ClusterNode(
                index=index, platform=platform, sim=sim,
                scheduler=scheduler,
                residency=scheduler.residency,
            ))
        router = ClusterRouter(
            nodes, ROUTERS.get("least-outstanding")(len(nodes), ())
        )
        driver = LifecycleDriver(router, resilience, seed=11)
        driver.serve(PoissonArrivals(rate_rps=500e3, seed=11), 0.4e-3)
        return driver.requests_completed

    return run


def _fidelity_reference_cell(fidelity=None):
    """The representative serving cell the fidelity benchmarks share."""
    from .config import DEFAULT_PLATFORM
    from .experiments.serving_study import ServingCell
    from .serving.scheduler import BatchPolicy

    return ServingCell(
        platform="2.5D-CrossLight-SiPh", model="LeNet5",
        controller="resipi", policy=BatchPolicy.fifo(),
        arrival_kind="poisson", rate_rps=100e3, duration_s=2e-3,
        seed=7, config=DEFAULT_PLATFORM, fidelity=fidelity,
    )


def make_fidelity_des_reference() -> Callable[[], int]:
    """Full-DES baseline of the hybrid-fidelity reference cell.

    The denominator of the fidelity speedup claim: one complete
    discrete-event simulation of the same serving point the fluid
    benchmarks predict (~200 requests of LeNet5 at 100k req/s).
    """
    from .experiments.serving_study import simulate_serving_cell

    cell = _fidelity_reference_cell()

    def run() -> int:
        return simulate_serving_cell(cell).requests_completed

    return run


def make_fidelity_fluid_path() -> Callable[[], int]:
    """Warm-forked fluid evaluation of the reference cell.

    Setup runs the calibration once (memoising the warm-state
    checkpoint); the timed body is the marginal cost of every further
    cell in a sweep — vectorized arrival cohort, quantile service
    draws, piecewise M/G/k waits.  Compare against
    ``fidelity_des_reference`` for the headline speedup.
    """
    from .experiments.fidelity import FidelityPolicy, simulate_fidelity_cell

    cell = _fidelity_reference_cell(
        FidelityPolicy(mode="fluid", error_budget=0.25)
    )
    simulate_fidelity_cell(cell)  # warm the checkpoint store

    def run() -> int:
        return simulate_fidelity_cell(cell).requests_completed

    return run


def make_warm_fork_sweep() -> Callable[[], int]:
    """A 6-variant hazard sweep forked from one cold calibration.

    The timed body clears the warm store, calibrates once, then
    evaluates six MAC-degrade scenario variants of the same serving
    point through the fluid path — the amortised shape of a real
    hybrid-fidelity study (one short DES warm-up per (platform,
    workload), forks for every scenario).
    """
    from dataclasses import replace

    from .config import DEFAULT_PLATFORM
    from .experiments.fidelity import (
        FidelityPolicy,
        clear_warm_store,
        simulate_fidelity_cell,
    )
    from .experiments.serving_study import ScenarioCell
    from .serving.scheduler import BatchPolicy
    from .studies.spec import FaultSpec

    base = ScenarioCell(
        platform="2.5D-CrossLight-SiPh",
        models=(("LeNet5", 1.0, None, 0),),
        controller="resipi", policy=BatchPolicy.fifo(),
        arrival_kind="poisson", rate_rps=100e3, duration_s=2e-3,
        seed=7, config=DEFAULT_PLATFORM,
        fidelity=FidelityPolicy(mode="fluid", error_budget=0.25),
    )
    variants = [
        replace(base, faults=FaultSpec.from_dict({"events": [{
            "kind": "chiplet-mac-degrade",
            "at_s": 0.2e-3 + 0.2e-3 * index,
            "mac_fraction": 0.5,
            "duration_s": 0.5e-3,
        }]}))
        for index in range(6)
    ]

    def run() -> int:
        clear_warm_store()
        return sum(
            simulate_fidelity_cell(cell).requests_completed
            for cell in variants
        )

    return run


def make_continuous_decode_throughput() -> Callable[[], int]:
    """Continuous-batching decode steps over a transformer mix.

    A 0.5 ms MMPP window of TransformerTiny sequences (16-token
    prompts, 8 decode steps each) through the continuous batcher — sequences
    join and leave the running decode pool at step boundaries, with
    KV-cache admission against the weight residency store.  Tracks the
    per-decode-step overhead of the sequence scheduler: pool
    management, width-aware remap lookups, and token bookkeeping.
    """
    from .config import DEFAULT_PLATFORM
    from .experiments.serving_study import ScenarioCell
    from .serving.scheduler import BatchPolicy

    cell = ScenarioCell(
        platform="2.5D-CrossLight-SiPh",
        models=(("TransformerTiny", 1.0, None, 0),),
        controller="resipi",
        policy=BatchPolicy.continuous(max_batch=4),
        arrival_kind="mmpp", rate_rps=60e3, duration_s=0.5e-3,
        seed=7, config=DEFAULT_PLATFORM,
        sequences=((16, 8),),
    )

    def run() -> int:
        from .experiments.serving_study import simulate_scenario_cell

        result = simulate_scenario_cell(cell)
        return result.tokens_generated

    return run


def make_sequence_fluid_path() -> Callable[[], int]:
    """Warm-forked fluid evaluation of the decode benchmark cell.

    The same transformer scenario as ``continuous_decode_throughput``
    with fluid fidelity armed: setup calibrates once, the timed body is
    the marginal per-cell cost of a sequence sweep — vectorized prefill
    quantile resampling plus the width-conditioned decode token loop.
    Compare against ``continuous_decode_throughput`` for the sequence
    speedup.
    """
    from .config import DEFAULT_PLATFORM
    from .experiments.fidelity import FidelityPolicy, simulate_fidelity_cell
    from .experiments.serving_study import ScenarioCell
    from .serving.scheduler import BatchPolicy

    cell = ScenarioCell(
        platform="2.5D-CrossLight-SiPh",
        models=(("TransformerTiny", 1.0, None, 0),),
        controller="resipi",
        policy=BatchPolicy.continuous(max_batch=4),
        arrival_kind="mmpp", rate_rps=60e3, duration_s=0.5e-3,
        seed=7, config=DEFAULT_PLATFORM,
        sequences=((16, 8),),
        fidelity=FidelityPolicy(mode="fluid", error_budget=0.25),
    )
    simulate_fidelity_cell(cell)  # warm the checkpoint store

    def run() -> int:
        return simulate_fidelity_cell(cell).tokens_generated

    return run


MICROBENCHMARKS: dict[str, Callable[[], Callable[[], object]]] = {
    KERNEL_BENCHMARK: make_kernel_event_throughput,
    "test_bench_channel_contention": make_channel_contention,
    "test_bench_photonic_fabric_reads": make_photonic_fabric_reads,
    "test_bench_functional_mac_matvec": make_functional_mac_matvec,
    "test_bench_serving_request_throughput": make_serving_request_throughput,
    "test_bench_telemetry_null_recorder": make_telemetry_null_recorder,
    "test_bench_hazard_timeline_reads": make_hazard_timeline_reads,
    "test_bench_cluster_dispatch_throughput": make_cluster_dispatch_throughput,
    "test_bench_resilience_retry_hedge": make_resilience_retry_hedge,
    "test_bench_fidelity_des_reference": make_fidelity_des_reference,
    "test_bench_fidelity_fluid_path": make_fidelity_fluid_path,
    "test_bench_warm_fork_sweep": make_warm_fork_sweep,
    "test_bench_continuous_decode_throughput":
        make_continuous_decode_throughput,
    "test_bench_sequence_fluid_path": make_sequence_fluid_path,
}
"""Benchmark name (matching the pytest test name) -> body factory."""


# ---------------------------------------------------------------------------
# Inline timing.
# ---------------------------------------------------------------------------


def measure_ns(run: Callable[[], object], repeats: int = 5,
               warmup: int = 1) -> float:
    """Median wall time of ``run()`` in nanoseconds."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        run()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] * 1e9


def select_benchmarks(substring: str) -> tuple[str, ...]:
    """Benchmark names containing ``substring`` (the ``--only`` filter).

    Raises :class:`~repro.errors.UnknownNameError` — listing every
    registered benchmark — when nothing matches, so a typo'd filter
    fails with the same typed, did-you-mean-carrying error the spec
    registries produce instead of silently timing nothing.
    """
    names = tuple(
        name for name in MICROBENCHMARKS if substring in name
    )
    if not names:
        from .errors import UnknownNameError

        raise UnknownNameError(
            "benchmark", substring, tuple(MICROBENCHMARKS),
            registry="MICROBENCHMARKS",
        )
    return names


def run_suite(names: tuple[str, ...] | None = None,
              repeats: int = 5) -> dict[str, float]:
    """Time the microbenchmarks inline; returns name -> median ns/op."""
    selected = names or tuple(MICROBENCHMARKS)
    medians = {}
    for name in selected:
        medians[name] = measure_ns(MICROBENCHMARKS[name](), repeats=repeats)
    return medians


# ---------------------------------------------------------------------------
# Baseline file handling + the regression check.
# ---------------------------------------------------------------------------


def write_baseline(medians: dict[str, float], path: str | Path,
                   source: str = "repro.bench") -> None:
    """Write a BENCH_sim.json baseline."""
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "source": source,
        "unit": "ns/op (median)",
        "benchmarks": {
            name: {"median_ns": median}
            for name, median in sorted(medians.items())
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def load_baseline(path: str | Path) -> dict[str, float]:
    """Read a baseline; returns name -> median ns/op."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        name: float(entry["median_ns"])
        for name, entry in payload.get("benchmarks", {}).items()
    }


def check_against_baseline(
    medians: dict[str, float],
    baseline: dict[str, float],
    factor: float = REGRESSION_FACTOR,
) -> list[str]:
    """Regression report lines for benchmarks slower than the budget.

    Only benchmarks present in both mappings are compared; an empty
    return value means the check passed.
    """
    failures = []
    for name, measured in medians.items():
        reference = baseline.get(name)
        if reference is None or reference <= 0:
            continue
        ratio = measured / reference
        if ratio > factor:
            failures.append(
                f"{name}: {measured / 1e6:.2f} ms vs baseline "
                f"{reference / 1e6:.2f} ms ({ratio:.2f}x > {factor:.1f}x)"
            )
    return failures


def render_suite(medians: dict[str, float],
                 baseline: dict[str, float] | None = None) -> str:
    """Text table of measured medians (and ratios when given a baseline)."""
    lines = [
        f"{'benchmark':<42}{'median':>12}"
        + ("{:>12}".format("vs base") if baseline else ""),
        "-" * (54 + (12 if baseline else 0)),
    ]
    for name, median in medians.items():
        row = f"{name:<42}{median / 1e6:>10.2f}ms"
        if baseline and baseline.get(name):
            row += f"{median / baseline[name]:>11.2f}x"
        lines.append(row)
    return "\n".join(lines)
