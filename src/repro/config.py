"""Architecture configurations.

:class:`PlatformConfig` and its helpers encode the paper's Table 1
exactly, plus the additional parameters the evaluation needs (monolithic
CrossLight baseline configuration, electrical-interposer signalling
derating, memory bandwidths).  Everything is a frozen dataclass so that
experiment sweeps build modified copies via ``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError
from .units import GIGA

# ---------------------------------------------------------------------------
# MAC chiplet groups (Table 1, lower half).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MacGroupConfig:
    """One row-group of Table 1: a class of compute chiplets.

    Parameters
    ----------
    kind:
        Human-readable kind ("3x3 conv", "dense100", ...).
    vector_length:
        Dot-product lanes per MAC unit (k*k for k x k conv units; 100 for
        the dense units).
    kernel_size:
        Native spatial kernel edge (0 marks dense units).
    n_chiplets / macs_per_chiplet / macs_per_gateway:
        Directly from Table 1.
    """

    kind: str
    vector_length: int
    kernel_size: int
    n_chiplets: int
    macs_per_chiplet: int
    macs_per_gateway: int

    def __post_init__(self) -> None:
        if self.vector_length < 1:
            raise ConfigurationError("vector length must be >= 1")
        if self.n_chiplets < 1 or self.macs_per_chiplet < 1:
            raise ConfigurationError("chiplet/MAC counts must be >= 1")
        if self.macs_per_chiplet % self.macs_per_gateway:
            raise ConfigurationError(
                f"{self.kind}: MACs per chiplet ({self.macs_per_chiplet}) "
                f"must divide evenly into gateways "
                f"({self.macs_per_gateway} per gateway)"
            )

    @property
    def gateways_per_chiplet(self) -> int:
        """Gateways on each chiplet of this group."""
        return self.macs_per_chiplet // self.macs_per_gateway

    @property
    def total_macs(self) -> int:
        """MAC units across all chiplets of the group."""
        return self.n_chiplets * self.macs_per_chiplet

    @property
    def total_lanes(self) -> int:
        """Dot-product lanes across all chiplets of the group."""
        return self.total_macs * self.vector_length


TABLE1_MAC_GROUPS: tuple[MacGroupConfig, ...] = (
    MacGroupConfig(
        kind="dense100",
        vector_length=100,
        kernel_size=0,
        n_chiplets=2,
        macs_per_chiplet=4,
        macs_per_gateway=1,
    ),
    MacGroupConfig(
        kind="7x7 conv",
        vector_length=49,
        kernel_size=7,
        n_chiplets=1,
        macs_per_chiplet=8,
        macs_per_gateway=2,
    ),
    MacGroupConfig(
        kind="5x5 conv",
        vector_length=25,
        kernel_size=5,
        n_chiplets=2,
        macs_per_chiplet=16,
        macs_per_gateway=4,
    ),
    MacGroupConfig(
        kind="3x3 conv",
        vector_length=9,
        kernel_size=3,
        n_chiplets=3,
        macs_per_chiplet=44,
        macs_per_gateway=11,
    ),
)
"""The compute-chiplet inventory exactly as printed in Table 1."""


# ---------------------------------------------------------------------------
# Platform-level configuration (Table 1, upper half + modelling knobs).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformConfig:
    """Full configuration of the 2.5D platform and its baselines."""

    # --- Table 1, upper half -------------------------------------------------
    wavelength_data_rate_bps: float = 12 * GIGA
    gateway_frequency_hz: float = 2 * GIGA
    electrical_link_width_bits: int = 128
    electrical_noc_frequency_hz: float = 2 * GIGA
    n_wavelengths: int = 64
    n_memory_chiplets: int = 1
    mac_groups: tuple[MacGroupConfig, ...] = TABLE1_MAC_GROUPS

    # --- photonic interposer -------------------------------------------------
    n_memory_write_gateways: int = 8
    """SWMR broadcast channels sourced by the memory chiplet (reads)."""
    n_memory_read_gateways: int = 32
    """MRG filter rows on the memory chiplet (one per compute writer)."""
    resipi_epoch_s: float = 1e-6
    """ReSiPI traffic-monitoring epoch length."""
    gateway_conversion_latency_s: float = 10e-9
    """O/E/O + buffering latency through a gateway pair (write + read)."""
    gateway_protocol_overhead_s: float = 150e-9
    """Per-message protocol cost on the photonic interposer: SWMR
    reader-select arbitration, filter-row retuning and OOK frame sync.
    Negligible for megabit transfers, dominant for tiny models — the
    source of the paper's LeNet5 overhead observation."""

    # --- memory system ---------------------------------------------------------
    hbm_internal_bandwidth_bps: float = 3.2e12
    """Aggregate internal bandwidth of the HBM memory chiplet (b/s)."""

    # --- MAC timing --------------------------------------------------------------
    mac_rate_hz: float = 2 * GIGA
    """Vector operations per second per MAC unit (gateway-clock fed)."""

    # --- electrical interposer baseline ---------------------------------------------
    mesh_link_efficiency: float = 0.10
    """Effective fraction of the raw 128 bit x 2 GHz link rate achieved on
    the passive electrical interposer.  Long unrepeated interposer traces
    cannot be clocked pipelined at the on-chiplet rate; this derating is
    the calibration knob for the electrical baseline (see DESIGN.md)."""
    mesh_router_latency_s: float = 2e-9
    """Per-hop router traversal latency."""
    mesh_wire_latency_s_per_mm: float = 0.15e-9
    """Per-mm interposer trace latency."""
    chiplet_pitch_mm: float = 8.0
    """Center-to-center spacing of adjacent chiplets on the interposer."""

    # --- monolithic CrossLight baseline ----------------------------------------------
    mono_n_vdp_units: int = 16
    mono_vector_length: int = 64
    mono_mac_rate_hz: float = 1 * GIGA
    mono_noc_bandwidth_bps: float = 1.28e12
    """Global on-chip NoC feeding the VDP units (512 bits @ 2.5 GHz)."""
    mono_dram_bandwidth_bps: float = 0.2e12
    """Off-chip DRAM weight-streaming bandwidth of the single-chip design."""
    mono_die_edge_mm: float = 20.0
    """Monolithic die edge; sets its on-chip waveguide lengths."""

    def __post_init__(self) -> None:
        if self.n_wavelengths < 1:
            raise ConfigurationError("need at least one wavelength")
        if self.wavelength_data_rate_bps <= 0:
            raise ConfigurationError("data rate must be positive")
        if not 0.0 < self.mesh_link_efficiency <= 1.0:
            raise ConfigurationError(
                "mesh link efficiency must be in (0, 1], got "
                f"{self.mesh_link_efficiency}"
            )
        if not self.mac_groups:
            raise ConfigurationError("at least one MAC group is required")

    # -- derived quantities ------------------------------------------------------

    @property
    def n_compute_chiplets(self) -> int:
        """Total compute chiplets (Table 1: 8)."""
        return sum(group.n_chiplets for group in self.mac_groups)

    @property
    def n_chiplets(self) -> int:
        """All chiplets including memory."""
        return self.n_compute_chiplets + self.n_memory_chiplets

    @property
    def gateway_bandwidth_bps(self) -> float:
        """Aggregate bandwidth of one gateway's wavelength comb (b/s)."""
        return self.n_wavelengths * self.wavelength_data_rate_bps

    @property
    def total_compute_gateways(self) -> int:
        """Writer/reader gateway pairs across all compute chiplets."""
        return sum(
            group.n_chiplets * group.gateways_per_chiplet
            for group in self.mac_groups
        )

    @property
    def total_mac_units(self) -> int:
        """All MAC units on the platform."""
        return sum(group.total_macs for group in self.mac_groups)

    @property
    def total_mac_lanes(self) -> int:
        """All dot-product lanes on the platform."""
        return sum(group.total_lanes for group in self.mac_groups)

    @property
    def peak_mac_throughput_per_s(self) -> float:
        """Peak platform MAC rate (multiply-accumulates per second)."""
        return self.total_mac_lanes * self.mac_rate_hz

    @property
    def mesh_link_bandwidth_bps(self) -> float:
        """Raw electrical mesh link bandwidth (b/s)."""
        return self.electrical_link_width_bits * self.electrical_noc_frequency_hz

    @property
    def mesh_effective_link_bandwidth_bps(self) -> float:
        """Derated electrical interposer link bandwidth (b/s)."""
        return self.mesh_link_bandwidth_bps * self.mesh_link_efficiency

    @property
    def mono_peak_mac_throughput_per_s(self) -> float:
        """Monolithic CrossLight peak MAC rate."""
        return (
            self.mono_n_vdp_units
            * self.mono_vector_length
            * self.mono_mac_rate_hz
        )

    def group_by_kind(self, kind: str) -> MacGroupConfig:
        """Look up a MAC group by its kind string."""
        for group in self.mac_groups:
            if group.kind == kind:
                return group
        raise ConfigurationError(f"no MAC group of kind {kind!r}")

    def with_wavelengths(self, n: int) -> "PlatformConfig":
        """Copy of this config with a different wavelength count (DSE)."""
        return replace(self, n_wavelengths=n)

    def with_epoch(self, epoch_s: float) -> "PlatformConfig":
        """Copy with a different controller epoch length (DSE knob).

        Both epoch-driven controllers (ReSiPI gateway scaling, PROWAVES
        wavelength scaling) wake on this period; shorter epochs track
        bursty serving traffic tighter at higher reconfiguration cost.
        """
        if epoch_s <= 0:
            raise ConfigurationError(
                f"controller epoch must be positive, got {epoch_s}"
            )
        return replace(self, resipi_epoch_s=epoch_s)

    def with_gateways_per_chiplet(self, gateways: int) -> "PlatformConfig":
        """Copy with a different gateway count per compute chiplet (DSE).

        Rebuilds every MAC group; the memory chiplet's writer-gateway
        count scales along (2x the per-chiplet count, matching the
        Table 1 ratio of 8 memory gateways to 4 per compute chiplet) —
        that is the side that actually bounds read bandwidth.
        """
        groups = []
        for group in self.mac_groups:
            if group.macs_per_chiplet % gateways:
                raise ConfigurationError(
                    f"{group.kind}: {group.macs_per_chiplet} MACs cannot "
                    f"split over {gateways} gateways"
                )
            groups.append(replace(
                group,
                macs_per_gateway=group.macs_per_chiplet // gateways,
            ))
        return replace(
            self,
            mac_groups=tuple(groups),
            n_memory_write_gateways=2 * gateways,
        )


DEFAULT_PLATFORM = PlatformConfig()
"""The paper's Table 1 configuration."""
