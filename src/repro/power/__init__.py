"""Power and energy models: device parameter tables, compute-fabric power,
and energy-per-bit metrics."""

from . import params
from .compute_power import MacPowerBreakdown, mac_fabric_power, mac_unit_link_budget

__all__ = [
    "params",
    "MacPowerBreakdown",
    "mac_fabric_power",
    "mac_unit_link_budget",
]
