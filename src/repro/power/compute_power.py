"""Power model of the photonic MAC compute fabric.

A MAC unit of vector length ``v`` comprises, per lane: one MR modulator
imprinting the activation, one MR weight element, and a DAC driving each
(CrossLight's VDP structure, Fig. 4 of the paper); plus one broadband
photodetector + ADC per unit, and the unit's share of the compute laser.

The same model covers the monolithic die (longer waveguides, thermal
trimming) and the chiplets (short waveguides, EO tuning), so the
monolithic-vs-2.5D compute power difference falls out of the device
parameters instead of being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..photonics import constants as ph
from ..photonics.laser import LaserSource
from ..photonics.link_budget import LinkBudget
from ..photonics.microring import MicroringResonator, TuningMechanism
from ..photonics.photodetector import Photodetector


@dataclass(frozen=True)
class MacPowerBreakdown:
    """Per-component power of a set of MAC units (W)."""

    dac_w: float
    adc_w: float
    tuning_w: float
    trimming_w: float
    laser_w: float
    receiver_w: float

    @property
    def total_w(self) -> float:
        return (
            self.dac_w
            + self.adc_w
            + self.tuning_w
            + self.trimming_w
            + self.laser_w
            + self.receiver_w
        )


def mac_unit_link_budget(
    vector_length: int, waveguide_length_m: float
) -> LinkBudget:
    """Optical loss budget through one MAC unit's dot-product path.

    Path: laser comb -> activation modulator bank (pass v-1 rings, drive
    one) -> weight bank (same structure) -> photodetector.  Every carrier
    passes the other lanes' rings on the shared waveguide.
    """
    budget = LinkBudget()
    budget.add("splitter", 3.0)  # comb distribution inside the chiplet
    budget.add(
        "waveguide",
        ph.WAVEGUIDE_PROPAGATION_LOSS_DB_PER_CM * waveguide_length_m * 100.0,
    )
    budget.add("modulator", ph.MR_MODULATION_INSERTION_LOSS_DB)
    budget.add("mod_bank_passby", ph.MR_THROUGH_LOSS_DB, count=vector_length - 1)
    budget.add("weight_ring", ph.MR_MODULATION_INSERTION_LOSS_DB)
    budget.add(
        "weight_bank_passby", ph.MR_THROUGH_LOSS_DB, count=vector_length - 1
    )
    return budget


def mac_fabric_power(
    n_units: int,
    vector_length: int,
    mac_rate_hz: float,
    activity: float = 1.0,
    waveguide_length_m: float = 2e-3,
    trimming: TuningMechanism = TuningMechanism.ELECTRO_OPTIC,
    laser: LaserSource | None = None,
) -> MacPowerBreakdown:
    """Power of ``n_units`` MAC units of ``vector_length`` lanes each.

    Parameters
    ----------
    activity:
        Fraction of time the units are streaming operands (dynamic scaling
        of DAC/ADC/modulator energy).
    waveguide_length_m:
        Optical path length through one unit — millimetres on a chiplet,
        centimetres on the monolithic die.
    trimming:
        Mechanism used to hold rings on resonance against variations;
        thermal trimming (monolithic CrossLight) is an order of magnitude
        costlier than EO-assisted trimming.
    """
    lanes = n_units * vector_length
    detector = Photodetector()
    source = laser or LaserSource.off_chip()

    # Two DACs per lane (weight + activation), one ADC per unit.
    dac_w = 2.0 * lanes * ph.DAC_POWER_W * activity
    adc_w = n_units * ph.ADC_POWER_W * activity

    # Weight/activation imprinting: average EO detuning holds ~half the
    # linewidth worth of shift per ring.
    ring = MicroringResonator()
    average_shift_m = ring.fwhm_m / 2.0
    tuning_w = 2.0 * lanes * ring.tuning_power_w(average_shift_m) * activity

    # Fabrication-variation trimming on every ring.
    if trimming is TuningMechanism.THERMO_OPTIC:
        per_ring_trim = ph.MR_TO_TUNING_POWER_W_PER_NM * ph.MR_THERMAL_TRIMMING_NM
    else:
        per_ring_trim = ph.MR_EO_TUNING_POWER_W_PER_NM * ph.MR_THERMAL_TRIMMING_NM
    trimming_w = 2.0 * lanes * per_ring_trim

    # Compute laser: each unit's comb must close the unit's optical path.
    budget = mac_unit_link_budget(vector_length, waveguide_length_m)
    per_unit_optical = (
        budget.required_on_chip_power_w(detector) * vector_length
    )
    laser_w = n_units * source.electrical_power_w(per_unit_optical)

    receiver_w = n_units * ph.PD_TIA_POWER_W
    return MacPowerBreakdown(
        dac_w=dac_w,
        adc_w=adc_w,
        tuning_w=tuning_w,
        trimming_w=trimming_w,
        laser_w=laser_w,
        receiver_w=receiver_w,
    )
