"""Power-model parameters not owned by the photonic device library.

Electrical energy/power figures for the NoC, memory system, and chiplet
electronics.  Sources: the active-interposer router literature the paper
cites ([40]), HBM2E datasheet-level figures, and the CrossLight [21]
electronic back-end assumptions.  Photonic device figures live in
:mod:`repro.photonics.constants`.
"""

from __future__ import annotations

# --- Electrical NoC (interposer mesh and on-chiplet networks) -----------------

ROUTER_ENERGY_J_PER_BIT = 0.6e-12
"""Energy per bit through one mesh router (buffering + crossbar)."""

ROUTER_STATIC_POWER_W = 0.25
"""Static power of one 5-port 128-bit mesh router at 2 GHz."""

INTERPOSER_WIRE_ENERGY_J_PER_BIT_PER_MM = 0.18e-12
"""Energy per bit per mm of interposer trace (passive, full-swing)."""

ONCHIP_WIRE_ENERGY_J_PER_BIT_PER_MM = 0.10e-12
"""Energy per bit per mm of on-die global wire."""

MICROBUMP_ENERGY_J_PER_BIT = 0.05e-12
"""Energy crossing a microbump interface between chiplet and interposer."""

# --- Memory system ---------------------------------------------------------------

HBM_ENERGY_J_PER_BIT = 3.9e-12
"""HBM2E access energy per bit (I/O + DRAM core)."""

HBM_STATIC_POWER_W = 1.2
"""HBM stack standby power."""

DDR_ENERGY_J_PER_BIT = 15e-12
"""Conventional off-package DRAM access energy (monolithic baseline)."""

DDR_PHY_STATIC_POWER_W = 1.5
"""DDR PHY + controller static power."""

# --- Chiplet / die electronics -----------------------------------------------------

SRAM_BUFFER_ENERGY_J_PER_BIT = 0.08e-12
"""Read/write energy of chiplet-local SRAM buffers per bit."""

CHIPLET_LOGIC_STATIC_POWER_W = 0.35
"""Control logic + clocking static power per compute chiplet."""

MEMORY_CHIPLET_LOGIC_STATIC_POWER_W = 0.8
"""Controller logic static power of the memory chiplet."""

MONO_LOGIC_STATIC_POWER_W = 2.0
"""Control/clocking static power of the monolithic die."""

RESIPI_CONTROLLER_POWER_W = 0.25
"""ReSiPI epoch controller (traffic counters + decision logic)."""
