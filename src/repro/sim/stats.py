"""Measurement helpers for simulations.

* :class:`TimeWeightedValue` — integrates a piecewise-constant signal
  over time (queue depths, active-gateway counts, power draw).
* :class:`EpochTrafficMonitor` — bins traffic into fixed epochs per key;
  this is the observation mechanism the ReSiPI controller reads.
* :class:`LatencyRecorder` — collects per-message latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .core import Environment


class TimeWeightedValue:
    """Time-integral of a piecewise-constant signal."""

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._value = initial
        self._last_change = env.now
        self._integral = 0.0

    @property
    def value(self) -> float:
        """Current signal value."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal value at the current simulation time."""
        now = self.env.now
        self._integral += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        """Increment the signal."""
        self.set(self._value + delta)

    def integral(self) -> float:
        """Signal integral from t=0 to now (value-seconds)."""
        return self._integral + self._value * (self.env.now - self._last_change)

    def time_average(self) -> float:
        """Time-averaged signal value from t=0 to now."""
        if self.env.now == 0.0:
            return self._value
        return self.integral() / self.env.now


class EpochTrafficMonitor:
    """Traffic accumulated per key within fixed-length epochs.

    Controllers call :meth:`record` as messages move, and
    :meth:`close_epoch` at each epoch boundary to obtain the per-key bit
    counts of the epoch just ended.
    """

    def __init__(self, env: Environment, epoch_length_s: float):
        if epoch_length_s <= 0:
            raise SimulationError("epoch length must be positive")
        self.env = env
        self.epoch_length_s = epoch_length_s
        self._current: dict[str, float] = {}
        self.history: list[dict[str, float]] = []

    def record(self, key: str, bits: float) -> None:
        """Attribute ``bits`` of traffic to ``key`` in the current epoch."""
        if bits < 0:
            raise SimulationError("traffic bits must be non-negative")
        self._current[key] = self._current.get(key, 0.0) + bits

    def close_epoch(self) -> dict[str, float]:
        """End the current epoch; returns and archives its traffic map."""
        finished = dict(self._current)
        self.history.append(finished)
        self._current = {}
        return finished

    def demanded_bandwidth_bps(self, traffic: dict[str, float]) -> dict[str, float]:
        """Convert an epoch's bit counts to average offered load (b/s)."""
        return {
            key: bits / self.epoch_length_s for key, bits in traffic.items()
        }


@dataclass
class LatencyRecorder:
    """Accumulates per-message latency samples."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency_s: float) -> None:
        if latency_s < 0:
            raise SimulationError("latency must be non-negative")
        self.samples.append(latency_s)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self.total / len(self.samples)

    @property
    def max(self) -> float:
        if not self.samples:
            return 0.0
        return max(self.samples)
