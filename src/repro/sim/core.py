"""Discrete-event simulation kernel.

A small process-based kernel in the SimPy style: generator coroutines
yield :class:`Event` objects and are resumed when those events fire.
Both interposer network models run on this kernel so that contention
(queueing at gateways, mesh links, memory ports) emerges from explicit
resource sharing instead of closed-form approximations.

Design choices:

* Time is a ``float`` in seconds.
* Events fire in (time, insertion-order) order — deterministic replays.
* No interrupts/preemption: network messages never abort mid-flight.

Hot-path notes (this kernel executes tens of millions of events per
experiment matrix, so it is tuned):

* every kernel object declares ``__slots__`` — no per-instance dicts;
* zero-delay schedules (``succeed``, process bootstraps/resumes,
  zero-length timeouts) bypass the heap entirely: they land in a FIFO
  deque that the run loops drain *in sequence order* relative to
  same-time heap entries, so ordering is exactly the seed kernel's
  (time, insertion-order) contract;
* a :class:`Process` never allocates bootstrap/resume ``Event`` objects:
  one reusable :class:`_Resume` per process carries the pending value.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

_INFINITY = float("inf")
_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A one-shot occurrence that processes can wait on.

    ``callbacks`` is stored adaptively: ``None`` while no waiter is
    attached, the bare callable for exactly one waiter (the overwhelming
    majority of events), and a list only once a second waiter arrives.
    It is ``None`` again once the event has fired — events are one-shot,
    so nothing may attach to a processed event.  Always attach through
    :meth:`_add_callback`.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_processed", "_value")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Any = None
        self._triggered = False
        self._processed = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The value the event fired with (valid once triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._triggered = True
        env = self.env
        env._sequence += 1
        env._immediate.append((env._sequence, self))
        return self

    def _fire(self) -> None:
        """Run callbacks; called by the environment at the scheduled time."""
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach a waiter (internal; the event must not have fired yet)."""
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = None
        self._triggered = True
        self._processed = False
        self._value = value
        seq = env._sequence = env._sequence + 1
        if delay == 0.0:
            env._immediate.append((seq, self))
        else:
            _heappush(env._queue, (env._now + delay, seq, self))


_timeout_new = Timeout.__new__


class _Resume:
    """Reusable scheduler token that resumes a suspended process.

    A process is suspended on at most one target at a time, so a single
    token per process can carry every bootstrap/already-fired resume —
    the seed kernel allocated a throwaway :class:`Event` for each.  It
    exposes ``_value`` so :meth:`Process._step` can treat it like the
    fired event it stands in for.
    """

    __slots__ = ("process", "_value")

    def __init__(self, process: "Process"):
        self.process = process
        self._value: Any = None

    def _fire(self) -> None:
        self.process._step(self)


class Process(Event):
    """A running generator coroutine; itself an event that fires on return.

    The generator yields events; each yielded event resumes the generator
    with the event's value when it fires.  When the generator returns, the
    process event triggers with the return value.
    """

    __slots__ = ("_generator", "_resume", "_step_callback")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any]):
        super().__init__(env)
        self._generator = generator
        self._resume = _Resume(self)
        self._step_callback = self._step  # bind once, reuse per yield
        # Bootstrap: resume the generator at time `now`.
        env._sequence += 1
        env._immediate.append((env._sequence, self._resume))

    def _step(self, event: "Event | _Resume") -> None:
        """Advance the generator with the fired event's value."""
        try:
            target = self._generator.send(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        if target._processed:
            # Already fired: resume at the current time, in order.
            resume = self._resume
            resume._value = target._value
            env = self.env
            env._sequence += 1
            env._immediate.append((env._sequence, resume))
        elif target.callbacks is None:
            target.callbacks = self._step_callback
        else:
            target._add_callback(self._step_callback)


class AllOf(Event):
    """Fires when every child event has fired (a barrier).

    The value is the list of child values in the original order.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            if event._processed:
                self._on_child(event)
            else:
                event._add_callback(self._on_child)

    def _on_child(self, _: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed([event._value for event in self._events])


class AnyOf(Event):
    """Fires when the first of several child events fires (a race).

    The value is the winning child's value.  Children that fire later
    are simply ignored — events are one-shot, so no cancellation is
    needed (but a pending child keeps its callback; never race a
    stateful wait, e.g. a ``Store.get``, that must not stay registered).
    """

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        children = list(events)
        if not children:
            raise SimulationError("any_of needs at least one event")
        for event in children:
            if event._processed:
                self.succeed(event._value)
                return
        for event in children:
            event._add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            self.succeed(event._value)


def _call_trampoline(event: "_Call") -> None:
    """Heap-path dispatch for :class:`_Call` (stored as its callback)."""
    event.fn(event._value)


class _Call:
    """Scheduler token that invokes a plain callback when fired.

    The bulk-scheduling path (:meth:`Environment.schedule_calls`) uses
    one of these per scheduled invocation instead of a generator
    process: no coroutine frame, no resume token, no StopIteration
    unwinding — just ``fn(value)`` at the scheduled time.  Speaks both
    firing protocols: the immediate queue calls ``_fire()``, the heap
    loop marks ``_processed`` and invokes ``callbacks`` (primed with
    the module-level trampoline).
    """

    __slots__ = ("fn", "_value", "callbacks", "_processed")

    def __init__(self, fn: Callable[[Any], None], value: Any):
        self.fn = fn
        self._value = value
        self.callbacks = _call_trampoline
        self._processed = False

    def _fire(self) -> None:
        self._processed = True
        self.callbacks = None
        self.fn(self._value)


class Environment:
    """Event queue and simulated clock.

    Two scheduling structures share one sequence counter:

    * ``_queue`` — a heap of ``(fire_time, sequence, event)`` for delayed
      events;
    * ``_immediate`` — a FIFO of ``(sequence, event)`` for events firing
      at the *current* time (``succeed``, process resumes, zero delays).

    Every immediate entry fires at ``_now`` by construction: the run
    loops never advance the clock while ``_immediate`` is non-empty, and
    a heap entry is only popped ahead of an immediate one when it fires
    at the same time with a smaller sequence number.  Interleaving by
    sequence keeps the merged order identical to a single heap.
    """

    __slots__ = ("_now", "_queue", "_immediate", "_sequence")

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Any]] = []
        self._immediate: deque[tuple[int, Any]] = deque()
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time (s)."""
        return self._now

    # NOTE: there is deliberately no generic _schedule() helper — the
    # three scheduling sites (succeed, Timeout, timeout()) inline the
    # immediate-vs-heap dispatch because the call overhead is measurable
    # at event rates.  New scheduling paths must follow the same
    # pattern: bump _sequence, then append to _immediate for zero delay
    # or heap-push (fire_time, seq, event) otherwise.

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """An untriggered event; fire it later with ``succeed``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        # Builds the Timeout inline (no __init__ frame): this factory is
        # the single hottest allocation site in every simulation.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        event = _timeout_new(Timeout)
        event.env = self
        event.callbacks = None
        event._triggered = True
        event._processed = False
        event._value = value
        seq = self._sequence = self._sequence + 1
        if delay == 0.0:
            self._immediate.append((seq, event))
        else:
            _heappush(self._queue, (self._now + delay, seq, event))
        return event

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator coroutine."""
        return Process(self, generator)

    def schedule_calls(self, fire_times: Iterable[float],
                       fn: Callable[[Any], None]) -> int:
        """Bulk-schedule ``fn(t)`` invocations at absolute times.

        The vectorized-injection primitive: a precomputed (usually
        numpy-generated) arrival cohort lands on the heap in one pass —
        one :class:`_Call` token per invocation instead of a generator
        process yielding one timeout per gap.  Follows the kernel's
        scheduling discipline (bump ``_sequence``, then immediate FIFO
        for zero delay or heap-push ``(fire_time, seq, event)``), so
        firing order against every other event is exactly the (time,
        insertion-order) contract.  Returns the number scheduled.
        """
        queue = self._queue
        immediate = self._immediate
        now = self._now
        seq = self._sequence
        count = 0
        for fire_time in fire_times:
            fire_time = float(fire_time)
            if fire_time < now:
                raise SimulationError(
                    f"cannot schedule a call at t={fire_time} in the "
                    f"past (now={now})"
                )
            seq += 1
            call = _Call(fn, fire_time)
            if fire_time == now:
                immediate.append((seq, call))
            else:
                _heappush(queue, (fire_time, seq, call))
            count += 1
        self._sequence = seq
        return count

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier event over several events."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Race event: fires with the first child to fire."""
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulation time when execution stopped.

        Clamp semantics: the clock never moves backwards and always ends
        at ``until`` when one is given —

        * ``until`` in the past (``until < now``) raises
          :class:`SimulationError` instead of rewinding the clock;
        * events at exactly ``until`` still fire (the bound is inclusive);
        * if the queue drains early, or holds only later events, ``_now``
          idle-advances to ``until`` so back-to-back ``run(until=...)``
          calls tile the timeline without gaps.
        """
        now = self._now
        if until is not None and until < now:
            raise SimulationError(
                f"cannot run to {until}: time is already {now}"
            )
        queue = self._queue
        immediate = self._immediate
        pop = _heappop
        bound = _INFINITY if until is None else until
        while True:
            if immediate:
                # Fire same-time heap entries first when they were
                # scheduled earlier (lower sequence number).
                if queue and queue[0][0] == now and (
                    queue[0][1] < immediate[0][0]
                ):
                    event = pop(queue)[2]
                else:
                    event = immediate.popleft()[1]
                event._fire()
                continue
            if not queue:
                break
            fire_time = queue[0][0]
            if fire_time > bound:
                self._now = until
                return until
            if fire_time < now:
                raise SimulationError(
                    f"time went backwards: {fire_time} < {now}"
                )
            event = pop(queue)[2]
            self._now = now = fire_time
            # Inlined Event._fire — no kernel class overrides it, and
            # the call overhead is measurable at this loop's rate.
            event._processed = True
            callbacks = event.callbacks
            if callbacks is not None:
                event.callbacks = None
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(event)
                else:
                    callbacks(event)
        if until is not None and until > now:
            self._now = now = until
        return now

    def run_until_event(self, event: Event, limit: Optional[float] = None
                        ) -> float:
        """Execute events until ``event`` has been processed.

        Needed when perpetual processes (epoch controllers) keep the queue
        non-empty forever.  ``limit`` bounds simulated time as a hang
        guard; exceeding it raises :class:`SimulationError`.  The same
        backwards-time guard as :meth:`run` applies: a queue entry firing
        before the current time raises instead of rewinding the clock.
        """
        queue = self._queue
        immediate = self._immediate
        pop = _heappop
        now = self._now
        bound = _INFINITY if limit is None else limit
        while not event._processed:
            if immediate:
                if queue and queue[0][0] == now and (
                    queue[0][1] < immediate[0][0]
                ):
                    next_event = pop(queue)[2]
                else:
                    next_event = immediate.popleft()[1]
                next_event._fire()
                continue
            if not queue:
                raise SimulationError(
                    "event queue drained before the awaited event fired"
                )
            if queue[0][0] > bound:
                # Checked before popping: the over-limit event stays
                # queued, so a caller that retries with a larger limit
                # still sees it (same peek-first discipline as run()).
                raise SimulationError(
                    f"simulation exceeded time limit {limit} s"
                )
            fire_time, _, next_event = pop(queue)
            if fire_time < now:
                raise SimulationError(
                    f"time went backwards: {fire_time} < {now}"
                )
            self._now = now = fire_time
            next_event._processed = True
            callbacks = next_event.callbacks
            if callbacks is not None:
                next_event.callbacks = None
                if type(callbacks) is list:
                    for callback in callbacks:
                        callback(next_event)
                else:
                    callbacks(next_event)
        return now

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._immediate:
            return self._now
        if not self._queue:
            return _INFINITY
        return self._queue[0][0]
