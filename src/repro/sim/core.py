"""Discrete-event simulation kernel.

A small process-based kernel in the SimPy style: generator coroutines
yield :class:`Event` objects and are resumed when those events fire.
Both interposer network models run on this kernel so that contention
(queueing at gateways, mesh links, memory ports) emerges from explicit
resource sharing instead of closed-form approximations.

Design choices:

* Time is a ``float`` in seconds.
* Events fire in (time, insertion-order) order — deterministic replays.
* No interrupts/preemption: network messages never abort mid-flight.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError


class Event:
    """A one-shot occurrence that processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The value the event fired with (valid once triggered)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._triggered = True
        self.env._schedule(self, delay=0.0)
        return self

    def _fire(self) -> None:
        """Run callbacks; called by the environment at the scheduled time."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)


class Process(Event):
    """A running generator coroutine; itself an event that fires on return.

    The generator yields events; each yielded event resumes the generator
    with the event's value when it fires.  When the generator returns, the
    process event triggers with the return value.
    """

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any]):
        super().__init__(env)
        self._generator = generator
        # Bootstrap: resume the generator at time `now`.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._step)
        bootstrap._triggered = True
        env._schedule(bootstrap, delay=0.0)

    def _step(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        if target.processed:
            # Already fired: resume immediately at the current time.
            resume = Event(self.env)
            resume._value = target.value
            resume.callbacks.append(self._step)
            resume._triggered = True
            self.env._schedule(resume, delay=0.0)
        else:
            target.callbacks.append(self._step)


class AllOf(Event):
    """Fires when every child event has fired (a barrier).

    The value is the list of child values in the original order.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, _: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed([event.value for event in self._events])


class Environment:
    """Event queue and simulated clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time (s)."""
        return self._now

    def _schedule(self, event: Event, delay: float) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """An untriggered event; fire it later with ``succeed``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator coroutine."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Barrier event over several events."""
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulation time when execution stopped.
        """
        while self._queue:
            fire_time, _, event = self._queue[0]
            if until is not None and fire_time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if fire_time < self._now:
                raise SimulationError(
                    f"time went backwards: {fire_time} < {self._now}"
                )
            self._now = fire_time
            event._fire()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None
                        ) -> float:
        """Execute events until ``event`` has been processed.

        Needed when perpetual processes (epoch controllers) keep the queue
        non-empty forever.  ``limit`` bounds simulated time as a hang
        guard; exceeding it raises :class:`SimulationError`.
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError(
                    "event queue drained before the awaited event fired"
                )
            fire_time, _, next_event = heapq.heappop(self._queue)
            if limit is not None and fire_time > limit:
                raise SimulationError(
                    f"simulation exceeded time limit {limit} s"
                )
            self._now = fire_time
            next_event._fire()
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]
