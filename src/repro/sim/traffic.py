"""Synthetic traffic generation: link-level patterns and request arrivals.

The interposer-network papers the platform builds on (PROWAVES [11],
ReSiPI [37], DeFT [40]) characterise their fabrics with synthetic
patterns before running applications.  This module provides the standard
patterns adapted to the hub-shaped chiplet system (one memory node,
N compute nodes):

* ``hotspot``   — every compute chiplet reads from memory (DNN-like),
* ``writeback`` — every compute chiplet writes to memory,
* ``mixed``     — reads and writes in a configurable ratio,
* ``uniform``   — chiplet-to-chiplet traffic routed through memory
  (the fabrics expose only the memory hub, matching Section V's
  traffic classes).

It also provides the **request arrival processes** the serving layer
(:mod:`repro.serving`) feeds the scheduler from:

* :class:`PoissonArrivals`   — memoryless open-loop stream,
* :class:`MMPPArrivals`      — bursty two-state Markov-modulated
  Poisson process (high/low intensity phases),
* :class:`ClosedLoopClients` — N clients that think, issue one request,
  and wait for its completion before the next (load self-throttles).

Generators inject fixed-size messages with exponential inter-arrival
times from a deterministic seeded RNG, so characterisation sweeps and
serving studies are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..interposer.base import InterposerFabric
from ..sim.core import Environment
from ..sim.stats import LatencyRecorder


@dataclass(frozen=True)
class TrafficPattern:
    """A synthetic offered-load description.

    Parameters
    ----------
    name:
        Pattern kind: ``hotspot``, ``writeback``, ``mixed``, ``uniform``.
    offered_load_bps:
        Aggregate injection rate across all compute chiplets.
    message_bits:
        Size of each injected message.
    read_fraction:
        Fraction of messages that are reads (used by ``mixed``).
    duration_s:
        Injection window; the run drains after injection stops.
    seed:
        RNG seed for arrival times and source selection.
    """

    name: str = "hotspot"
    offered_load_bps: float = 1e12
    message_bits: float = 1e6
    read_fraction: float = 0.7
    duration_s: float = 100e-6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.name not in ("hotspot", "writeback", "mixed", "uniform"):
            raise ConfigurationError(f"unknown pattern {self.name!r}")
        if self.offered_load_bps <= 0 or self.message_bits <= 0:
            raise ConfigurationError("load and message size must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read fraction must be in [0, 1]")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")


@dataclass
class TrafficReport:
    """Outcome of one characterisation run."""

    pattern: TrafficPattern
    messages_injected: int = 0
    bits_injected: float = 0.0
    completion_time_s: float = 0.0
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def achieved_throughput_bps(self) -> float:
        """Delivered bits over the full run (injection + drain)."""
        if self.completion_time_s <= 0:
            return 0.0
        return self.bits_injected / self.completion_time_s

    @property
    def mean_latency_s(self) -> float:
        return self.latencies.mean

    @property
    def saturated(self) -> bool:
        """Whether the fabric could not keep up with the offered load."""
        return self.achieved_throughput_bps < 0.9 * (
            self.pattern.offered_load_bps
        )


class TrafficGenerator:
    """Injects a synthetic pattern into any interposer fabric."""

    def __init__(self, env: Environment, fabric: InterposerFabric,
                 compute_chiplets: tuple[str, ...],
                 pattern: TrafficPattern):
        if not compute_chiplets:
            raise ConfigurationError("need at least one compute chiplet")
        self.env = env
        self.fabric = fabric
        self.compute_chiplets = compute_chiplets
        self.pattern = pattern
        self.report = TrafficReport(pattern=pattern)
        self._rng = np.random.default_rng(pattern.seed)
        self._inflight = []

    def _is_read(self) -> bool:
        if self.pattern.name == "hotspot":
            return True
        if self.pattern.name == "writeback":
            return False
        return bool(self._rng.random() < self.pattern.read_fraction)

    def _message_proc(self, chiplet: str, is_read: bool):
        start = self.env.now
        if is_read:
            yield self.fabric.read(chiplet, self.pattern.message_bits)
        else:
            yield self.fabric.write(chiplet, self.pattern.message_bits)
        self.report.latencies.record(self.env.now - start)

    def _injector(self):
        mean_gap = self.pattern.message_bits / self.pattern.offered_load_bps
        while self.env.now < self.pattern.duration_s:
            yield self.env.timeout(
                float(self._rng.exponential(mean_gap))
            )
            chiplet = self.compute_chiplets[
                int(self._rng.integers(len(self.compute_chiplets)))
            ]
            proc = self.env.process(
                self._message_proc(chiplet, self._is_read())
            )
            self._inflight.append(proc)
            self.report.messages_injected += 1
            self.report.bits_injected += self.pattern.message_bits

    def run(self, drain_limit_s: float = 10.0) -> TrafficReport:
        """Inject for the pattern duration, then drain all messages."""
        injector = self.env.process(self._injector())
        self.env.run_until_event(injector, limit=drain_limit_s)
        if self._inflight:
            barrier = self.env.all_of(self._inflight)
            self.env.run_until_event(barrier, limit=drain_limit_s)
        self.report.completion_time_s = self.env.now
        return self.report


# ---------------------------------------------------------------------------
# Request arrival processes (the serving layer's offered load).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop memoryless request stream at ``rate_rps`` requests/s."""

    rate_rps: float
    seed: int = 7
    kind: str = "poisson"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate_rps}"
            )

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average offered rate (requests/s)."""
        return self.rate_rps

    def gaps(self) -> Iterator[float]:
        """Infinite deterministic stream of inter-arrival gaps (s)."""
        rng = np.random.default_rng(self.seed)
        mean_gap = 1.0 / self.rate_rps
        while True:
            yield float(rng.exponential(mean_gap))

    def arrival_times(self, duration_s: float) -> np.ndarray:
        """All arrival times in ``(0, duration_s]``, vectorized.

        Consumes the same seeded RNG stream as :meth:`gaps` in batched
        draws (numpy ``Generator`` fills arrays with the identical
        sample sequence), so the returned times — and therefore the
        injected-request count — are bit-equal to what the open-loop
        injector produces one event at a time.
        """
        rng = np.random.default_rng(self.seed)
        mean_gap = 1.0 / self.rate_rps
        chunk = max(1024, int(self.rate_rps * duration_s * 1.1) + 16)
        pieces: list[np.ndarray] = []
        last = 0.0
        while True:
            times = last + np.cumsum(rng.exponential(mean_gap, size=chunk))
            if times[-1] > duration_s:
                pieces.append(times[times <= duration_s])
                return np.concatenate(pieces)
            pieces.append(times)
            last = float(times[-1])


@dataclass(frozen=True)
class MMPPArrivals:
    """Bursty two-state Markov-modulated Poisson process.

    The process alternates between a *high* and a *low* intensity phase
    with exponentially distributed dwell times of mean ``dwell_s``.
    ``burstiness`` is the high/low rate ratio; the phase rates are
    chosen so the long-run average equals ``rate_rps`` (equal expected
    time in each phase), so MMPP and Poisson points at the same
    ``rate_rps`` are directly comparable on a latency–throughput curve.
    """

    rate_rps: float
    burstiness: float = 4.0
    dwell_s: float = 20e-6
    seed: int = 7
    kind: str = "mmpp"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate_rps}"
            )
        if self.burstiness < 1.0:
            raise ConfigurationError(
                f"burstiness must be >= 1, got {self.burstiness}"
            )
        if self.dwell_s <= 0:
            raise ConfigurationError(
                f"dwell time must be positive, got {self.dwell_s}"
            )

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    @property
    def phase_rates_rps(self) -> tuple[float, float]:
        """(low, high) phase intensities averaging to ``rate_rps``."""
        low = 2.0 * self.rate_rps / (1.0 + self.burstiness)
        return low, low * self.burstiness

    def gaps(self) -> Iterator[float]:
        """Infinite deterministic stream of inter-arrival gaps (s)."""
        rng = np.random.default_rng(self.seed)
        low, high = self.phase_rates_rps
        rate = high  # bursts first: stresses admission immediately
        phase_left = float(rng.exponential(self.dwell_s))
        waited = 0.0
        while True:
            candidate = float(rng.exponential(1.0 / rate))
            if candidate <= phase_left:
                phase_left -= candidate
                yield waited + candidate
                waited = 0.0
            else:
                # No arrival before the phase ends: advance to the
                # boundary, switch intensity, and resample — exact by
                # the memorylessness of the within-phase process.
                waited += phase_left
                rate = low if rate == high else high
                phase_left = float(rng.exponential(self.dwell_s))

    def arrival_times(self, duration_s: float) -> np.ndarray:
        """All arrival times in ``(0, duration_s]``.

        The two-state modulation is inherently sequential, so this
        walks :meth:`gaps` (same stream, same times as the event-driven
        injector) instead of batching draws.
        """
        times: list[float] = []
        now = 0.0
        for gap in self.gaps():
            now += gap
            if now > duration_s:
                break
            times.append(now)
        return np.array(times, dtype=float)


@dataclass(frozen=True)
class ClosedLoopClients:
    """N clients issuing one request each, thinking between requests.

    Offered load self-throttles: a client only issues its next request
    after the previous one completed and an exponential think time of
    mean ``think_time_s`` elapsed — the classic closed-loop model whose
    throughput saturates instead of its queue exploding.
    """

    n_clients: int
    think_time_s: float = 10e-6
    seed: int = 7
    kind: str = "closed"

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError(
                f"need at least one client, got {self.n_clients}"
            )
        if self.think_time_s < 0:
            raise ConfigurationError(
                f"think time must be non-negative, got {self.think_time_s}"
            )

    @property
    def mean_rate_rps(self) -> float:
        """Upper bound on offered rate (zero service time)."""
        if self.think_time_s <= 0:
            return float("inf")
        return self.n_clients / self.think_time_s

    def think_gaps(self, client_index: int) -> Iterator[float]:
        """Deterministic per-client stream of think gaps (s)."""
        rng = np.random.default_rng((self.seed, client_index))
        while True:
            if self.think_time_s <= 0:
                yield 0.0
            else:
                yield float(rng.exponential(self.think_time_s))


ARRIVAL_KINDS = {
    "poisson": PoissonArrivals,
    "mmpp": MMPPArrivals,
    "closed": ClosedLoopClients,
}
"""Arrival-process constructors keyed by CLI/serving-study kind name."""
