"""Synthetic traffic generation for network characterisation.

The interposer-network papers the platform builds on (PROWAVES [11],
ReSiPI [37], DeFT [40]) characterise their fabrics with synthetic
patterns before running applications.  This module provides the standard
patterns adapted to the hub-shaped chiplet system (one memory node,
N compute nodes):

* ``hotspot``   — every compute chiplet reads from memory (DNN-like),
* ``writeback`` — every compute chiplet writes to memory,
* ``mixed``     — reads and writes in a configurable ratio,
* ``uniform``   — chiplet-to-chiplet traffic routed through memory
  (the fabrics expose only the memory hub, matching Section V's
  traffic classes).

Generators inject fixed-size messages with exponential inter-arrival
times from a deterministic seeded RNG, so characterisation sweeps are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..interposer.base import InterposerFabric
from ..sim.core import Environment
from ..sim.stats import LatencyRecorder


@dataclass(frozen=True)
class TrafficPattern:
    """A synthetic offered-load description.

    Parameters
    ----------
    name:
        Pattern kind: ``hotspot``, ``writeback``, ``mixed``, ``uniform``.
    offered_load_bps:
        Aggregate injection rate across all compute chiplets.
    message_bits:
        Size of each injected message.
    read_fraction:
        Fraction of messages that are reads (used by ``mixed``).
    duration_s:
        Injection window; the run drains after injection stops.
    seed:
        RNG seed for arrival times and source selection.
    """

    name: str = "hotspot"
    offered_load_bps: float = 1e12
    message_bits: float = 1e6
    read_fraction: float = 0.7
    duration_s: float = 100e-6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.name not in ("hotspot", "writeback", "mixed", "uniform"):
            raise ConfigurationError(f"unknown pattern {self.name!r}")
        if self.offered_load_bps <= 0 or self.message_bits <= 0:
            raise ConfigurationError("load and message size must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read fraction must be in [0, 1]")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")


@dataclass
class TrafficReport:
    """Outcome of one characterisation run."""

    pattern: TrafficPattern
    messages_injected: int = 0
    bits_injected: float = 0.0
    completion_time_s: float = 0.0
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def achieved_throughput_bps(self) -> float:
        """Delivered bits over the full run (injection + drain)."""
        if self.completion_time_s <= 0:
            return 0.0
        return self.bits_injected / self.completion_time_s

    @property
    def mean_latency_s(self) -> float:
        return self.latencies.mean

    @property
    def saturated(self) -> bool:
        """Whether the fabric could not keep up with the offered load."""
        return self.achieved_throughput_bps < 0.9 * (
            self.pattern.offered_load_bps
        )


class TrafficGenerator:
    """Injects a synthetic pattern into any interposer fabric."""

    def __init__(self, env: Environment, fabric: InterposerFabric,
                 compute_chiplets: tuple[str, ...],
                 pattern: TrafficPattern):
        if not compute_chiplets:
            raise ConfigurationError("need at least one compute chiplet")
        self.env = env
        self.fabric = fabric
        self.compute_chiplets = compute_chiplets
        self.pattern = pattern
        self.report = TrafficReport(pattern=pattern)
        self._rng = np.random.default_rng(pattern.seed)
        self._inflight = []

    def _is_read(self) -> bool:
        if self.pattern.name == "hotspot":
            return True
        if self.pattern.name == "writeback":
            return False
        return bool(self._rng.random() < self.pattern.read_fraction)

    def _message_proc(self, chiplet: str, is_read: bool):
        start = self.env.now
        if is_read:
            yield self.fabric.read(chiplet, self.pattern.message_bits)
        else:
            yield self.fabric.write(chiplet, self.pattern.message_bits)
        self.report.latencies.record(self.env.now - start)

    def _injector(self):
        mean_gap = self.pattern.message_bits / self.pattern.offered_load_bps
        while self.env.now < self.pattern.duration_s:
            yield self.env.timeout(
                float(self._rng.exponential(mean_gap))
            )
            chiplet = self.compute_chiplets[
                int(self._rng.integers(len(self.compute_chiplets)))
            ]
            proc = self.env.process(
                self._message_proc(chiplet, self._is_read())
            )
            self._inflight.append(proc)
            self.report.messages_injected += 1
            self.report.bits_injected += self.pattern.message_bits

    def run(self, drain_limit_s: float = 10.0) -> TrafficReport:
        """Inject for the pattern duration, then drain all messages."""
        injector = self.env.process(self._injector())
        self.env.run_until_event(injector, limit=drain_limit_s)
        if self._inflight:
            barrier = self.env.all_of(self._inflight)
            self.env.run_until_event(barrier, limit=drain_limit_s)
        self.report.completion_time_s = self.env.now
        return self.report
