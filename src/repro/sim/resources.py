"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — counted semaphore with FIFO queueing; models
  routers, gateway front-ends, memory ports.
* :class:`Store` — unbounded FIFO message queue; models buffers.
* :class:`BandwidthChannel` — a serial transmission medium: each transfer
  occupies the channel for ``bits / bandwidth`` seconds, FIFO.  Models a
  waveguide (with its wavelength comb aggregated into one bandwidth
  figure) or an electrical link.  Bandwidth may be changed at runtime —
  that is exactly what the reconfiguration controllers do — and in-flight
  transfers are unaffected (they were admitted at the old rate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Generator

from ..errors import SimulationError
from .core import Environment, Event


@dataclass(frozen=True)
class ChannelStat:
    """Utilization snapshot of one :class:`Resource` or
    :class:`BandwidthChannel`, taken at the end of a run.

    Attached to the execution trace (and exported with results) so that
    runs farmed out to worker processes remain debuggable: the snapshot
    travels with the pickled :class:`~repro.core.metrics.InferenceResult`
    even though the simulation objects themselves do not.
    """

    name: str
    utilization: float
    busy_time_s: float
    bits_transferred: float = 0.0
    transfer_count: int = 0
    queue_length: int = 0


class Resource:
    """A counted resource with FIFO request queueing."""

    __slots__ = ("env", "capacity", "_in_use", "_waiting", "_busy_since",
                 "_busy_time")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        # Busy-time integration for utilization reporting.
        self._busy_since: float | None = None
        self._busy_time = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._waiting)

    def request(self) -> Event:
        """Acquire a slot; the returned event fires when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiting.append(event)
        return event

    def _grant(self, event: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.env.now
        self._in_use += 1
        event.succeed()

    def release(self) -> None:
        """Release one held slot; grants the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiting:
            self._grant(self._waiting.popleft())

    def busy_time(self) -> float:
        """Total time the resource had at least one holder (s)."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    def utilization(self) -> float:
        """Fraction of elapsed time the resource was busy."""
        if self.env.now == 0.0:
            return 0.0
        return self.busy_time() / self.env.now

    def stats(self, name: str = "resource") -> ChannelStat:
        """Snapshot utilization for trace export."""
        return ChannelStat(
            name=name,
            utilization=self.utilization(),
            busy_time_s=self.busy_time(),
            queue_length=self.queue_length,
        )


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Take the oldest item; the event fires with the item as value."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class BandwidthChannel:
    """A serial channel: transfers occupy it for ``bits / bandwidth``.

    The channel is callback-driven rather than process-driven: a
    transfer is ``(bits, fn)`` — the channel holds for the
    serialization time (computed when the transfer is *granted*, so
    queued transfers pick up rate changes and in-flight ones do not),
    then invokes ``fn``.  FIFO among all transfers.  This is the
    hottest path of every fabric simulation: one heap event per chunk,
    no coroutine frame, no per-chunk resource events.  The generator
    :meth:`transfer` API is kept for process-style callers and shares
    the same FIFO.
    """

    __slots__ = ("env", "name", "_bandwidth_bps", "_waiting", "_busy",
                 "_busy_since", "_busy_time", "_active_bits", "_active_fn",
                 "_complete_cb", "bits_transferred", "transfer_count")

    def __init__(self, env: Environment, bandwidth_bps: float,
                 name: str = "channel"):
        if bandwidth_bps <= 0:
            raise SimulationError(
                f"channel {name!r} bandwidth must be positive"
            )
        self.env = env
        self.name = name
        self._bandwidth_bps = bandwidth_bps
        self._waiting: Deque[tuple[float, Any]] = deque()
        self._busy = False
        self._busy_since: float | None = None
        self._busy_time = 0.0
        self._active_bits = 0.0
        self._active_fn: Any = None
        self._complete_cb = self._complete  # bind once, reuse per chunk
        self.bits_transferred = 0.0
        self.transfer_count = 0

    @property
    def bandwidth_bps(self) -> float:
        """Current channel bandwidth (b/s)."""
        return self._bandwidth_bps

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Reconfigure the channel rate (controllers call this per epoch)."""
        if bandwidth_bps <= 0:
            raise SimulationError(
                f"channel {self.name!r} bandwidth must be positive"
            )
        self._bandwidth_bps = bandwidth_bps

    def serialization_time(self, bits: float) -> float:
        """Time to clock ``bits`` onto the channel at the current rate (s)."""
        if bits < 0:
            raise SimulationError("cannot transfer negative bits")
        return bits / self._bandwidth_bps

    def request_transfer(self, bits: float, fn) -> None:
        """Queue one transfer; ``fn()`` runs when it completes.

        The fast path for chunk pipelines: grants immediately on an
        idle channel, otherwise queues FIFO behind every earlier
        transfer (including :meth:`transfer`-issued ones).
        """
        if bits < 0:
            raise SimulationError("cannot transfer negative bits")
        if self._busy:
            self._waiting.append((bits, fn))
            return
        self._busy = True
        self._busy_since = self.env.now
        self._start(bits, fn)

    def _start(self, bits: float, fn) -> None:
        # Hold time is locked in at grant time: later rate changes only
        # affect transfers still waiting.
        self._active_bits = bits
        self._active_fn = fn
        timeout = self.env.timeout(bits / self._bandwidth_bps)
        timeout.callbacks = self._complete_cb

    def _complete(self, _event: Event) -> None:
        bits = self._active_bits
        fn = self._active_fn
        self.bits_transferred += bits
        self.transfer_count += 1
        if self._waiting:
            next_bits, next_fn = self._waiting.popleft()
            self._start(next_bits, next_fn)
        else:
            self._busy = False
            self._busy_time += self.env.now - self._busy_since
            self._busy_since = None
            self._active_fn = None
        fn()

    def transfer(self, bits: float,
                 extra_latency_s: float = 0.0) -> Generator[Event, Any, None]:
        """Process: occupy the channel for the serialization time.

        ``extra_latency_s`` (propagation, conversion) is added *after* the
        channel is released — it is pipeline latency, not occupancy.
        """
        done = Event(self.env)
        self.request_transfer(bits, done.succeed)
        yield done
        if extra_latency_s > 0.0:
            yield self.env.timeout(extra_latency_s)

    def busy_time(self) -> float:
        """Total time the channel carried a transfer (s)."""
        total = self._busy_time
        if self._busy_since is not None:
            total += self.env.now - self._busy_since
        return total

    def utilization(self) -> float:
        """Fraction of simulated time the channel carried a transfer."""
        if self.env.now == 0.0:
            return 0.0
        return self.busy_time() / self.env.now

    @property
    def queue_length(self) -> int:
        """Transfers currently waiting for the channel."""
        return len(self._waiting)

    def stats(self) -> ChannelStat:
        """Snapshot utilization/traffic counters for trace export."""
        return ChannelStat(
            name=self.name,
            utilization=self.utilization(),
            busy_time_s=self.busy_time(),
            bits_transferred=self.bits_transferred,
            transfer_count=self.transfer_count,
            queue_length=self.queue_length,
        )
