"""Discrete-event simulation kernel and shared-resource primitives."""

from .core import AllOf, Environment, Event, Process, Timeout
from .resources import BandwidthChannel, ChannelStat, Resource, Store
from .stats import EpochTrafficMonitor, LatencyRecorder, TimeWeightedValue

__all__ = [
    "AllOf",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "BandwidthChannel",
    "ChannelStat",
    "Resource",
    "Store",
    "EpochTrafficMonitor",
    "LatencyRecorder",
    "TimeWeightedValue",
]
