"""Span recording and Chrome trace-event export.

A :class:`TraceRecorder` collects typed spans (sim-time begin/end on a
named track) and instant events while a serving simulation runs.  The
instrumented layers — scheduler, engine, residency, lifecycle, router —
hold an optional recorder reference that is ``None`` on the untraced
path, so the cost of an unarmed run is one attribute comparison per
instrumentation point.

Tracks map onto Chrome trace-event *threads*: one track per sampled
request (its queue wait, execution, prefill and decode nest on it), one
per lifecycle attempt (hedged attempts overlap, so each physical
attempt needs its own timeline), and one per shared facility (the
decode pool, the router).  :func:`chrome_trace_json` renders matched
``B``/``E`` duration pairs plus ``i`` instants and ``C`` counter
samples — the JSON loads directly in Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..errors import SimulationError

_KNUTH = 2654435761
"""Multiplicative hash constant: deterministic, seedless per-request
sampling that is identical across worker processes."""


@dataclass(frozen=True)
class Span:
    """One closed span: ``name`` ran on ``track`` over [begin, end]."""

    track: str
    name: str
    begin_s: float
    end_s: float
    depth: int = 0
    args: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class Instant:
    """One point event on a track (a routing decision, a retry, ...)."""

    track: str
    name: str
    at_s: float
    args: tuple[tuple[str, Any], ...] = ()


def _freeze_args(args: Mapping[str, Any] | None) -> tuple:
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass
class TraceRecorder:
    """Collects spans/instants in sim time; owned by one simulation.

    ``begin``/``end`` follow stack discipline per track (spans on one
    track must nest); ``add`` records an already-closed span whose
    bounds the instrumentation site knows post hoc (e.g. the queue-wait
    span, closed at dispatch).  Depth is tracked so the exporter can
    order same-timestamp begin/end events consistently.
    """

    env: Any
    sample_rate: float = 1.0
    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    sampled_requests: int = 0
    _open: dict[str, list[tuple[str, float, tuple]]] = field(
        default_factory=dict
    )

    def sampled(self, request_id: int) -> bool:
        """Whether this request's lifecycle is traced (deterministic)."""
        if self.sample_rate >= 1.0:
            return True
        bucket = ((request_id * _KNUTH) & 0xFFFFFFFF) / 4294967296.0
        return bucket < self.sample_rate

    def note_sampled(self) -> None:
        """Count one request admitted into the trace."""
        self.sampled_requests += 1

    def begin(self, track: str, name: str,
              args: Mapping[str, Any] | None = None) -> None:
        """Open a span on ``track`` at the current sim time."""
        stack = self._open.setdefault(track, [])
        stack.append((name, self.env.now, _freeze_args(args)))

    def end(self, track: str) -> None:
        """Close the innermost open span on ``track``."""
        stack = self._open.get(track)
        if not stack:
            raise SimulationError(
                f"TraceRecorder.end on track {track!r} with no open span"
            )
        name, begin_s, args = stack.pop()
        self.spans.append(Span(
            track=track, name=name, begin_s=begin_s, end_s=self.env.now,
            depth=len(stack), args=args,
        ))

    def add(self, track: str, name: str, begin_s: float, end_s: float,
            depth: int = 0, args: Mapping[str, Any] | None = None) -> None:
        """Record an already-closed span with known bounds."""
        self.spans.append(Span(
            track=track, name=name, begin_s=begin_s, end_s=end_s,
            depth=depth, args=_freeze_args(args),
        ))

    def instant(self, track: str, name: str,
                args: Mapping[str, Any] | None = None) -> None:
        """Record a point event on ``track`` at the current sim time."""
        self.instants.append(Instant(
            track=track, name=name, at_s=self.env.now,
            args=_freeze_args(args),
        ))

    def close_open_spans(self) -> None:
        """Close any span still open (a request alive at window end)."""
        for track in sorted(self._open):
            while self._open[track]:
                self.end(track)
        self._open.clear()


# ---------------------------------------------------------------------------
# Chrome trace-event export.
# ---------------------------------------------------------------------------


def chrome_trace_events(
    summaries: Sequence[tuple[str, Any]],
) -> list[dict[str, Any]]:
    """Chrome trace events for one or more telemetry summaries.

    ``summaries`` is ``[(process_label, TelemetrySummary), ...]`` — each
    summary becomes one trace *process* (pid) so multi-cell studies load
    as side-by-side processes in Perfetto.  Duration spans render as
    matched ``B``/``E`` pairs, instants as ``i`` events and metric
    series as ``C`` counters; timestamps are sim time in microseconds.
    """
    events: list[dict[str, Any]] = []
    for pid, (label, summary) in enumerate(summaries):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        tids: dict[str, int] = {}

        def tid_of(track: str, tids=tids, pid=pid) -> int:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": track},
                })
            return tid

        # B/E pairs cannot be sorted independently — a zero-width span
        # would close before it opens.  Each track's sequence is instead
        # rebuilt by an interval walk: spans sorted outermost-first, a
        # stack closing every span that ends at-or-before the next
        # span's begin (so an E at t precedes an unrelated B at t while
        # a span still covering t stays open around it).
        by_track: dict[str, list] = {}
        for span in summary.spans:
            by_track.setdefault(span.track, []).append(span)
        timed: list[tuple[tuple, dict[str, Any]]] = []
        for track, spans in by_track.items():
            tid = tid_of(track)
            spans.sort(key=lambda s: (s.begin_s, -s.end_s, s.depth))
            sequence = 0
            stack: list = []

            def close(span, tid=tid) -> dict[str, Any]:
                return {"name": span.name, "ph": "E", "pid": pid,
                        "tid": tid, "ts": span.end_s * 1e6}

            for span in spans:
                while stack and stack[-1].end_s <= span.begin_s:
                    top = stack.pop()
                    timed.append((
                        (tid, top.end_s * 1e6, 0, sequence), close(top)
                    ))
                    sequence += 1
                timed.append((
                    (tid, span.begin_s * 1e6, 0, sequence),
                    {"name": span.name, "ph": "B", "pid": pid,
                     "tid": tid, "ts": span.begin_s * 1e6,
                     "args": dict(span.args)},
                ))
                sequence += 1
                stack.append(span)
            while stack:
                top = stack.pop()
                timed.append((
                    (tid, top.end_s * 1e6, 0, sequence), close(top)
                ))
                sequence += 1
        for inst in summary.instants:
            tid = tid_of(inst.track)
            at_us = inst.at_s * 1e6
            timed.append((
                (tid, at_us, 1, 0),
                {"name": inst.name, "ph": "i", "s": "t", "pid": pid,
                 "tid": tid, "ts": at_us, "args": dict(inst.args)},
            ))
        timed.sort(key=lambda item: item[0])
        events.extend(event for _, event in timed)
        for name, samples in summary.series:
            tid = tid_of(name)
            for at_s, value in samples:
                events.append({
                    "name": name, "ph": "C", "pid": pid, "tid": tid,
                    "ts": at_s * 1e6, "args": {"value": value},
                })
    return events


def chrome_trace_json(summaries: Sequence[tuple[str, Any]]) -> str:
    """The full Chrome trace-event JSON document for ``summaries``."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(summaries),
         "displayTimeUnit": "ns"},
        indent=None, separators=(",", ":"),
    )


def validate_chrome_trace(events: Iterable[Mapping[str, Any]]) -> None:
    """Raise :class:`SimulationError` unless ``events`` is well formed.

    Checks the invariants Perfetto needs: every ``B`` has a matching
    same-name ``E`` on its (pid, tid) track, stack discipline holds, and
    per-track timestamps are monotone non-decreasing.  Used by the
    trace-schema tests and usable against any loaded trace file.
    """
    stacks: dict[tuple, list[tuple[str, float]]] = {}
    last_ts: dict[tuple, float] = {}
    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E", "i", "C", "M"):
            raise SimulationError(f"unknown trace event phase {phase!r}")
        if phase == "M":
            continue
        key = (event.get("pid"), event.get("tid"))
        ts = float(event["ts"])
        if ts < last_ts.get(key, float("-inf")):
            raise SimulationError(
                f"non-monotone timestamps on track {key}: {ts} after "
                f"{last_ts[key]}"
            )
        last_ts[key] = ts
        if phase == "B":
            stacks.setdefault(key, []).append((event["name"], ts))
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                raise SimulationError(
                    f"unmatched E event {event.get('name')!r} on {key}"
                )
            name, begin_ts = stack.pop()
            if name != event["name"]:
                raise SimulationError(
                    f"mismatched span nesting on {key}: E "
                    f"{event['name']!r} closes B {name!r}"
                )
            if ts < begin_ts:
                raise SimulationError(
                    f"span {name!r} on {key} ends before it begins"
                )
    dangling = {key: stack for key, stack in stacks.items() if stack}
    if dangling:
        raise SimulationError(
            f"unclosed B events on tracks: {sorted(dangling)}"
        )
