"""Counters, sampled gauges and log-bucketed histograms in sim time.

A :class:`MetricsRegistry` is owned by one simulation cell.  Gauges are
registered as zero-argument callbacks (queue depth, inflight, residency
occupancy, MAC/channel utilization, routable nodes) and sampled by a
perpetual simulation process on a fixed sim-time interval — safe under
the serving layer's ``run_until_event`` drain, which exits when the
drained barrier fires regardless of pending sampler timeouts, and
side-effect-free, so armed metrics never perturb request records.

Histograms use power-of-two buckets (each observation lands in the
bucket whose upper bound is the next power of two), the classic
log-bucketing that keeps tails visible at constant memory.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from ..errors import SimulationError

_BLOCKS = " .:-=+*#%@"
"""ASCII intensity ramp for sparklines (space = zero/min)."""


class MetricsRegistry:
    """Counters + gauge time series + log-bucketed histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self.series: dict[str, list[tuple[float, float]]] = {}
        self.histograms: dict[str, dict[float, int]] = {}

    # -- counters ------------------------------------------------------------------

    def inc(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    # -- histograms ----------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Drop ``value`` into its power-of-two bucket of ``name``."""
        if value <= 0:
            bucket = 0.0
        else:
            bucket = 2.0 ** math.ceil(math.log2(value))
        buckets = self.histograms.setdefault(name, {})
        buckets[bucket] = buckets.get(bucket, 0) + 1

    # -- gauges --------------------------------------------------------------------

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge callback sampled on every tick."""
        if name in self._gauges:
            raise SimulationError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self.series[name] = []

    def sample(self, now: float) -> None:
        """Append one sample of every gauge at sim time ``now``."""
        for name, fn in self._gauges.items():
            self.series[name].append((now, float(fn())))

    def start_sampler(self, env: Any, interval_s: float) -> None:
        """Launch the perpetual sampling process (one tick per interval).

        The first sample lands at t = ``env.now`` so every series has a
        baseline point; the process never terminates — callers must
        drain via ``run_until_event``, which all serving entry points
        do.
        """
        if interval_s <= 0:
            raise SimulationError(
                f"sampling interval must be positive, got {interval_s}"
            )
        self.sample(env.now)

        def _sampler():
            while True:
                yield env.timeout(interval_s)
                self.sample(env.now)

        env.process(_sampler())


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """ASCII sparkline of ``values`` resampled to ``width`` columns."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket-wise max keeps short spikes visible after resampling.
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))])
            for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _BLOCKS[0] * len(values)
    scale = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[int(round((value - low) / span * scale))]
        for value in values
    )


def render_sparklines(
    series: Sequence[tuple[str, Sequence[tuple[float, float]]]],
    width: int = 48,
) -> str:
    """One sparkline row per metric series (name, min/max annotated)."""
    lines = []
    for name, samples in series:
        values = [value for _, value in samples]
        if not values:
            continue
        lines.append(
            f"{name:<24}|{sparkline(values, width)}| "
            f"min {min(values):.3g}  max {max(values):.3g}  "
            f"last {values[-1]:.3g}"
        )
    return "\n".join(lines)
