"""One cell's telemetry session and its picklable summary.

A :class:`TelemetrySession` is created inside the simulation worker
when a cell carries an armed :class:`~repro.obs.policy.TelemetryPolicy`:
it owns the (optional) :class:`~repro.obs.trace.TraceRecorder` and the
:class:`~repro.obs.metrics.MetricsRegistry`, and at the end of the run
freezes both into a :class:`TelemetrySummary` — plain immutable data
that rides on the ``ServingResult`` / ``ClusterResult`` through the
on-disk cache and the export layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .metrics import MetricsRegistry, render_sparklines
from .policy import TelemetryPolicy
from .trace import Instant, Span, TraceRecorder


@dataclass(frozen=True)
class TelemetrySummary:
    """Frozen telemetry outcome of one simulation cell.

    Everything is tuples so results with telemetry attached compare and
    pickle exactly like legacy results — the determinism tests rely on
    summary equality across serial / fanned-out / cached runs.
    """

    policy_label: str
    sample_rate: float
    sampled_requests: int
    total_requests: int
    spans: tuple[Span, ...] = ()
    instants: tuple[Instant, ...] = ()
    counters: tuple[tuple[str, float], ...] = ()
    series: tuple[tuple[str, tuple[tuple[float, float], ...]], ...] = ()
    histograms: tuple[
        tuple[str, tuple[tuple[float, int], ...]], ...
    ] = ()

    @property
    def span_count(self) -> int:
        return len(self.spans)

    def render_sparklines(self, width: int = 48) -> str:
        """ASCII sparkline block of every gauge series."""
        return render_sparklines(self.series, width=width)


class TelemetrySession:
    """Builds, attaches and finally freezes one cell's telemetry."""

    def __init__(self, env: Any, policy: TelemetryPolicy):
        self.env = env
        self.policy = policy
        self.recorder = (
            TraceRecorder(env, sample_rate=policy.sample_rate)
            if policy.trace else None
        )
        self.metrics = MetricsRegistry()

    def start(self, duration_s: float) -> None:
        """Start the gauge sampler for a serving window."""
        self.metrics.start_sampler(
            self.env, self.policy.interval_for(duration_s)
        )

    def summary(self, total_requests: int) -> TelemetrySummary:
        """Freeze the session into its picklable summary."""
        recorder = self.recorder
        if recorder is not None:
            recorder.close_open_spans()
        metrics = self.metrics
        return TelemetrySummary(
            policy_label=self.policy.label,
            sample_rate=self.policy.sample_rate,
            sampled_requests=(
                recorder.sampled_requests if recorder is not None else 0
            ),
            total_requests=total_requests,
            spans=tuple(recorder.spans) if recorder is not None else (),
            instants=(
                tuple(recorder.instants) if recorder is not None else ()
            ),
            counters=tuple(sorted(metrics.counters.items())),
            series=tuple(
                (name, tuple(samples))
                for name, samples in metrics.series.items()
            ),
            histograms=tuple(
                (name, tuple(sorted(buckets.items())))
                for name, buckets in sorted(metrics.histograms.items())
            ),
        )


def telemetry_series_to_csv(
    summaries: list[tuple[str, TelemetrySummary]],
) -> str:
    """CSV of every metric time series: cell,series,t_s,value."""
    lines = ["cell,series,t_s,value"]
    for label, summary in summaries:
        for name, samples in summary.series:
            for at_s, value in samples:
                lines.append(f"{label},{name},{at_s!r},{value!r}")
    return "\n".join(lines) + "\n"
