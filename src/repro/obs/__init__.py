"""Simulation-time telemetry: span tracing and time-series metrics.

The observability layer of the serving stack.  Two pillars:

* **Span tracing** (:mod:`repro.obs.trace`): a :class:`TraceRecorder`
  collects typed spans with sim-time begin/end across the request
  lifecycle — queue wait, batch gather, KV/weight admission and fetch,
  prefill and decode steps, retry/hedge attempts, cluster routing —
  and exports Chrome trace-event JSON loadable in Perfetto or
  ``chrome://tracing``.  A configurable per-request sample rate keeps
  million-request studies tractable.

* **Time-series metrics** (:mod:`repro.obs.metrics`): a
  :class:`MetricsRegistry` of counters, gauge callbacks sampled on a
  sim-time interval (queue depth, inflight, KV/weight occupancy, MAC
  and channel utilization, routable nodes) and log-bucketed
  histograms, exported as JSON/CSV time series and rendered as ASCII
  sparklines after ``repro study``.

Everything is armed from the spec layer (``StudySpec.telemetry`` →
:class:`TelemetryPolicy` on the simulation cells); the null path — no
policy — costs nothing beyond a handful of ``is not None`` guards,
which the ``telemetry_null_recorder`` microbenchmark pins.
"""

from .metrics import MetricsRegistry, render_sparklines, sparkline
from .policy import TelemetryPolicy
from .session import TelemetrySession, TelemetrySummary
from .trace import (
    Instant,
    Span,
    TraceRecorder,
    chrome_trace_events,
    chrome_trace_json,
    validate_chrome_trace,
)

__all__ = [
    "Instant",
    "MetricsRegistry",
    "Span",
    "TelemetryPolicy",
    "TelemetrySession",
    "TelemetrySummary",
    "TraceRecorder",
    "chrome_trace_events",
    "chrome_trace_json",
    "render_sparklines",
    "sparkline",
    "telemetry_series_to_csv",
    "validate_chrome_trace",
]

from .session import telemetry_series_to_csv  # noqa: E402  (re-export)
