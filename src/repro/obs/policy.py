"""The picklable telemetry policy simulation cells carry.

The spec layer's :class:`~repro.studies.spec.TelemetrySpec` lowers onto
this frozen twin (:func:`repro.studies.compile.build_telemetry`), the
same pattern as ``ResiliencePolicy`` / ``FidelityPolicy``: cells cross
process-pool boundaries, so the policy must be plain picklable data,
and a degenerate policy is represented as ``None`` on the cell so the
legacy cache keys stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TelemetryPolicy:
    """What to observe during one simulation cell.

    ``trace`` arms span recording; ``sample_rate`` is the fraction of
    requests whose lifecycle is traced (deterministic per request id,
    so serial and fanned-out runs sample identically).  Metrics gauges
    are always sampled while the policy is armed; ``metrics_interval_s``
    overrides the sampling interval (default: duration / 50).
    """

    trace: bool = False
    sample_rate: float = 1.0
    metrics_interval_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_rate <= 1.0:
            raise ConfigurationError(
                f"telemetry sample rate must be in (0, 1], got "
                f"{self.sample_rate}"
            )
        if self.metrics_interval_s is not None and self.metrics_interval_s <= 0:
            raise ConfigurationError(
                f"metrics interval must be positive, got "
                f"{self.metrics_interval_s}"
            )

    def __bool__(self) -> bool:
        """True when any knob departs from the degenerate default."""
        return self != type(self)()

    def interval_for(self, duration_s: float) -> float:
        """The gauge-sampling interval for a serving window."""
        if self.metrics_interval_s is not None:
            return self.metrics_interval_s
        return max(duration_s / 50.0, 1e-9)

    @property
    def label(self) -> str:
        parts = []
        if self.trace:
            parts.append(
                "trace" if self.sample_rate >= 1.0
                else f"trace@{self.sample_rate:g}"
            )
        if self.metrics_interval_s is not None:
            parts.append(f"metrics@{self.metrics_interval_s:g}s")
        elif not parts:
            parts.append("metrics")
        return "telemetry(" + ",".join(parts) + ")"
