"""Result records produced by the inference engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.resources import ChannelStat


@dataclass(frozen=True)
class LayerTiming:
    """Timeline entry for one executed layer."""

    name: str
    start_s: float
    input_ready_s: float
    compute_done_s: float
    end_s: float
    chiplets: tuple[str, ...]
    vector_ops: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by subsystem for one inference (J)."""

    network_static_j: float
    network_dynamic_j: float
    compute_static_j: float
    compute_dynamic_j: float
    logic_static_j: float
    detail_j: dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return (
            self.network_static_j
            + self.network_dynamic_j
            + self.compute_static_j
            + self.compute_dynamic_j
            + self.logic_static_j
        )


@dataclass(frozen=True)
class InferenceResult:
    """Complete outcome of one simulated inference."""

    platform: str
    model: str
    latency_s: float
    energy: EnergyBreakdown
    traffic_bits: float
    layer_timeline: tuple[LayerTiming, ...]
    reconfigurations: int = 0
    batch_size: int = 1
    channel_stats: tuple[ChannelStat, ...] = ()
    """Per-channel utilization snapshot; travels with pickled results so
    runs executed in worker processes stay debuggable."""

    def busiest_channels(self, n: int = 5) -> tuple[ChannelStat, ...]:
        """The ``n`` highest-utilization channels of the run."""
        ranked = sorted(
            self.channel_stats, key=lambda s: s.utilization, reverse=True
        )
        return tuple(ranked[:n])

    @property
    def total_energy_j(self) -> float:
        return self.energy.total_j

    @property
    def latency_per_inference_s(self) -> float:
        """Amortised per-image latency at the run's batch size."""
        return self.latency_s / self.batch_size

    @property
    def throughput_inferences_per_s(self) -> float:
        """Sustained inference rate of the batch run."""
        if self.latency_s <= 0:
            return 0.0
        return self.batch_size / self.latency_s

    @property
    def average_power_w(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.total_energy_j / self.latency_s

    @property
    def energy_per_bit_j(self) -> float:
        """Energy per bit of data moved across the network (the paper's
        EPB metric)."""
        if self.traffic_bits <= 0:
            return 0.0
        return self.total_energy_j / self.traffic_bits

    def summary_row(self) -> str:
        """One formatted line: platform, model, power, latency, EPB."""
        return (
            f"{self.platform:<28}{self.model:<14}"
            f"{self.average_power_w:>9.2f} W"
            f"{self.latency_s * 1e3:>12.4f} ms"
            f"{self.energy_per_bit_j * 1e9:>10.3f} nJ/b"
        )
