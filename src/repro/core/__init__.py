"""The paper's primary contribution: 2.5D chiplet photonic DNN
accelerator platforms and the monolithic baseline."""

from .accelerator import (
    ALL_PLATFORMS,
    CrossLight25DAWGR,
    CrossLight25DElec,
    CrossLight25DSiPh,
    MonolithicCrossLight,
)
from .crosslight import MonolithicFabric, monolithic_mapping
from .analytic import (
    AnalyticEstimate,
    analytic_estimate,
    compute_bound_fraction,
)
from .accuracy import (
    dot_product_snr,
    min_dac_bits_for_effective_bits,
    model_accuracy_report,
    worst_layer,
)
from .engine import ExecutionTrace, InferenceEngine
from .gantt import render_gantt, utilization_summary
from .mac_unit import MacUnitSpec, PhotonicMacUnit
from .metrics import EnergyBreakdown, InferenceResult, LayerTiming

__all__ = [
    "ALL_PLATFORMS",
    "CrossLight25DAWGR",
    "CrossLight25DElec",
    "CrossLight25DSiPh",
    "MonolithicCrossLight",
    "MonolithicFabric",
    "monolithic_mapping",
    "AnalyticEstimate",
    "analytic_estimate",
    "compute_bound_fraction",
    "dot_product_snr",
    "min_dac_bits_for_effective_bits",
    "model_accuracy_report",
    "worst_layer",
    "render_gantt",
    "utilization_summary",
    "ExecutionTrace",
    "InferenceEngine",
    "MacUnitSpec",
    "PhotonicMacUnit",
    "EnergyBreakdown",
    "InferenceResult",
    "LayerTiming",
]
