"""Platform models: the three accelerators the paper evaluates.

* :class:`CrossLight25DSiPh` — 2.5D CrossLight with the ReSiPI-style
  silicon-photonic interposer (the paper's proposal),
* :class:`CrossLight25DElec` — the same chiplets on an electrical mesh
  interposer,
* :class:`MonolithicCrossLight` — the original single-chip CrossLight.

Each platform can stand up a **live simulation context**
(:meth:`build_simulation`): a fabric plus its reconfiguration
controller inside a caller-owned :class:`Environment`.  The one-shot
:meth:`run_workload` path builds a fresh context, drives a single
:class:`InferenceEngine` through it and assembles the energy ledger;
the serving layer (:mod:`repro.serving`) builds the same context once
and streams many concurrent requests through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import DEFAULT_PLATFORM, PlatformConfig
from ..dnn.model import Model
from ..dnn.quantization import QuantizationConfig
from ..dnn.workload import InferenceWorkload, extract_workload
from ..errors import UnknownNameError
from ..interposer.base import InterposerFabric
from ..interposer.electrical.mesh import ElectricalMeshFabric
from ..interposer.photonic.controllers import CONTROLLER_FACTORIES
from ..interposer.photonic.fabric import PhotonicInterposerFabric
from ..interposer.photonic.faults import HazardEngine, HazardTimeline
from ..interposer.topology import build_floorplan
from ..mapping.mapper import KernelMatchMapper, ModelMapping
from ..photonics import constants as ph
from ..photonics.microring import MicroringResonator, TuningMechanism
from ..power import params as ep
from ..power.compute_power import mac_fabric_power
from ..sim.core import Environment
from .crosslight import MonolithicFabric, monolithic_mapping
from .engine import ExecutionTrace, InferenceEngine
from .mac_unit import MacUnitSpec, PhotonicMacUnit
from .metrics import EnergyBreakdown, InferenceResult

TUNING_HOLD_ENERGY_J_PER_LANE_OP = 1e-12
"""EO weight-tuning hold energy per lane per vector pass (~2 mW over a
0.5 ns cycle)."""


@dataclass(frozen=True)
class _ComputeEnergy:
    static_w: float
    dynamic_j: float


@dataclass
class PlatformSimulation:
    """A live simulation context a platform stood up in a caller's env.

    Holds everything an execution needs to run requests against the
    platform: the shared fabric, the (optional) reconfiguration
    controller keeping it alive, the MAC rate, the mapping function and
    the simulated-time hang guard the platform wants.
    """

    platform: "_PlatformBase"
    env: Environment
    fabric: InterposerFabric
    controller: object | None
    mac_rate_hz: float
    map_workload: Callable[[InferenceWorkload], ModelMapping]
    time_limit_s: float = 100.0
    hazards: HazardEngine | None = None

    @property
    def reconfigurations(self) -> int:
        """Fabric reconfiguration count so far (0 for passive fabrics)."""
        return getattr(self.fabric, "reconfiguration_count", 0)


class _PlatformBase:
    """Shared run/report plumbing for all three platforms."""

    name: str = "platform"

    def __init__(self, config: PlatformConfig | None = None):
        self.config = config or DEFAULT_PLATFORM

    # -- entry points ---------------------------------------------------------

    def build_simulation(self, env: Environment) -> PlatformSimulation:
        """Stand up the platform's fabric (+ controller) in ``env``."""
        raise NotImplementedError

    def run_model(self, model: Model,
                  quantization: QuantizationConfig | None = None,
                  batch_size: int = 1) -> InferenceResult:
        """Simulate one (batched) inference of a DNN model description."""
        workload = extract_workload(model, quantization)
        return self.run_workload(workload, batch_size=batch_size)

    def run_workload(self, workload: InferenceWorkload,
                     batch_size: int = 1) -> InferenceResult:
        """One isolated inference on a cold fabric: the one-request case."""
        env = Environment()
        sim = self.build_simulation(env)
        engine = InferenceEngine(
            env, self.config, sim.fabric,
            mac_rate_hz=sim.mac_rate_hz, batch_size=batch_size,
        )
        mapping = sim.map_workload(workload)
        latency = engine.run(mapping, time_limit_s=sim.time_limit_s)
        compute = self._compute_energy(engine.trace, latency)
        return self._assemble_result(
            workload, engine.trace, sim.fabric, latency, compute,
            self._logic_static_w,
            reconfigurations=sim.reconfigurations,
            batch_size=batch_size,
        )

    # -- energy assembly --------------------------------------------------------

    def _compute_energy(self, trace: ExecutionTrace,
                        elapsed_s: float) -> _ComputeEnergy:
        raise NotImplementedError

    @property
    def _logic_static_w(self) -> float:
        raise NotImplementedError

    def trace_compute_energy_j(self, trace: ExecutionTrace,
                               elapsed_s: float) -> float:
        """Total compute-side energy of a trace over ``elapsed_s``.

        Static fabric + chiplet-logic power integrated over the elapsed
        window plus the dynamic energy of every recorded vector op —
        the serving layer's compute ledger for multi-request runs.
        """
        compute = self._compute_energy(trace, elapsed_s)
        return (
            compute.static_w * elapsed_s
            + compute.dynamic_j
            + self._logic_static_w * elapsed_s
        )

    def _vector_op_energy_j(self, vector_length: int) -> float:
        spec = MacUnitSpec(vector_length=vector_length)
        unit = PhotonicMacUnit(spec)
        return (
            unit.energy_per_vector_op_j()
            + vector_length * TUNING_HOLD_ENERGY_J_PER_LANE_OP
        )

    def _assemble_result(self, workload, trace: ExecutionTrace, fabric,
                         latency, compute: _ComputeEnergy,
                         logic_static_w: float,
                         reconfigurations: int = 0,
                         batch_size: int = 1) -> InferenceResult:
        network = fabric.energy_report()
        trace.record_channel_stats(fabric)
        energy = EnergyBreakdown(
            network_static_j=network.static_energy_j,
            network_dynamic_j=network.dynamic_energy_j,
            compute_static_j=compute.static_w * latency,
            compute_dynamic_j=compute.dynamic_j,
            logic_static_j=logic_static_w * latency,
            detail_j=dict(network.breakdown_j),
        )
        return InferenceResult(
            platform=self.name,
            model=workload.model_name,
            latency_s=latency,
            energy=energy,
            traffic_bits=workload.total_traffic_bits * batch_size,
            layer_timeline=tuple(trace.layer_timings),
            reconfigurations=reconfigurations,
            batch_size=batch_size,
            channel_stats=trace.channel_stats,
        )


class _CrossLight25DBase(_PlatformBase):
    """Common 2.5D machinery: floorplan, mapper, chiplet compute power."""

    def __init__(self, config: PlatformConfig | None = None,
                 mapper: KernelMatchMapper | None = None):
        super().__init__(config)
        self.floorplan = build_floorplan(self.config)
        self.mapper = mapper or KernelMatchMapper(self.config, self.floorplan)

    def map(self, workload: InferenceWorkload) -> ModelMapping:
        """Expose the mapping for inspection and tests."""
        return self.mapper.map_workload(workload)

    def _compute_energy(self, trace: ExecutionTrace,
                        elapsed_s: float) -> _ComputeEnergy:
        static_w = 0.0
        for group in self.config.mac_groups:
            breakdown = mac_fabric_power(
                n_units=group.total_macs,
                vector_length=group.vector_length,
                mac_rate_hz=self.config.mac_rate_hz,
                activity=0.0,
                waveguide_length_m=2e-3,
                trimming=TuningMechanism.ELECTRO_OPTIC,
            )
            static_w += breakdown.total_w
        dynamic_j = 0.0
        for kind, vector_ops in trace.vector_ops_by_kind.items():
            group = self.config.group_by_kind(kind)
            dynamic_j += vector_ops * self._vector_op_energy_j(
                group.vector_length
            )
        return _ComputeEnergy(static_w=static_w, dynamic_j=dynamic_j)

    @property
    def _logic_static_w(self) -> float:
        return (
            self.config.n_compute_chiplets * ep.CHIPLET_LOGIC_STATIC_POWER_W
        )


class CrossLight25DSiPh(_CrossLight25DBase):
    """2.5D CrossLight with the silicon-photonic ReSiPI interposer."""

    def __init__(self, config: PlatformConfig | None = None,
                 controller: str = "resipi",
                 mapper: KernelMatchMapper | None = None,
                 faults: HazardTimeline | None = None):
        super().__init__(config, mapper)
        if controller not in CONTROLLER_FACTORIES:
            raise UnknownNameError(
                "controller", controller, sorted(CONTROLLER_FACTORIES)
            )
        self.controller_name = controller
        self.faults = faults
        self.name = "2.5D-CrossLight-SiPh"
        if controller != "resipi":
            self.name += f"[{controller}]"

    def build_simulation(self, env: Environment) -> PlatformSimulation:
        fabric = PhotonicInterposerFabric(env, self.config, self.floorplan)
        # Hazards attach before the controller boots: the ``t=0`` events
        # of a static fault plan constrain the controller's very first
        # decision, exactly like the historical FaultInjector did.
        hazards = (
            HazardEngine(fabric, self.faults) if self.faults else None
        )
        controller = CONTROLLER_FACTORIES[self.controller_name](
            env, fabric, self.config
        )
        return PlatformSimulation(
            platform=self, env=env, fabric=fabric, controller=controller,
            mac_rate_hz=self.config.mac_rate_hz, map_workload=self.map,
            hazards=hazards,
        )


class CrossLight25DElec(_CrossLight25DBase):
    """2.5D CrossLight on the electrical mesh interposer baseline."""

    def __init__(self, config: PlatformConfig | None = None,
                 mapper: KernelMatchMapper | None = None):
        super().__init__(config, mapper)
        self.name = "2.5D-CrossLight-Elec"

    def build_simulation(self, env: Environment) -> PlatformSimulation:
        fabric = ElectricalMeshFabric(env, self.config, self.floorplan)
        return PlatformSimulation(
            platform=self, env=env, fabric=fabric, controller=None,
            mac_rate_hz=self.config.mac_rate_hz, map_workload=self.map,
            time_limit_s=1000.0,
        )


class CrossLight25DAWGR(_CrossLight25DBase):
    """2.5D CrossLight on an AWGR all-to-all interposer ([10]-style).

    Topology ablation baseline: passive cyclic wavelength routing gives
    every chiplet pair a fixed comb slice, with no reconfiguration and
    no broadcast — see :mod:`repro.interposer.photonic.awgr`.
    """

    def __init__(self, config: PlatformConfig | None = None,
                 mapper: KernelMatchMapper | None = None):
        super().__init__(config, mapper)
        self.name = "2.5D-CrossLight-AWGR"

    def build_simulation(self, env: Environment) -> PlatformSimulation:
        from ..interposer.photonic.awgr import AWGRInterposerFabric

        fabric = AWGRInterposerFabric(env, self.config, self.floorplan)
        return PlatformSimulation(
            platform=self, env=env, fabric=fabric, controller=None,
            mac_rate_hz=self.config.mac_rate_hz, map_workload=self.map,
        )


class MonolithicCrossLight(_PlatformBase):
    """The original single-chip CrossLight [21]."""

    def __init__(self, config: PlatformConfig | None = None):
        super().__init__(config)
        self.name = "CrossLight"

    def build_simulation(self, env: Environment) -> PlatformSimulation:
        fabric = MonolithicFabric(env, self.config)

        def map_workload(workload: InferenceWorkload) -> ModelMapping:
            return monolithic_mapping(workload, self.config)

        return PlatformSimulation(
            platform=self, env=env, fabric=fabric, controller=None,
            mac_rate_hz=self.config.mono_mac_rate_hz,
            map_workload=map_workload,
        )

    def _compute_energy(self, trace: ExecutionTrace,
                        elapsed_s: float) -> _ComputeEnergy:
        breakdown = mac_fabric_power(
            n_units=self.config.mono_n_vdp_units,
            vector_length=self.config.mono_vector_length,
            mac_rate_hz=self.config.mono_mac_rate_hz,
            activity=0.0,
            waveguide_length_m=self.config.mono_die_edge_mm * 1e-3,
            trimming=TuningMechanism.THERMO_OPTIC,
        )
        dynamic_j = trace.total_vector_ops * self._vector_op_energy_j(
            self.config.mono_vector_length
        )
        return _ComputeEnergy(
            static_w=breakdown.total_w, dynamic_j=dynamic_j
        )

    @property
    def _logic_static_w(self) -> float:
        return ep.MONO_LOGIC_STATIC_POWER_W


ALL_PLATFORMS = {
    "CrossLight": MonolithicCrossLight,
    "2.5D-CrossLight-Elec": CrossLight25DElec,
    "2.5D-CrossLight-SiPh": CrossLight25DSiPh,
}
"""Platform constructors keyed by the names Table 3 uses."""
