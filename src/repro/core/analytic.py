"""Closed-form analytic performance model.

A fast first-order estimator for the 2.5D photonic platform: per layer,
latency = max(compute, weight fetch, input stream, output drain) with
bandwidths taken at their configured maxima (no contention, no
controller lag).  Two uses:

* **Cross-validation** — the DES must agree with the analytic bound for
  uncontended, compute-bound workloads and may only be *slower*
  otherwise (``tests/test_analytic.py`` asserts both directions).
* **Fast DSE** — sweeps that only need first-order trends run in
  microseconds instead of simulating.
* **Fluid serving model** — the hybrid-fidelity engine
  (:mod:`repro.experiments.fidelity`) feeds per-model service-time
  estimates into the M/G/k machinery below to approximate whole
  serving windows without per-request event processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import PlatformConfig
from ..dnn.workload import InferenceWorkload
from ..errors import ConfigurationError
from ..mapping.mapper import ModelMapping


@dataclass(frozen=True)
class AnalyticLayerEstimate:
    """Closed-form bounds for one layer."""

    name: str
    compute_s: float
    weight_fetch_s: float
    input_stream_s: float
    output_drain_s: float

    @property
    def latency_s(self) -> float:
        """Streaming execution: the slowest of the overlapped phases.

        Weight fetch is prefetched during the previous layer, so it only
        binds when it exceeds the previous layer's span; the max() here
        is therefore a lower bound.
        """
        return max(self.compute_s, self.input_stream_s,
                   self.output_drain_s)

    @property
    def bound_s(self) -> float:
        """Non-overlapped upper bound (everything serial)."""
        return (self.compute_s + self.weight_fetch_s
                + self.input_stream_s + self.output_drain_s)


@dataclass(frozen=True)
class AnalyticEstimate:
    """Whole-model analytic bounds."""

    model_name: str
    layers: tuple[AnalyticLayerEstimate, ...]

    @property
    def lower_bound_s(self) -> float:
        """Sum of per-layer streaming maxima (no contention)."""
        return sum(layer.latency_s for layer in self.layers)

    @property
    def upper_bound_s(self) -> float:
        """Sum of fully serialised phases."""
        return sum(layer.bound_s for layer in self.layers)


def analytic_estimate(
    mapping: ModelMapping,
    config: PlatformConfig,
    workload: InferenceWorkload | None = None,
    mac_fraction: float = 1.0,
) -> AnalyticEstimate:
    """Closed-form latency bounds for a mapped workload on the 2.5D
    photonic platform at full (static) interposer capacity.

    ``mac_fraction`` is the remaining MAC throughput under a
    ``chiplet-mac-degrade`` hazard — it divides the effective MAC rate
    exactly as :class:`~repro.core.engine.ComputeOccupancy` stretches
    the compute phase of every in-flight request, so analytic and DES
    estimates stay comparable inside degraded windows.
    """
    if not 0.0 < mac_fraction <= 1.0:
        raise ConfigurationError(
            f"MAC fraction must be in (0, 1], got {mac_fraction}"
        )
    read_bw = min(
        config.n_memory_write_gateways * config.gateway_bandwidth_bps,
        config.hbm_internal_bandwidth_bps,
    )
    effective_mac_rate_hz = config.mac_rate_hz * mac_fraction
    layers = []
    for layer_mapping in mapping:
        layer = layer_mapping.layer
        compute_s = max(
            (
                alloc.vector_ops / (alloc.n_macs * effective_mac_rate_hz)
                for alloc in layer_mapping.allocations
            ),
            default=0.0,
        )
        # Per-chiplet ingest can bind before the memory side does.
        slowest_ingest = min(
            (
                config.group_by_kind(alloc.kind).gateways_per_chiplet
                * config.gateway_bandwidth_bps
                for alloc in layer_mapping.allocations
            ),
            default=read_bw,
        )
        input_bw = min(read_bw, slowest_ingest)
        weight_fetch_s = layer.weight_bits / read_bw
        input_stream_s = layer.input_bits / input_bw
        write_bw = min(
            (
                config.group_by_kind(alloc.kind).gateways_per_chiplet
                * config.gateway_bandwidth_bps
                for alloc in layer_mapping.allocations
            ),
            default=read_bw,
        )
        output_drain_s = layer.output_bits / min(
            write_bw, config.hbm_internal_bandwidth_bps
        )
        layers.append(
            AnalyticLayerEstimate(
                name=layer.name,
                compute_s=compute_s,
                weight_fetch_s=weight_fetch_s,
                input_stream_s=input_stream_s,
                output_drain_s=output_drain_s,
            )
        )
    if not layers:
        raise ConfigurationError("cannot estimate an empty mapping")
    return AnalyticEstimate(
        model_name=mapping.workload.model_name
        if mapping.workload is not None
        else (workload.model_name if workload else "unknown"),
        layers=tuple(layers),
    )


def compute_bound_fraction(estimate: AnalyticEstimate) -> float:
    """Fraction of layers whose streaming maximum is the compute term."""
    compute_bound = sum(
        1
        for layer in estimate.layers
        if layer.compute_s >= max(layer.input_stream_s,
                                  layer.output_drain_s)
    )
    return compute_bound / len(estimate.layers)


# ---------------------------------------------------------------------------
# Fluid serving model: M/G/k queueing over piecewise capacity windows.
#
# The hybrid-fidelity engine approximates a whole serving window as a
# fluid queue: requests are batches flowing through ``servers``
# concurrent dispatch slots at a calibrated mean (batched) service
# time.  Stationary behaviour comes from the Allen–Cunneen M/G/k
# approximation (Erlang-C delay probability scaled by the arrival and
# service variability); capacity hazards and node outages become
# piecewise windows whose backlog carries over, so saturation ramps
# and post-fault drains appear in the latency profile even though no
# per-request events fire.
# ---------------------------------------------------------------------------


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C delay probability ``C(k, a)`` for an M/M/k queue.

    Computed through the numerically stable Erlang-B recurrence
    (``B(0)=1; B(j) = a·B(j-1) / (j + a·B(j-1))``), so large server
    counts neither overflow nor lose precision.  Returns 1.0 at or
    beyond saturation (``a >= k``), where every arrival waits.
    """
    if servers < 1:
        raise ConfigurationError(
            f"server count must be >= 1, got {servers}"
        )
    if offered_load < 0:
        raise ConfigurationError(
            f"offered load must be >= 0, got {offered_load}"
        )
    if offered_load == 0.0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    blocking = 1.0
    for j in range(1, servers + 1):
        blocking = offered_load * blocking / (j + offered_load * blocking)
    occupancy = offered_load / servers
    return blocking / (1.0 - occupancy * (1.0 - blocking))


def mgk_queue_delay(
    rate_rps: float,
    servers: int,
    service_mean_s: float,
    mean_batch: float = 1.0,
    service_scv: float = 1.0,
    arrival_scv: float = 1.0,
) -> tuple[float, float]:
    """Stationary ``(P(wait), mean wait)`` of the batched M/G/k queue.

    Jobs are dispatch batches of ``mean_batch`` requests served in
    ``service_mean_s`` by one of ``servers`` slots; the mean wait uses
    the Allen–Cunneen approximation — the M/M/k wait scaled by
    ``(ca² + cs²) / 2`` — which is exact for M/M/k and accurate to a
    few percent for the coefficient-of-variation range the calibrated
    service profiles produce.  Returns ``(1.0, inf)`` at saturation.
    """
    if service_mean_s <= 0 or rate_rps <= 0:
        return 0.0, 0.0
    offered = rate_rps * service_mean_s / mean_batch
    if offered >= servers:
        return 1.0, float("inf")
    prob_wait = erlang_c(servers, offered)
    wait_mmk = prob_wait * service_mean_s / (servers - offered)
    scale = 0.5 * (arrival_scv + service_scv)
    return prob_wait, wait_mmk * scale


@dataclass(frozen=True)
class FluidWindow:
    """One constant-capacity span of the fluid serving model.

    ``servers`` is the number of concurrent dispatch slots (admission
    ``max_inflight``, times the active replica count for fleets),
    ``service_mean_s`` the calibrated mean batched service time inside
    this window (hazard-inflated when MACs are degraded), and
    ``mean_batch`` the calibrated mean dispatch batch size.  The
    variability knobs feed Allen–Cunneen: ``arrival_scv`` is 1 for
    Poisson and the calibrated proxy for bursty MMPP arrivals;
    ``service_scv`` is the squared coefficient of variation of the
    calibration's per-batch service times.
    """

    start_s: float
    end_s: float
    servers: int
    service_mean_s: float
    mean_batch: float = 1.0
    service_scv: float = 1.0
    arrival_scv: float = 1.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"fluid window must have positive span, got "
                f"[{self.start_s}, {self.end_s}]"
            )
        if self.servers < 1:
            raise ConfigurationError(
                f"fluid window needs >= 1 server, got {self.servers}"
            )
        if self.service_mean_s < 0:
            raise ConfigurationError(
                f"service time must be >= 0, got {self.service_mean_s}"
            )
        if self.mean_batch < 1.0:
            raise ConfigurationError(
                f"mean batch must be >= 1, got {self.mean_batch}"
            )

    @property
    def capacity_rps(self) -> float:
        """Request drain rate at full occupancy (requests/s)."""
        if self.service_mean_s <= 0:
            return float("inf")
        return self.servers * self.mean_batch / self.service_mean_s


def fluid_queue_delays(
    arrival_s: np.ndarray,
    windows: Sequence[FluidWindow],
    uniforms: np.ndarray,
) -> np.ndarray:
    """Per-arrival queue delays of the piecewise fluid queue.

    ``arrival_s`` are sorted arrival times, ``windows`` chronological
    capacity spans covering them (the last window extends to the final
    arrival), and ``uniforms`` one low-discrepancy value per arrival
    that samples the stationary wait mixture deterministically — equal
    inputs give bit-equal outputs, like every simulation path.

    Within each window the wait is the sum of two terms: the
    **transient** backlog ahead of the arrival draining at the window's
    capacity (``backlog(τ)/μ``, with the backlog integrated across
    window boundaries so an overload ramp keeps delaying requests after
    the capacity recovers), and — while the window is stable — a
    **stationary** M/G/k sample: zero with probability ``1 - P(wait)``,
    else an exponential quantile of the conditional mean wait.
    """
    if len(arrival_s) != len(uniforms):
        raise ConfigurationError(
            "need exactly one uniform sample per arrival"
        )
    if not windows:
        raise ConfigurationError("fluid model needs at least one window")
    waits = np.zeros(len(arrival_s), dtype=float)
    backlog = 0.0
    starts = np.array([window.start_s for window in windows])
    # searchsorted assigns each arrival to the window containing it;
    # arrivals beyond the last window's end stay in the last window.
    indices = np.searchsorted(starts, arrival_s, side="right") - 1
    indices = np.clip(indices, 0, len(windows) - 1)
    for w, window in enumerate(windows):
        mask = indices == w
        span_s = window.end_s - window.start_s
        n_window = int(np.count_nonzero(mask))
        rate_rps = n_window / span_s
        capacity = window.capacity_rps
        if n_window:
            tau = arrival_s[mask] - window.start_s
            backlog_at = np.maximum(
                0.0, backlog + (rate_rps - capacity) * tau
            )
            transient = (
                backlog_at / capacity if np.isfinite(capacity)
                else np.zeros_like(backlog_at)
            )
            prob_wait, mean_wait = mgk_queue_delay(
                rate_rps,
                window.servers,
                window.service_mean_s,
                window.mean_batch,
                window.service_scv,
                window.arrival_scv,
            )
            stationary = np.zeros_like(transient)
            if 0.0 < prob_wait and np.isfinite(mean_wait) and mean_wait > 0:
                u = uniforms[mask]
                delayed = u >= 1.0 - prob_wait
                conditional_mean = mean_wait / prob_wait
                # Exponential quantile of the conditional wait: the
                # u-range [1-Pw, 1) maps onto (0, inf).
                stationary[delayed] = -conditional_mean * np.log(
                    (1.0 - u[delayed]) / prob_wait
                )
            waits[mask] = transient + stationary
        backlog = max(0.0, backlog + (rate_rps - capacity) * span_s)
    return waits


def decode_token_latencies(
    start_s: np.ndarray,
    gap_samples: np.ndarray,
    token_counts: np.ndarray,
    windows: Sequence[FluidWindow] | None = None,
    stretches: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized token-service loop for autoregressive decode.

    Each sequence ``i`` starts decoding at ``start_s[i]`` (its first
    token is produced by prefill) and emits ``token_counts[i]`` further
    tokens whose nominal inter-token services are the next
    ``token_counts[i]`` entries of ``gap_samples`` (flat, concatenated
    in sequence order).  When ``windows``/``stretches`` are given, each
    gap is inflated by the stretch of the capacity window its nominal
    emission time falls into — a single-pass piecewise inflation, so a
    MAC-degrade window slows exactly the tokens emitted inside it.

    Returns ``(per_sequence_decode_s, stretched_gaps)``: the total
    decode span per sequence and the flat per-token latencies (the
    per-token latency profile aggregates the latter).
    """
    if gap_samples.size != int(token_counts.sum()):
        raise ConfigurationError(
            "need exactly token_counts.sum() gap samples"
        )
    n = len(start_s)
    if gap_samples.size == 0:
        return np.zeros(n, dtype=float), gap_samples
    offsets = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(token_counts, out=offsets[1:])
    seq_index = np.repeat(np.arange(n, dtype=np.intp), token_counts)
    if windows is not None and stretches is not None and len(windows) > 1:
        # Nominal absolute emission time of every token: the sequence
        # start plus the within-sequence running sum of nominal gaps.
        running = np.cumsum(gap_samples)
        before = np.zeros(n, dtype=float)
        nonzero = token_counts > 0
        firsts = offsets[:-1][nonzero]
        before[nonzero] = running[firsts] - gap_samples[firsts]
        local = running - before[seq_index]
        times = start_s[seq_index] + local
        starts = np.array([window.start_s for window in windows])
        indices = np.searchsorted(starts, times, side="right") - 1
        indices = np.clip(indices, 0, len(windows) - 1)
        gaps = gap_samples * stretches[indices]
    elif windows is not None and stretches is not None and len(windows) == 1:
        gaps = gap_samples * stretches[0]
    else:
        gaps = gap_samples
    decode_s = np.bincount(seq_index, weights=gaps, minlength=n)
    return decode_s, gaps
