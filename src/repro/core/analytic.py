"""Closed-form analytic performance model.

A fast first-order estimator for the 2.5D photonic platform: per layer,
latency = max(compute, weight fetch, input stream, output drain) with
bandwidths taken at their configured maxima (no contention, no
controller lag).  Two uses:

* **Cross-validation** — the DES must agree with the analytic bound for
  uncontended, compute-bound workloads and may only be *slower*
  otherwise (``tests/test_analytic.py`` asserts both directions).
* **Fast DSE** — sweeps that only need first-order trends run in
  microseconds instead of simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PlatformConfig
from ..dnn.workload import InferenceWorkload
from ..errors import ConfigurationError
from ..mapping.mapper import ModelMapping


@dataclass(frozen=True)
class AnalyticLayerEstimate:
    """Closed-form bounds for one layer."""

    name: str
    compute_s: float
    weight_fetch_s: float
    input_stream_s: float
    output_drain_s: float

    @property
    def latency_s(self) -> float:
        """Streaming execution: the slowest of the overlapped phases.

        Weight fetch is prefetched during the previous layer, so it only
        binds when it exceeds the previous layer's span; the max() here
        is therefore a lower bound.
        """
        return max(self.compute_s, self.input_stream_s,
                   self.output_drain_s)

    @property
    def bound_s(self) -> float:
        """Non-overlapped upper bound (everything serial)."""
        return (self.compute_s + self.weight_fetch_s
                + self.input_stream_s + self.output_drain_s)


@dataclass(frozen=True)
class AnalyticEstimate:
    """Whole-model analytic bounds."""

    model_name: str
    layers: tuple[AnalyticLayerEstimate, ...]

    @property
    def lower_bound_s(self) -> float:
        """Sum of per-layer streaming maxima (no contention)."""
        return sum(layer.latency_s for layer in self.layers)

    @property
    def upper_bound_s(self) -> float:
        """Sum of fully serialised phases."""
        return sum(layer.bound_s for layer in self.layers)


def analytic_estimate(
    mapping: ModelMapping,
    config: PlatformConfig,
    workload: InferenceWorkload | None = None,
) -> AnalyticEstimate:
    """Closed-form latency bounds for a mapped workload on the 2.5D
    photonic platform at full (static) interposer capacity."""
    read_bw = min(
        config.n_memory_write_gateways * config.gateway_bandwidth_bps,
        config.hbm_internal_bandwidth_bps,
    )
    layers = []
    for layer_mapping in mapping:
        layer = layer_mapping.layer
        compute_s = max(
            (
                alloc.vector_ops / (alloc.n_macs * config.mac_rate_hz)
                for alloc in layer_mapping.allocations
            ),
            default=0.0,
        )
        # Per-chiplet ingest can bind before the memory side does.
        slowest_ingest = min(
            (
                config.group_by_kind(alloc.kind).gateways_per_chiplet
                * config.gateway_bandwidth_bps
                for alloc in layer_mapping.allocations
            ),
            default=read_bw,
        )
        input_bw = min(read_bw, slowest_ingest)
        weight_fetch_s = layer.weight_bits / read_bw
        input_stream_s = layer.input_bits / input_bw
        write_bw = min(
            (
                config.group_by_kind(alloc.kind).gateways_per_chiplet
                * config.gateway_bandwidth_bps
                for alloc in layer_mapping.allocations
            ),
            default=read_bw,
        )
        output_drain_s = layer.output_bits / min(
            write_bw, config.hbm_internal_bandwidth_bps
        )
        layers.append(
            AnalyticLayerEstimate(
                name=layer.name,
                compute_s=compute_s,
                weight_fetch_s=weight_fetch_s,
                input_stream_s=input_stream_s,
                output_drain_s=output_drain_s,
            )
        )
    if not layers:
        raise ConfigurationError("cannot estimate an empty mapping")
    return AnalyticEstimate(
        model_name=mapping.workload.model_name
        if mapping.workload is not None
        else (workload.model_name if workload else "unknown"),
        layers=tuple(layers),
    )


def compute_bound_fraction(estimate: AnalyticEstimate) -> float:
    """Fraction of layers whose streaming maximum is the compute term."""
    compute_bound = sum(
        1
        for layer in estimate.layers
        if layer.compute_s >= max(layer.input_stream_s,
                                  layer.output_drain_s)
    )
    return compute_bound / len(estimate.layers)
