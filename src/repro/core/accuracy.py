"""Analytical accuracy model of the analog photonic datapath.

The photonic MAC pipeline introduces error at three points: DAC
quantisation of activations and weights, the Lorentzian weighting round
trip, and ADC quantisation of the accumulated sum.  This module derives
the expected signal-to-noise ratio of a dot product analytically and
checks out (in ``tests/test_accuracy.py``) against Monte-Carlo runs of
the functional :class:`~repro.core.mac_unit.PhotonicMacUnit` — closing
the loop between the statistical model and the device-level simulation.

The per-layer SNR estimates feed a simple accuracy proxy: layers whose
dot-product SNR falls below ~6 effective bits are where binarised /
low-precision photonic accelerators ([24], [25]) start losing model
accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dnn.workload import InferenceWorkload, LayerWorkload
from ..errors import ConfigurationError
from .mac_unit import MacUnitSpec


@dataclass(frozen=True)
class DotProductSNR:
    """Predicted analog fidelity of one dot-product shape."""

    dot_length: int
    signal_power: float
    noise_power: float

    @property
    def snr(self) -> float:
        if self.noise_power <= 0:
            return math.inf
        return self.signal_power / self.noise_power

    @property
    def snr_db(self) -> float:
        return 10.0 * math.log10(self.snr)

    @property
    def effective_bits(self) -> float:
        """Equivalent converter resolution: (SNR_dB - 1.76) / 6.02."""
        return (self.snr_db - 1.76) / 6.02


def dot_product_snr(dot_length: int, spec: MacUnitSpec) -> DotProductSNR:
    """Analytical SNR of a length-``dot_length`` dot product.

    Operands are modelled as i.i.d. uniform on [0, 1] (magnitude rails).

    * Signal: ``E[(sum a_i w_i)^2]`` for uniform operands.
    * DAC noise: each product carries two quantisation errors of
      variance ``delta^2 / 12`` scaled by the other operand's power;
      independent across lanes, so variances add.
    * ADC noise: one quantisation of the result at full scale
      ``dot_length`` (chunked execution re-quantises per chunk; the
      chunk count is ceil(L / v), each at full scale v).
    """
    if dot_length < 1:
        raise ConfigurationError("dot length must be >= 1")
    length = float(dot_length)

    # E[a^2] = 1/3 for U(0,1); E[a]=1/2.
    # Signal power of the sum: L*Var(aw) + (L*E[aw])^2 with E[aw]=1/4.
    e_prod_sq = (1.0 / 3.0) ** 2
    e_prod = 0.25
    signal = length * (e_prod_sq - e_prod ** 2) + (length * e_prod) ** 2

    dac_delta = 1.0 / ((1 << spec.dac_bits) - 1)
    per_lane_dac_noise = 2.0 * (dac_delta ** 2 / 12.0) * (1.0 / 3.0)
    dac_noise = length * per_lane_dac_noise

    # Chunked ADC re-quantisation: ceil(L/v) conversions at full scale v.
    chunk = min(dot_length, spec.vector_length)
    n_chunks = math.ceil(dot_length / spec.vector_length)
    adc_delta = chunk / ((1 << spec.adc_bits) - 1)
    adc_noise = n_chunks * adc_delta ** 2 / 12.0

    return DotProductSNR(
        dot_length=dot_length,
        signal_power=signal,
        noise_power=dac_noise + adc_noise,
    )


@dataclass(frozen=True)
class LayerAccuracy:
    """Per-layer analog fidelity record."""

    name: str
    dot_length: int
    snr_db: float
    effective_bits: float


def model_accuracy_report(
    workload: InferenceWorkload,
    spec: MacUnitSpec | None = None,
) -> list[LayerAccuracy]:
    """Per-layer SNR of a whole model on a given MAC unit design."""
    spec = spec or MacUnitSpec(vector_length=9)
    report = []
    for layer in workload:
        estimate = dot_product_snr(layer.dot_length, spec)
        report.append(
            LayerAccuracy(
                name=layer.name,
                dot_length=layer.dot_length,
                snr_db=estimate.snr_db,
                effective_bits=estimate.effective_bits,
            )
        )
    return report


def worst_layer(report: list[LayerAccuracy]) -> LayerAccuracy:
    """The accuracy-limiting layer (lowest SNR)."""
    if not report:
        raise ConfigurationError("empty accuracy report")
    return min(report, key=lambda entry: entry.snr_db)


def min_dac_bits_for_effective_bits(
    dot_length: int,
    target_effective_bits: float,
    adc_bits: int = 8,
    vector_length: int = 9,
) -> int:
    """Smallest DAC resolution achieving a target effective resolution.

    The co-design question of [22]: how low can per-layer precision go
    before the analog chain (not the algorithm) becomes the limit.
    """
    for dac_bits in range(1, 17):
        spec = MacUnitSpec(vector_length=vector_length, dac_bits=dac_bits,
                           adc_bits=adc_bits)
        estimate = dot_product_snr(dot_length, spec)
        if estimate.effective_bits >= target_effective_bits:
            return dac_bits
    raise ConfigurationError(
        f"no DAC resolution reaches {target_effective_bits} effective bits "
        f"for dot length {dot_length}"
    )
