"""Discrete-event inference engine.

Executes mapped DNN workloads over an interposer fabric, layer by
layer, with the dataflow of Section V:

1. weights for the next layer prefetch while the current layer runs,
2. input activations are read from the memory chiplet (multicast to
   every chiplet hosting the layer),
3. each chiplet computes its work share, streaming: compute finishes no
   earlier than its inputs and no earlier than its pure compute time,
4. outputs are written back to memory; the next layer starts when all
   writes land and its weights are present.

Execution is **request-scoped**: a :class:`RequestExecution` drives one
(batched) inference as an ordinary simulation process, so any number of
requests can be in flight concurrently over one shared fabric — that is
what the serving layer (:mod:`repro.serving`) does.  The classic
single-inference :class:`InferenceEngine` is the trivial one-request
case and produces bit-identical results to the pre-serving engine.

Each execution records per-layer timings and the lane-operation counts
the energy model needs into an :class:`ExecutionTrace`; concurrent
requests may share one trace (operation counters simply accumulate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..config import PlatformConfig
from ..errors import SimulationError
from ..interposer.base import InterposerFabric
from ..mapping.mapper import LayerMapping, ModelMapping
from ..sim.core import Environment, Event, Process
from ..sim.resources import ChannelStat, Resource
from .metrics import LayerTiming

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..mapping.residency import WeightResidency


@dataclass
class ExecutionTrace:
    """Mutable accounting collected during a run.

    One trace may be shared by many concurrent request executions: the
    operation counters accumulate across requests (that is what the
    compute-energy model integrates), ``layer_timings`` interleaves in
    completion order, and ``request_records`` collects the per-request
    latency records the serving layer aggregates.
    """

    layer_timings: list[LayerTiming] = field(default_factory=list)
    lane_ops_by_kind: dict[str, int] = field(default_factory=dict)
    vector_ops_by_kind: dict[str, int] = field(default_factory=dict)
    channel_stats: tuple[ChannelStat, ...] = ()
    """End-of-run utilization snapshot of every fabric channel (filled
    by the platform once the simulation completes)."""
    request_records: list[Any] = field(default_factory=list)
    """Per-request completion records (see
    :class:`repro.serving.metrics.RequestRecord`); empty for classic
    single-inference runs."""

    @property
    def total_lane_ops(self) -> int:
        return sum(self.lane_ops_by_kind.values())

    @property
    def total_vector_ops(self) -> int:
        return sum(self.vector_ops_by_kind.values())

    def record_channel_stats(self, fabric: InterposerFabric) -> None:
        """Snapshot the fabric's channel utilization into the trace."""
        self.channel_stats = fabric.channel_stats()


class ComputeOccupancy:
    """Per-chiplet MAC-array occupancy shared by concurrent requests.

    A single inference owns every chiplet it maps to, so the one-shot
    path needs no compute arbitration — but overlapping requests must
    serialize on each chiplet's MAC array.  One unit-capacity
    :class:`Resource` per chiplet (created lazily) models that: a
    chiplet works on one request's layer share at a time, and compute
    queueing emerges alongside the fabric's bandwidth contention.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._resources: dict[str, Resource] = {}
        self.mac_fraction = 1.0

    def set_mac_fraction(self, fraction: float) -> None:
        """Scale every chiplet's sustainable MAC rate (compute hazard).

        ``fraction`` is the remaining throughput share in ``(0, 1]``;
        compute time for batches dispatched while it is below 1.0
        stretches by ``1/fraction``.  The serving layer drives this
        from ``chiplet-mac-degrade`` hazard events.
        """
        if not 0.0 < fraction <= 1.0:
            raise SimulationError(
                f"MAC fraction must be in (0, 1], got {fraction}"
            )
        self.mac_fraction = fraction

    def resource(self, chiplet_id: str) -> Resource:
        """The chiplet's occupancy semaphore (lazily created)."""
        resource = self._resources.get(chiplet_id)
        if resource is None:
            resource = Resource(self.env, capacity=1)
            self._resources[chiplet_id] = resource
        return resource

    def utilization(self, chiplet_id: str) -> float:
        """Busy fraction of one chiplet (0.0 if it never computed)."""
        resource = self._resources.get(chiplet_id)
        return resource.utilization() if resource is not None else 0.0

    def mean_utilization(self) -> float:
        """Average busy fraction across chiplets that ever computed."""
        if not self._resources:
            return 0.0
        return sum(
            resource.utilization() for resource in self._resources.values()
        ) / len(self._resources)


class RequestExecution:
    """One in-flight (batched) inference request over a shared fabric.

    Re-entrant by construction: every piece of per-inference state lives
    on the instance, so any number of executions can run concurrently in
    a single :class:`Environment` over one :class:`InterposerFabric` —
    contention between them emerges from the fabric's shared channels.

    ``residency`` (optional) makes weights **model-resident**: the first
    request for a model fetches each layer's weights once and every
    overlapping or later request waits on (or skips past) that same
    fetch instead of re-streaming them.  Without a residency store the
    execution fetches weights itself — the classic cold-fabric
    single-inference behaviour.
    """

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        fabric: InterposerFabric,
        mapping: ModelMapping,
        trace: ExecutionTrace,
        mac_rate_hz: float | None = None,
        batch_size: int = 1,
        residency: "WeightResidency | None" = None,
        compute: ComputeOccupancy | None = None,
        model_name: str = "",
        record_timings: bool = True,
        obs: "object | None" = None,
        obs_track: str = "",
    ):
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.env = env
        self.config = config
        self.fabric = fabric
        self.mapping = mapping
        self.trace = trace
        self.mac_rate_hz = mac_rate_hz or config.mac_rate_hz
        self.batch_size = batch_size
        self.residency = residency
        self.compute = compute
        self.model_name = model_name
        self.record_timings = record_timings
        # Telemetry: per-layer spans land on ``obs_track`` of the span
        # recorder when one is attached (sampled request under an armed
        # telemetry policy); ``None`` costs one comparison per layer.
        self.obs = obs
        self.obs_track = obs_track

    def start(self) -> Process:
        """Launch the execution; the returned process fires on completion."""
        return self.env.process(self._run_proc())

    # -- internals ------------------------------------------------------------------

    def _fetch_weights(self, layer_mapping: LayerMapping) -> Event:
        """Weight-transfer barrier for one layer.

        Resident mode delegates to the residency store (fetch once per
        model, share the barrier); otherwise unicast transfers for every
        allocation are issued directly.
        """
        if self.residency is not None:
            return self.residency.acquire(
                self.model_name, layer_mapping, self.fabric
            )
        transfers = [
            self.fabric.read_weights(alloc.chiplet_id, alloc.weight_bits)
            for alloc in layer_mapping.allocations
            if alloc.weight_bits > 0
        ]
        return self.env.all_of(transfers)

    def _run_proc(self):
        layers = list(self.mapping)
        if not layers:
            return
        weights_ready: list[Event | None] = [None] * len(layers)
        weights_ready[0] = self._fetch_weights(layers[0])

        for index, layer_mapping in enumerate(layers):
            start = self.env.now
            if self.obs is not None:
                self.obs.begin(
                    self.obs_track,
                    f"weights:{layer_mapping.layer.name}",
                )
            yield weights_ready[index]
            if self.obs is not None:
                self.obs.end(self.obs_track)
            # Prefetch the next layer's weights concurrently.
            if index + 1 < len(layers):
                weights_ready[index + 1] = self._fetch_weights(
                    layers[index + 1]
                )

            # Input activations: one multicast read to all host chiplets.
            # Layer-major batching: the whole batch's activations stream
            # while the layer's weights stay resident (fetched once).
            input_done = self.fabric.read(
                layer_mapping.chiplet_ids[0],
                layer_mapping.layer.input_bits * self.batch_size,
                multicast=layer_mapping.chiplet_ids,
            )

            input_ready_holder = [0.0]
            compute_done_holder = [0.0]
            chiplet_events = [
                self.env.process(
                    self._chiplet_proc(
                        alloc, input_done, input_ready_holder,
                        compute_done_holder
                    )
                )
                for alloc in layer_mapping.allocations
            ]
            if self.obs is not None:
                self.obs.begin(
                    self.obs_track,
                    f"layer:{layer_mapping.layer.name}",
                    args={"chiplets": len(layer_mapping.allocations)},
                )
            yield self.env.all_of(chiplet_events)
            if self.obs is not None:
                self.obs.end(self.obs_track)

            if self.record_timings:
                self.trace.layer_timings.append(
                    LayerTiming(
                        name=layer_mapping.layer.name,
                        start_s=start,
                        input_ready_s=input_ready_holder[0],
                        compute_done_s=compute_done_holder[0],
                        end_s=self.env.now,
                        chiplets=layer_mapping.chiplet_ids,
                        vector_ops=layer_mapping.total_vector_ops,
                    )
                )

    def _chiplet_proc(self, alloc, input_done: Event, input_ready_holder,
                      compute_done_holder):
        """One chiplet's share: wait for data, compute, write back."""
        compute_s = (
            alloc.vector_ops * self.batch_size
            / (alloc.n_macs * self.mac_rate_hz)
        )
        if self.compute is not None and self.compute.mac_fraction < 1.0:
            # Compute-side hazard: the MAC arrays sustain only a
            # fraction of nominal throughput while degraded.
            compute_s /= self.compute.mac_fraction
        if self.compute is not None:
            # Concurrent-request mode: the chiplet's MAC array works on
            # one request's layer share at a time.  The occupancy spans
            # the streaming window (max of input arrival and compute),
            # the same interval the one-request timeline attributes to
            # the chiplet.
            occupancy = self.compute.resource(alloc.chiplet_id)
            yield occupancy.request()
            yield self.env.timeout(compute_s)
            if not input_done.processed:
                yield input_done
            occupancy.release()
        else:
            # Streaming: compute completes when both its own duration
            # has elapsed and the input stream has fully arrived.
            yield self.env.timeout(compute_s)
            if not input_done.processed:
                yield input_done
        input_ready_holder[0] = max(input_ready_holder[0], self.env.now)
        compute_done_holder[0] = max(compute_done_holder[0], self.env.now)
        kind = alloc.kind
        self.trace.lane_ops_by_kind[kind] = (
            self.trace.lane_ops_by_kind.get(kind, 0)
            + alloc.lane_ops * self.batch_size
        )
        self.trace.vector_ops_by_kind[kind] = (
            self.trace.vector_ops_by_kind.get(kind, 0)
            + alloc.vector_ops * self.batch_size
        )
        if alloc.output_bits > 0:
            yield self.fabric.write(
                alloc.chiplet_id, alloc.output_bits * self.batch_size
            )


class InferenceEngine:
    """Drives one inference through the fabric: the one-request case.

    Thin wrapper over :class:`RequestExecution` kept for the classic
    single-inference experiments; results are bit-identical to running
    the execution directly (it is the same process body).
    """

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        fabric: InterposerFabric,
        mac_rate_hz: float | None = None,
        batch_size: int = 1,
    ):
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.env = env
        self.config = config
        self.fabric = fabric
        self.mac_rate_hz = mac_rate_hz or config.mac_rate_hz
        self.batch_size = batch_size
        self.trace = ExecutionTrace()

    # -- public API --------------------------------------------------------------

    def run(self, mapping: ModelMapping, time_limit_s: float = 100.0) -> float:
        """Execute the mapped workload; returns the completion time (s).

        ``time_limit_s`` is a simulated-time hang guard (perpetual
        controller processes keep the event queue alive forever).
        """
        execution = RequestExecution(
            self.env, self.config, self.fabric, mapping, self.trace,
            mac_rate_hz=self.mac_rate_hz, batch_size=self.batch_size,
        )
        done = execution.start()
        self.env.run_until_event(done, limit=time_limit_s)
        return self.env.now
