"""Discrete-event inference engine.

Executes a mapped DNN workload over an interposer fabric, layer by layer,
with the dataflow of Section V:

1. weights for the next layer prefetch while the current layer runs,
2. input activations are read from the memory chiplet (multicast to
   every chiplet hosting the layer),
3. each chiplet computes its work share, streaming: compute finishes no
   earlier than its inputs and no earlier than its pure compute time,
4. outputs are written back to memory; the next layer starts when all
   writes land and its weights are present.

The engine records per-layer timings and the lane-operation counts the
energy model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PlatformConfig
from ..interposer.base import InterposerFabric
from ..mapping.mapper import LayerMapping, ModelMapping
from ..sim.core import Environment, Event
from ..sim.resources import ChannelStat
from .metrics import LayerTiming


@dataclass
class ExecutionTrace:
    """Mutable accounting collected during a run."""

    layer_timings: list[LayerTiming] = field(default_factory=list)
    lane_ops_by_kind: dict[str, int] = field(default_factory=dict)
    vector_ops_by_kind: dict[str, int] = field(default_factory=dict)
    channel_stats: tuple[ChannelStat, ...] = ()
    """End-of-run utilization snapshot of every fabric channel (filled
    by the platform once the simulation completes)."""

    @property
    def total_lane_ops(self) -> int:
        return sum(self.lane_ops_by_kind.values())

    @property
    def total_vector_ops(self) -> int:
        return sum(self.vector_ops_by_kind.values())

    def record_channel_stats(self, fabric: InterposerFabric) -> None:
        """Snapshot the fabric's channel utilization into the trace."""
        self.channel_stats = fabric.channel_stats()


class InferenceEngine:
    """Drives one inference through the fabric and compute model."""

    def __init__(
        self,
        env: Environment,
        config: PlatformConfig,
        fabric: InterposerFabric,
        mac_rate_hz: float | None = None,
        batch_size: int = 1,
    ):
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.env = env
        self.config = config
        self.fabric = fabric
        self.mac_rate_hz = mac_rate_hz or config.mac_rate_hz
        self.batch_size = batch_size
        self.trace = ExecutionTrace()

    # -- public API --------------------------------------------------------------

    def run(self, mapping: ModelMapping, time_limit_s: float = 100.0) -> float:
        """Execute the mapped workload; returns the completion time (s).

        ``time_limit_s`` is a simulated-time hang guard (perpetual
        controller processes keep the event queue alive forever).
        """
        done = self.env.process(self._run_proc(mapping))
        self.env.run_until_event(done, limit=time_limit_s)
        return self.env.now

    # -- internals ------------------------------------------------------------------

    def _fetch_weights(self, layer_mapping: LayerMapping) -> Event:
        """Unicast weight transfers for every allocation of a layer."""
        transfers = [
            self.fabric.read_weights(alloc.chiplet_id, alloc.weight_bits)
            for alloc in layer_mapping.allocations
            if alloc.weight_bits > 0
        ]
        return self.env.all_of(transfers)

    def _run_proc(self, mapping: ModelMapping):
        layers = list(mapping)
        if not layers:
            return
        weights_ready: list[Event | None] = [None] * len(layers)
        weights_ready[0] = self._fetch_weights(layers[0])

        for index, layer_mapping in enumerate(layers):
            start = self.env.now
            yield weights_ready[index]
            # Prefetch the next layer's weights concurrently.
            if index + 1 < len(layers):
                weights_ready[index + 1] = self._fetch_weights(
                    layers[index + 1]
                )

            # Input activations: one multicast read to all host chiplets.
            # Layer-major batching: the whole batch's activations stream
            # while the layer's weights stay resident (fetched once).
            input_done = self.fabric.read(
                layer_mapping.chiplet_ids[0],
                layer_mapping.layer.input_bits * self.batch_size,
                multicast=layer_mapping.chiplet_ids,
            )

            input_ready_holder = [0.0]
            compute_done_holder = [0.0]
            chiplet_events = [
                self.env.process(
                    self._chiplet_proc(
                        alloc, input_done, input_ready_holder,
                        compute_done_holder
                    )
                )
                for alloc in layer_mapping.allocations
            ]
            yield self.env.all_of(chiplet_events)

            self.trace.layer_timings.append(
                LayerTiming(
                    name=layer_mapping.layer.name,
                    start_s=start,
                    input_ready_s=input_ready_holder[0],
                    compute_done_s=compute_done_holder[0],
                    end_s=self.env.now,
                    chiplets=layer_mapping.chiplet_ids,
                    vector_ops=layer_mapping.total_vector_ops,
                )
            )

    def _chiplet_proc(self, alloc, input_done: Event, input_ready_holder,
                      compute_done_holder):
        """One chiplet's share: wait for data, compute, write back."""
        compute_s = (
            alloc.vector_ops * self.batch_size
            / (alloc.n_macs * self.mac_rate_hz)
        )
        # Streaming: compute completes when both its own duration has
        # elapsed and the input stream has fully arrived.
        yield self.env.all_of([input_done, self.env.timeout(compute_s)])
        input_ready_holder[0] = max(input_ready_holder[0], self.env.now)
        compute_done_holder[0] = max(compute_done_holder[0], self.env.now)
        kind = alloc.kind
        self.trace.lane_ops_by_kind[kind] = (
            self.trace.lane_ops_by_kind.get(kind, 0)
            + alloc.lane_ops * self.batch_size
        )
        self.trace.vector_ops_by_kind[kind] = (
            self.trace.vector_ops_by_kind.get(kind, 0)
            + alloc.vector_ops * self.batch_size
        )
        if alloc.output_bits > 0:
            yield self.fabric.write(
                alloc.chiplet_id, alloc.output_bits * self.batch_size
            )
