"""Monolithic CrossLight baseline (the original single-chip design [21]).

The monolithic accelerator keeps every VDP (vector-dot-product) unit on
one large die:

* operands move over a global **on-chip electrical NoC** from a central
  buffer (native broadcast: one stream feeds all units),
* weights stream from **off-package DRAM** (no HBM chiplet),
* rings are held on resonance with **thermo-optic trimming** and the
  long on-die waveguides raise the compute laser budget — the sources of
  the "relatively low energy efficiency" the paper attributes to it.

The fabric below plugs into the same :class:`InferenceEngine`; a
single-pseudo-chiplet mapping puts every layer on the whole VDP array.
"""

from __future__ import annotations

import math

from ..config import PlatformConfig
from ..dnn.workload import InferenceWorkload
from ..interposer.base import (
    DEFAULT_CHUNK_BITS,
    InterposerFabric,
    NetworkEnergyReport,
)
from ..mapping.mapper import Allocation, LayerMapping, ModelMapping
from ..mapping.tiling import tile_layer
from ..power import params as ep
from ..sim.core import Environment, Event
from ..sim.resources import BandwidthChannel

MONO_CHIPLET_ID = "mono-0"
ONCHIP_AVG_WIRE_MM = 10.0
"""Average on-die NoC traversal distance for the 20 mm die."""


class MonolithicFabric(InterposerFabric):
    """Global buffer NoC + DRAM weight port of the single-chip design."""

    def __init__(self, env: Environment, config: PlatformConfig,
                 chunk_bits: float = DEFAULT_CHUNK_BITS):
        super().__init__(env)
        self.config = config
        self.chunk_bits = chunk_bits
        self.noc_channel = BandwidthChannel(
            env, config.mono_noc_bandwidth_bps, name="mono-noc"
        )
        self.dram_channel = BandwidthChannel(
            env, config.mono_dram_bandwidth_bps, name="mono-dram"
        )
        self.weight_bits_moved = 0.0

    def iter_channels(self):
        yield self.noc_channel
        yield self.dram_channel

    def _chunks(self, bits: float) -> list[float]:
        if bits <= 0:
            return []
        full, remainder = divmod(bits, self.chunk_bits)
        chunks = [self.chunk_bits] * int(full)
        if remainder > 0:
            chunks.append(remainder)
        return chunks

    def _stream(self, channel: BandwidthChannel, bits: float):
        for chunk in self._chunks(bits):
            yield self.env.process(channel.transfer(chunk))

    def read(self, dst_chiplet: str, bits: float,
             multicast: tuple[str, ...] | None = None) -> Event:
        # On-die broadcast is native: multicast costs one stream.
        self.bits_read += bits
        return self.env.process(self._stream(self.noc_channel, bits))

    def write(self, src_chiplet: str, bits: float) -> Event:
        self.bits_written += bits
        return self.env.process(self._stream(self.noc_channel, bits))

    def read_weights(self, dst_chiplet: str, bits: float) -> Event:
        self.weight_bits_moved += bits
        return self.env.process(self._stream(self.dram_channel, bits))

    @property
    def total_bits_moved(self) -> float:
        return self.bits_read + self.bits_written + self.weight_bits_moved

    def energy_report(self) -> NetworkEnergyReport:
        elapsed = self.env.now
        noc_bits = self.bits_read + self.bits_written
        noc_j = noc_bits * (
            ep.ONCHIP_WIRE_ENERGY_J_PER_BIT_PER_MM * ONCHIP_AVG_WIRE_MM
            + ep.SRAM_BUFFER_ENERGY_J_PER_BIT * 2.0
        )
        dram_j = self.weight_bits_moved * ep.DDR_ENERGY_J_PER_BIT
        static_j = ep.DDR_PHY_STATIC_POWER_W * elapsed
        return NetworkEnergyReport(
            elapsed_s=elapsed,
            static_energy_j=static_j,
            dynamic_energy_j=noc_j + dram_j,
            breakdown_j={
                "onchip_noc": noc_j,
                "dram": dram_j,
                "dram_phy_static": static_j,
            },
        )


def monolithic_mapping(workload: InferenceWorkload,
                       config: PlatformConfig) -> ModelMapping:
    """Map every layer onto the whole homogeneous VDP array."""
    layer_mappings = []
    for layer in workload:
        tiling = tile_layer(layer, config.mono_vector_length)
        allocation = Allocation(
            chiplet_id=MONO_CHIPLET_ID,
            kind="mono-vdp",
            n_macs=config.mono_n_vdp_units,
            vector_length=config.mono_vector_length,
            vector_ops=tiling.vector_ops,
            weight_bits=layer.weight_bits,
            output_bits=layer.output_bits,
        )
        layer_mappings.append(
            LayerMapping(layer=layer, allocations=(allocation,),
                         tiling=tiling)
        )
    return ModelMapping(workload=workload, layers=tuple(layer_mappings))
