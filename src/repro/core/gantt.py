"""ASCII Gantt rendering of inference timelines.

Turns an :class:`~repro.core.metrics.InferenceResult`'s per-layer
timeline into a text chart, so schedule structure (weight-prefetch
overlap, per-chiplet spreading, communication stalls) is visible in a
terminal without plotting dependencies.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .metrics import InferenceResult

DEFAULT_WIDTH = 72


def render_gantt(result: InferenceResult, width: int = DEFAULT_WIDTH,
                 max_rows: int = 40) -> str:
    """Render the layer timeline as an ASCII Gantt chart.

    Each row is one layer; ``#`` marks the layer's active interval on a
    time axis normalised to the total latency.  Long models are
    down-sampled to ``max_rows`` evenly spaced layers.
    """
    if width < 20:
        raise ConfigurationError("chart width must be >= 20 columns")
    timeline = result.layer_timeline
    if not timeline:
        return f"{result.model} on {result.platform}: empty timeline"
    total = result.latency_s
    if total <= 0:
        raise ConfigurationError("result has non-positive latency")

    rows = list(timeline)
    step = max(1, len(rows) // max_rows)
    sampled = rows[::step]

    name_width = min(28, max(len(t.name) for t in sampled) + 2)
    lines = [
        f"{result.model} on {result.platform} — "
        f"{total * 1e3:.4f} ms total, {len(rows)} layers"
        + (f" (showing every {step})" if step > 1 else ""),
        f"{'layer':<{name_width}}|{'-' * width}|",
    ]
    for timing in sampled:
        start_col = int(round(timing.start_s / total * width))
        end_col = int(round(timing.end_s / total * width))
        end_col = max(end_col, start_col + 1)
        bar = (
            " " * start_col
            + "#" * (end_col - start_col)
            + " " * (width - end_col)
        )
        lines.append(f"{timing.name:<{name_width}}|{bar}|")
    axis = f"{'':<{name_width}}|0{'':>{width - 10}}{total * 1e3:8.3f}ms|"
    lines.append(axis)
    return "\n".join(lines)


def utilization_summary(result: InferenceResult) -> str:
    """One-line compute/communication balance summary."""
    timeline = result.layer_timeline
    if not timeline or result.latency_s <= 0:
        return "no timeline"
    busy = sum(t.duration_s for t in timeline)
    return (
        f"layers cover {busy / result.latency_s:.0%} of the critical path; "
        f"mean layer {busy / len(timeline) * 1e6:.2f} us; "
        f"{result.reconfigurations} interposer reconfigurations"
    )
