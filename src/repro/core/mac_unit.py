"""Photonic multiply-accumulate (MAC) unit — functional + physical model.

The MAC unit of Fig. 4: DACs drive a bank of MR modulators that imprint
the activation vector onto the wavelength comb, a second bank of weight
MRs attenuates each carrier by its weight (broadcast-and-weight [35]),
and a broadband photodetector sums the per-wavelength powers into one
photocurrent — the dot product.

This module computes *numerically* through the device transfer functions
(quantised DACs, Lorentzian ring weighting, PD accumulation), so tests
can check that the analog pipeline really reproduces vector dot products
within quantisation error, not just that a formula was typed in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..photonics import constants as ph
from ..photonics.microring import MicroringResonator
from ..photonics.photodetector import Photodetector


@dataclass(frozen=True)
class MacUnitSpec:
    """Static description of one MAC unit."""

    vector_length: int
    kernel_size: int = 0  # 0 marks dense units
    dac_bits: int = 8
    adc_bits: int = 8
    mac_rate_hz: float = 2e9

    def __post_init__(self) -> None:
        if self.vector_length < 1:
            raise ConfigurationError("vector length must be >= 1")
        if not 1 <= self.dac_bits <= 16 or not 1 <= self.adc_bits <= 16:
            raise ConfigurationError("converter resolutions must be 1..16 bits")

    @property
    def kind(self) -> str:
        if self.kernel_size:
            return f"{self.kernel_size}x{self.kernel_size} conv"
        return f"dense{self.vector_length}"

    @property
    def ops_per_second(self) -> float:
        """Peak MACs per second of this unit."""
        return self.vector_length * self.mac_rate_hz


def _quantize_unit_interval(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantise values in [0, 1] to a ``bits``-deep uniform grid."""
    levels = (1 << bits) - 1
    return np.round(np.clip(values, 0.0, 1.0) * levels) / levels


@dataclass
class PhotonicMacUnit:
    """A functional noncoherent MAC unit.

    Signed values are carried with the standard two-rail trick of
    broadcast-and-weight architectures: positive and negative components
    are computed in separate passes (balanced photodetection), so the
    unit itself only handles magnitudes in [0, 1].
    """

    spec: MacUnitSpec
    ring: MicroringResonator = field(default_factory=MicroringResonator)
    detector: Photodetector = field(default_factory=Photodetector)

    def _weight_transmission(self, weights: np.ndarray) -> np.ndarray:
        """Optical transmission each weight ring applies to its carrier.

        Weights are quantised by the DAC, mapped to ring detunings and
        back through the Lorentzian — this round trip is where analog
        non-ideality enters.
        """
        quantised = _quantize_unit_interval(weights, self.spec.dac_bits)
        transmissions = np.empty_like(quantised)
        for index, weight in enumerate(quantised):
            if weight <= 0.0:
                transmissions[index] = 0.0
                continue
            detuning = self.ring.detuning_for_weight(float(weight))
            transmissions[index] = self.ring.weight_for_detuning(detuning)
        return transmissions

    def dot(self, activations: Sequence[float],
            weights: Sequence[float]) -> float:
        """One analog dot product of magnitude vectors in [0, 1].

        Returns the normalised dot product as recovered by the ADC.
        """
        act = np.asarray(activations, dtype=float)
        wgt = np.asarray(weights, dtype=float)
        if act.shape != wgt.shape:
            raise ConfigurationError(
                f"activation/weight length mismatch: {act.shape} vs {wgt.shape}"
            )
        if act.size > self.spec.vector_length:
            raise ConfigurationError(
                f"vector of {act.size} exceeds unit length "
                f"{self.spec.vector_length}"
            )
        if np.any((act < 0) | (act > 1)) or np.any((wgt < 0) | (wgt > 1)):
            raise ConfigurationError(
                "photonic MAC magnitudes must lie in [0, 1]; split signs "
                "into separate rails first"
            )

        # Activations imprinted by modulators (DAC-quantised amplitudes).
        carrier_powers = _quantize_unit_interval(act, self.spec.dac_bits)
        # Weight rings attenuate each carrier.
        weighted = carrier_powers * self._weight_transmission(wgt)
        # Broadband PD sums optical powers; normalise out responsivity.
        photocurrent = self.detector.accumulate(weighted)
        normalised = (
            (photocurrent - self.detector.dark_current_a)
            / self.detector.responsivity_a_per_w
        )
        # ADC quantises the accumulated value (full scale = vector length).
        full_scale = float(act.size) if act.size else 1.0
        levels = (1 << self.spec.adc_bits) - 1
        digitised = round(normalised / full_scale * levels) / levels
        return digitised * full_scale

    def dot_signed(self, activations: Sequence[float],
                   weights: Sequence[float]) -> float:
        """Signed dot product via four-rail decomposition.

        Splits both operands into positive/negative parts and combines
        four magnitude dot products:  (a+ - a-) . (w+ - w-).
        """
        act = np.asarray(activations, dtype=float)
        wgt = np.asarray(weights, dtype=float)
        if np.any(np.abs(act) > 1) or np.any(np.abs(wgt) > 1):
            raise ConfigurationError("operands must lie in [-1, 1]")
        a_pos, a_neg = np.clip(act, 0, 1), np.clip(-act, 0, 1)
        w_pos, w_neg = np.clip(wgt, 0, 1), np.clip(-wgt, 0, 1)
        return (
            self.dot(a_pos, w_pos)
            - self.dot(a_pos, w_neg)
            - self.dot(a_neg, w_pos)
            + self.dot(a_neg, w_neg)
        )

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Matrix-vector product, chunked to the unit's vector length.

        Long rows are processed in vector-length chunks with electronic
        partial-sum accumulation, exactly the execution the tiler counts.
        """
        matrix = np.asarray(matrix, dtype=float)
        vector = np.asarray(vector, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
            raise ConfigurationError(
                f"matvec shapes incompatible: {matrix.shape} x {vector.shape}"
            )
        v = self.spec.vector_length
        n_chunks = math.ceil(matrix.shape[1] / v)
        result = np.zeros(matrix.shape[0])
        for row in range(matrix.shape[0]):
            accumulator = 0.0
            for chunk in range(n_chunks):
                lo, hi = chunk * v, min((chunk + 1) * v, matrix.shape[1])
                accumulator += self.dot_signed(
                    vector[lo:hi], matrix[row, lo:hi]
                )
            result[row] = accumulator
        return result

    # -- physical accounting ----------------------------------------------------

    @property
    def n_rings(self) -> int:
        """Rings in the unit: modulator bank + weight bank."""
        return 2 * self.spec.vector_length

    def energy_per_vector_op_j(self) -> float:
        """Electronics energy of one vector pass (DACs + ADC + drivers)."""
        v = self.spec.vector_length
        return (
            2.0 * v * ph.DAC_ENERGY_J_PER_CONVERSION
            + ph.ADC_ENERGY_J_PER_CONVERSION
            + v * ph.MODULATOR_DRIVER_ENERGY_J_PER_BIT * self.spec.dac_bits
        )
