"""Fleet-serving studies: cluster simulations as cacheable cells.

A :class:`ClusterCell` is the fleet generalisation of the serving
cells in :mod:`repro.experiments.serving_study`: one traffic mix
dispatched by one routing policy across N platform replicas, all
simulated in one shared environment.  The declarative study layer
(:mod:`repro.studies.compile`) lowers
:class:`~repro.studies.spec.StudySpec` points whose ``cluster`` section
is non-degenerate onto these, keying the cache by the spec digest —
and the cells run through the exact same parallel fan-out and on-disk
cache as every other study, so serial, ``jobs=N`` and warm-cache runs
stay bit-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from ..config import PlatformConfig
from ..core.engine import ExecutionTrace
from ..dnn.workload import extract_workload
from ..experiments.runner import build_platform, cell_key
from ..experiments.serving_study import (
    _mix_stream,
    platform_timelines,
    start_compute_hazards,
)
from ..mapping.residency import WeightResidency
from ..serving.lifecycle import LifecycleDriver, ResiliencePolicy
from ..serving.metrics import (
    ClusterResult,
    NodeStats,
    LatencyProfile,
    aggregate,
    mean_time_to_repair,
    per_model_stats,
    windowed_stats,
)
from ..serving.scheduler import BatchPolicy, RequestScheduler
from ..sim.core import Environment
from ..studies.registry import ARRIVALS, MODELS, ROUTERS
from ..studies.spec import FaultSpec
from .hazards import node_hazard_timeline
from .router import ClusterNode, ClusterRouter, HealthPolicy

CLUSTER_STUDY_VERSION = 1
"""Bump (with ``CACHE_SCHEMA_VERSION`` semantics) when the cluster
simulation changes meaning, so cached fleet results are never stale."""

NodeOverride = tuple[int, "str | None", "int | None", "int | None"]
"""Picklable per-node override: (node, controller, n_wavelengths,
gateways_per_chiplet) with ``None`` meaning inherit."""


@dataclass(frozen=True)
class ClusterCell:
    """One fleet-serving simulation point.

    ``models`` is the traffic mix as ``(name, fraction, slo_s,
    priority)`` tuples, exactly like
    :class:`~repro.experiments.serving_study.ScenarioCell`;
    ``node_overrides`` holds :data:`NodeOverride` tuples for
    heterogeneous fleets; ``node_faults`` is the node-level hazard
    timeline and ``platform_faults`` the fabric-level timeline applied
    to *every* node.  ``digest`` is the resolved study-spec digest.
    """

    platform: str
    models: tuple[tuple[str, float, "float | None", int], ...]
    controller: str
    policy: BatchPolicy
    arrival_kind: str
    rate_rps: float
    duration_s: float
    seed: int
    config: PlatformConfig
    replicas: int
    router: str
    weights: tuple[float, ...] = ()
    reroute_on_fail: bool = True
    node_overrides: tuple[NodeOverride, ...] = ()
    node_faults: FaultSpec | None = None
    platform_faults: FaultSpec | None = None
    burstiness: float = 4.0
    dwell_s: float = 20e-6
    think_time_s: float = 10e-6
    residency_capacity_bits: float | None = None
    digest: str = ""
    resilience: ResiliencePolicy | None = None
    health: HealthPolicy | None = None
    fidelity: "object | None" = None
    telemetry: "object | None" = None

    @property
    def mix_label(self) -> str:
        """Readable mix name, shared with the scenario cell."""
        if len(self.models) == 1:
            return self.models[0][0]
        return "+".join(
            f"{fraction * 100:.0f}%{name}"
            for name, fraction, _, _ in self.models
        )

    @property
    def grid_label(self) -> str:
        """Dry-run label: the mix plus the fleet shape."""
        return f"{self.replicas}x[{self.router}] {self.mix_label}"

    def key(self) -> str:
        """Disk-cache key: every behavioral field plus the spec digest.

        ``resilience``, ``health``, ``fidelity`` and ``telemetry``
        enter the extras only when set, so legacy cells keep their
        cache keys byte for byte.
        """
        extra = {
                "study": "cluster",
                "version": CLUSTER_STUDY_VERSION,
                "models": list(self.models),
                "policy": asdict(self.policy),
                "arrival_kind": self.arrival_kind,
                "rate_rps": self.rate_rps,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "replicas": self.replicas,
                "router": self.router,
                "weights": list(self.weights),
                "reroute_on_fail": self.reroute_on_fail,
                "node_overrides": list(self.node_overrides),
                "node_faults": (
                    self.node_faults.to_dict() if self.node_faults
                    else None
                ),
                "platform_faults": (
                    self.platform_faults.to_dict() if self.platform_faults
                    else None
                ),
                "burstiness": self.burstiness,
                "dwell_s": self.dwell_s,
                "think_time_s": self.think_time_s,
                "residency_capacity_bits": self.residency_capacity_bits,
                "spec": self.digest,
        }
        if self.resilience is not None:
            extra["resilience"] = asdict(self.resilience)
        if self.health is not None:
            extra["health"] = asdict(self.health)
        if self.fidelity is not None:
            extra["fidelity"] = asdict(self.fidelity)
        if self.telemetry is not None:
            extra["telemetry"] = asdict(self.telemetry)
        return cell_key(
            self.platform, self.mix_label, self.controller, self.config,
            extra=extra,
        )


def _node_config(cell: ClusterCell,
                 override: "NodeOverride | None"
                 ) -> tuple[PlatformConfig, str]:
    """(config, controller) for one node after its overrides."""
    config, controller = cell.config, cell.controller
    if override is not None:
        _, node_controller, n_wavelengths, gateways = override
        if node_controller is not None:
            controller = node_controller
        if n_wavelengths is not None:
            config = config.with_wavelengths(n_wavelengths)
        if gateways is not None:
            config = config.with_gateways_per_chiplet(gateways)
    return config, controller


def _start_cluster_telemetry(telemetry, env, nodes, router,
                             duration_s: float, driver=None):
    """Fleet-level telemetry session: one recorder/registry shared by
    every node (per-node track prefixes keep request timelines
    distinct), plus router-level instants and per-node gauges.
    Returns ``None`` when the cell carries no policy."""
    if telemetry is None:
        return None
    # Deferred: the obs package is only needed on the armed path.
    from ..obs.session import TelemetrySession

    session = TelemetrySession(env, telemetry)
    recorder = session.recorder
    metrics = session.metrics
    for node in nodes:
        scheduler = node.scheduler
        if recorder is not None:
            scheduler.obs_trace = recorder
            scheduler.obs_prefix = f"{node.name}/"
            node.residency.obs_trace = recorder
        scheduler.obs_metrics = metrics
        metrics.gauge(f"{node.name}.queue_depth",
                      lambda s=scheduler: float(s.queue_length))
        metrics.gauge(f"{node.name}.inflight",
                      lambda s=scheduler: float(s.outstanding))
        metrics.gauge(f"{node.name}.mac_utilization",
                      scheduler.compute.mean_utilization)
    if recorder is not None:
        router.obs_trace = recorder
        if driver is not None:
            driver.obs_trace = recorder
    metrics.gauge("routable_nodes",
                  lambda: float(len(router.routable_nodes())))
    session.start(duration_s)
    return session


def _finish_cluster_telemetry(session, nodes, router, injected: int,
                              completed: int, shed: int):
    """Fold fleet counters in and freeze the session (``None`` passes)."""
    if session is None:
        return None
    metrics = session.metrics
    metrics.inc("requests_injected", injected)
    metrics.inc("requests_completed", completed)
    metrics.inc("requests_shed", shed)
    metrics.inc("requests_rerouted", router.requests_rerouted)
    for node in nodes:
        metrics.inc("batches_dispatched",
                    node.scheduler.batches_dispatched)
        metrics.inc("weight_fetches", node.residency.fetches_issued)
        metrics.inc("weight_fetch_hits", node.residency.fetch_hits)
        metrics.inc("weight_evictions", node.residency.evictions)
    return session.summary(total_requests=injected)


def simulate_cluster_cell(cell: ClusterCell,
                          record_sink: list | None = None) -> ClusterResult:
    """Worker body: one full fleet-serving simulation.

    ``record_sink``, when given, receives every per-request record so
    hybrid-fidelity calibration can extract service-time quantiles.

    N replicas stand up in one shared environment (their controllers,
    hazard engines and schedulers all interleave on the same event
    queue), the router streams the arrival process across them, and the
    per-node records aggregate into one :class:`ClusterResult`.
    """
    overrides = {entry[0]: entry for entry in cell.node_overrides}
    workloads = {
        name: extract_workload(MODELS.get(name)())
        for name, _, _, _ in cell.models
    }
    fabric_faults, compute_events = platform_timelines(
        cell.platform_faults
    )

    env = Environment()
    nodes: list[ClusterNode] = []
    for index in range(cell.replicas):
        config, controller = _node_config(cell, overrides.get(index))
        platform = build_platform(
            cell.platform, config, controller, faults=fabric_faults
        )
        sim = platform.build_simulation(env)
        residency = WeightResidency(
            env, capacity_bits=cell.residency_capacity_bits
        )
        (primary, _, slo_s, priority), *tenants = cell.models
        scheduler = RequestScheduler(
            sim, sim.map_workload(workloads[primary]), primary,
            policy=cell.policy, residency=residency,
            trace=ExecutionTrace(), slo_s=slo_s, priority=priority,
        )
        for name, _, tenant_slo, tenant_priority in tenants:
            scheduler.add_model(
                name, sim.map_workload(workloads[name]),
                slo_s=tenant_slo, priority=tenant_priority,
            )
        nodes.append(ClusterNode(
            index=index, platform=platform, sim=sim,
            scheduler=scheduler, residency=residency,
            weight=cell.weights[index] if cell.weights else 1.0,
        ))

    if compute_events:
        start_compute_hazards(
            env, tuple(node.scheduler.compute for node in nodes),
            compute_events,
        )
    policy = ROUTERS.get(cell.router)(len(nodes), cell.weights)
    health = cell.health if cell.health else None
    router = ClusterRouter(
        nodes, policy,
        node_events=node_hazard_timeline(cell.node_faults),
        reroute_on_fail=cell.reroute_on_fail,
        health=health,
    )
    arrivals = ARRIVALS.get(cell.arrival_kind)(
        cell.rate_rps, cell.seed, burstiness=cell.burstiness,
        dwell_s=cell.dwell_s, think_time_s=cell.think_time_s,
    )
    mix = _mix_stream(cell.models, cell.seed)
    driver = None
    if cell.resilience is not None and cell.resilience:
        driver = LifecycleDriver(router, cell.resilience,
                                 seed=cell.seed)
        session = _start_cluster_telemetry(
            cell.telemetry, env, nodes, router, cell.duration_s,
            driver=driver,
        )
        driver.serve(arrivals, cell.duration_s, models=mix)
    else:
        session = _start_cluster_telemetry(
            cell.telemetry, env, nodes, router, cell.duration_s
        )
        router.serve(arrivals, cell.duration_s, models=mix)

    elapsed = env.now
    all_records = [
        record for node in nodes for record in node.scheduler.records
    ]
    if record_sink is not None:
        record_sink.extend(all_records)
    if driver is not None:
        # Client-visible accounting: logical requests, with retries and
        # hedges folded into each one's latency.
        records = driver.records
        injected = driver.requests_injected
        completed = driver.requests_completed
        shed = driver.requests_gave_up
        resilience_stats = driver.stats()
    else:
        records = all_records
        injected = router.requests_routed
        completed = sum(
            node.scheduler.requests_completed for node in nodes
        )
        shed = sum(node.scheduler.requests_shed for node in nodes)
        resilience_stats = None
    latency, queue_delay, _ = aggregate(records)
    per_node = []
    network_energy_j = 0.0
    compute_energy_j = 0.0
    for node in nodes:
        scheduler = node.scheduler
        served = [r for r in scheduler.records if not r.dropped]
        per_node.append(NodeStats(
            node=node.name,
            state=node.state,
            requests_completed=scheduler.requests_completed,
            requests_shed=scheduler.requests_shed,
            rerouted_away=node.rerouted_away,
            latency=LatencyProfile.from_samples(
                [r.latency_s for r in served]
            ),
            goodput_rps=(
                scheduler.requests_completed / elapsed
                if elapsed > 0 else 0.0
            ),
            mean_compute_utilization=(
                scheduler.compute.mean_utilization()
            ),
        ))
        network_energy_j += node.sim.fabric.energy_report().total_energy_j
        compute_energy_j += node.platform.trace_compute_energy_j(
            scheduler.trace, elapsed
        )

    incidents = router.incidents()
    windows: tuple = ()
    if incidents:
        start = min(incident.start_s for incident in incidents)
        end = max(
            incident.end_s if incident.end_s is not None else elapsed
            for incident in incidents
        )
        windows = windowed_stats(records, start, end, elapsed)

    return ClusterResult(
        platform=nodes[0].platform.name,
        model=cell.mix_label,
        controller=cell.controller,
        router=cell.router,
        policy=cell.policy.label,
        arrival_kind=cell.arrival_kind,
        n_nodes=cell.replicas,
        offered_rps=cell.rate_rps,
        duration_s=cell.duration_s,
        elapsed_s=elapsed,
        requests_injected=injected,
        requests_completed=completed,
        latency=latency,
        queue_delay=queue_delay,
        per_node=tuple(per_node),
        requests_shed=shed,
        requests_rerouted=router.requests_rerouted,
        per_model=per_model_stats(
            records, elapsed, nodes[0].scheduler.slos()
        ),
        node_events=tuple(router.records),
        network_energy_j=network_energy_j,
        compute_energy_j=compute_energy_j,
        windows=windows,
        resilience=resilience_stats,
        availability=router.availability(elapsed),
        mttr_s=mean_time_to_repair(incidents),
        incidents=incidents,
        telemetry=_finish_cluster_telemetry(
            session, nodes, router, injected, completed, shed
        ),
    )


# ---------------------------------------------------------------------------
# Text reports.
# ---------------------------------------------------------------------------


def render_cluster_study(results: Sequence[ClusterResult]) -> str:
    """Fleet latency–throughput table, one row per simulated point."""
    header = (
        f"{'platform':<28}{'router':<18}{'nodes':>6}{'offered/s':>12}"
        f"{'goodput/s':>12}{'p50(us)':>11}{'p99(us)':>11}{'imbal':>10}"
        f"{'rerouted':>9}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        results,
        key=lambda r: (r.platform, r.router, r.n_nodes, r.offered_rps),
    )
    for result in ordered:
        lines.append(result.summary_row())
    return "\n".join(lines)


def render_node_table(results: Sequence[ClusterResult]) -> str:
    """Per-node breakdown: one row per (point, node)."""
    header = (
        f"{'router':<18}{'offered/s':>12}  {'node':<8}{'state':<10}"
        f"{'done':>7}{'shed':>6}{'away':>6}{'p99(us)':>10}{'util':>8}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        for stats in result.per_node:
            lines.append(
                f"{result.router:<18}{result.offered_rps:>12.0f}  "
                f"{stats.node:<8}{stats.state:<10}"
                f"{stats.requests_completed:>7}{stats.requests_shed:>6}"
                f"{stats.rerouted_away:>6}"
                f"{stats.latency.p99_s * 1e6:>10.1f}"
                f"{stats.mean_compute_utilization:>8.2f}"
            )
    return "\n".join(lines)
