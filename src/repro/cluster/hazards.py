"""Node-level hazards: whole accelerator nodes fail, drain and return.

The fabric-level hazard engine (:mod:`repro.interposer.photonic.faults`)
models resources dying *inside* one platform; at fleet scale the
dominant events are coarser — an entire node drops out (power, host,
link), is drained for maintenance, or rejoins after repair.  This
module models those as typed events on the **cluster** timeline:

* :class:`NodeFail`   — the node stops *receiving* at ``at_s``: the
  router stops routing to it and, with ``reroute_on_fail`` (the
  default), withdraws its queued-but-undispatched requests and
  re-enqueues them on surviving nodes, so only in-flight batches finish
  locally.  With rerouting disabled the accepted queue drains in place
  instead (graceful for accepted work, closed to new work — the same
  local behavior as a drain, but the requests are *not* moved).
* :class:`NodeDrain`  — graceful removal: no new requests, the queue
  drains in place.
* :class:`NodeRepair` — a failed or draining node returns to rotation.

The factories register under ``node-fail`` / ``node-drain`` /
``node-repair`` in the same ``HAZARD_FACTORIES`` dict the ``HAZARDS``
registry shares with the fabric-level kinds, so cluster fault sections
resolve through the one hazard namespace — and each layer rejects the
other layer's kinds instead of silently misapplying them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

from ..errors import ConfigurationError, UnknownNameError
from ..interposer.photonic.faults import (
    COMPUTE_HAZARD_KINDS,
    HAZARD_FACTORIES,
    _reject_inert,
)


@dataclass(frozen=True)
class NodeFail:
    """Node ``node`` stops serving at ``at_s`` (until a repair)."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-fail"


@dataclass(frozen=True)
class NodeDrain:
    """Node ``node`` stops accepting new requests at ``at_s``."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-drain"


@dataclass(frozen=True)
class NodeRepair:
    """Node ``node`` returns to the routing rotation at ``at_s``."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-repair"


@dataclass(frozen=True)
class RackFail:
    """A correlated outage: every node in ``nodes`` fails at ``at_s``.

    Models shared-fate failure domains — a rack losing power, a shared
    optical trunk, a power domain browning out — where nodes do not
    fail independently.  Semantically equivalent to simultaneous
    :class:`NodeFail` events on every member, applied atomically.
    """

    at_s: float
    nodes: tuple[int, ...]

    kind: ClassVar[str] = "rack-fail"


@dataclass(frozen=True)
class RackRepair:
    """The correlated group ``nodes`` returns to rotation at ``at_s``."""

    at_s: float
    nodes: tuple[int, ...]

    kind: ClassVar[str] = "rack-repair"


NodeHazardEvent = Union[NodeFail, NodeDrain, NodeRepair, RackFail,
                        RackRepair]
"""Any event a cluster hazard timeline can carry."""

NODE_HAZARD_KINDS = ("node-fail", "node-drain", "node-repair",
                     "rack-fail", "rack-repair")
"""Hazard kinds that apply to cluster nodes, not the photonic fabric."""


def event_nodes(event: NodeHazardEvent) -> tuple[int, ...]:
    """The node indices a cluster event addresses (group or single)."""
    if isinstance(event, (RackFail, RackRepair)):
        return event.nodes
    return (event.node,)


@dataclass(frozen=True)
class NodeHazardRecord:
    """One applied node event and what the router did about it.

    Plain picklable data: cluster results carry these through the
    cache and the JSON/CSV export path.  ``rerouted`` counts the
    queued requests withdrawn from the node and re-enqueued elsewhere
    (failures only; 0 for drains and repairs).
    """

    kind: str
    node: int
    at_s: float
    rerouted: int = 0


# ---------------------------------------------------------------------------
# Event factories (HAZARDS registry entries for the node kinds).
# ---------------------------------------------------------------------------


def _make_node_event(cls, kind: str, at_s: float,
                     duration_s: float | None = None,
                     memory_gateways: int = 0,
                     chiplet_gateways=(),
                     temperature_rise_k: float = 0.0,
                     power_fraction: float = 1.0,
                     seed: int = 0,
                     node: int | None = None,
                     nodes=(),
                     mac_fraction: float = 1.0):
    # Fabric-only spec knobs would silently no-op on a node event (yet
    # still move cache digests): reject instead.
    _reject_inert(
        kind,
        duration_s=duration_s is not None,
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        temperature_rise_k=temperature_rise_k != 0.0,
        power_fraction=power_fraction != 1.0,
        seed=seed != 0,
        nodes=bool(nodes),
        mac_fraction=mac_fraction != 1.0,
    )
    if node is None:
        raise ConfigurationError(
            f"{kind} at t={at_s}s needs a 'node' index"
        )
    if node < 0:
        raise ConfigurationError(
            f"{kind} node index must be >= 0, got {node}"
        )
    return cls(at_s=at_s, node=int(node))


def _make_rack_event(cls, kind: str, at_s: float,
                     duration_s: float | None = None,
                     memory_gateways: int = 0,
                     chiplet_gateways=(),
                     temperature_rise_k: float = 0.0,
                     power_fraction: float = 1.0,
                     seed: int = 0,
                     node: int | None = None,
                     nodes=(),
                     mac_fraction: float = 1.0):
    _reject_inert(
        kind,
        duration_s=duration_s is not None,
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        temperature_rise_k=temperature_rise_k != 0.0,
        power_fraction=power_fraction != 1.0,
        seed=seed != 0,
        node=node is not None,
        mac_fraction=mac_fraction != 1.0,
    )
    if not nodes:
        raise ConfigurationError(
            f"{kind} at t={at_s}s needs a non-empty 'nodes' group "
            "(the correlated failure domain)"
        )
    members = tuple(int(index) for index in nodes)
    if any(index < 0 for index in members):
        raise ConfigurationError(
            f"{kind} node indices must be >= 0, got {list(members)}"
        )
    if len(set(members)) != len(members):
        raise ConfigurationError(
            f"{kind} at t={at_s}s names duplicate nodes: {list(members)}"
        )
    return cls(at_s=at_s, nodes=members)


def make_node_fail(at_s: float, **fields) -> NodeFail:
    """``node-fail`` factory: validates the generic spec field set."""
    return _make_node_event(NodeFail, "node-fail", at_s, **fields)


def make_node_drain(at_s: float, **fields) -> NodeDrain:
    """``node-drain`` factory."""
    return _make_node_event(NodeDrain, "node-drain", at_s, **fields)


def make_node_repair(at_s: float, **fields) -> NodeRepair:
    """``node-repair`` factory."""
    return _make_node_event(NodeRepair, "node-repair", at_s, **fields)


def make_rack_fail(at_s: float, **fields) -> RackFail:
    """``rack-fail`` factory (correlated multi-node outage)."""
    return _make_rack_event(RackFail, "rack-fail", at_s, **fields)


def make_rack_repair(at_s: float, **fields) -> RackRepair:
    """``rack-repair`` factory."""
    return _make_rack_event(RackRepair, "rack-repair", at_s, **fields)


NODE_HAZARD_FACTORIES = {
    "node-fail": make_node_fail,
    "node-drain": make_node_drain,
    "node-repair": make_node_repair,
    "rack-fail": make_rack_fail,
    "rack-repair": make_rack_repair,
}

for _kind, _factory in NODE_HAZARD_FACTORIES.items():
    # Shared namespace with the fabric kinds: the HAZARDS registry is
    # backed by this dict, so node kinds resolve everywhere specs do.
    HAZARD_FACTORIES.setdefault(_kind, _factory)


# ---------------------------------------------------------------------------
# Timeline lowering and validation.
# ---------------------------------------------------------------------------


def node_hazard_timeline(faults) -> tuple[NodeHazardEvent, ...]:
    """Lower a cluster-level fault section onto typed node events.

    ``faults`` is a :class:`~repro.studies.spec.FaultSpec` (or None).
    Every kind must be a node-level hazard; fabric kinds belong in
    ``platform.faults`` and are rejected with a pointer there.
    """
    if faults is None or not faults.events:
        return ()
    events = []
    for entry in faults.events:
        fields = entry.to_dict()
        kind = fields.pop("kind")
        factory = HAZARD_FACTORIES.get(kind)
        if factory is None:
            raise UnknownNameError(
                "hazard", kind, tuple(HAZARD_FACTORIES),
                registry="HAZARDS",
            )
        if kind not in NODE_HAZARD_KINDS:
            layer = (
                "the compute path" if kind in COMPUTE_HAZARD_KINDS
                else "the photonic fabric"
            )
            raise ConfigurationError(
                f"hazard kind {kind!r} applies to {layer}; "
                "put it in platform.faults (cluster.faults takes "
                f"{', '.join(NODE_HAZARD_KINDS)})"
            )
        events.append(factory(**fields))
    return tuple(events)


def validate_node_timeline(events: tuple[NodeHazardEvent, ...],
                           n_nodes: int,
                           allow_total_outage: bool = False) -> None:
    """Walk a node timeline once: it must stay applicable throughout.

    Every event must address an existing node, transitions must be
    legal (no failing a failed node, no repairing a healthy one) and —
    mirroring the fabric engine's survivors rule — every instant must
    leave at least one node in the ``up`` state to route to.  With
    ``allow_total_outage`` (probe-based health-checked routing, where
    the router queues onto its stale view instead of raising) a
    correlated outage may take down the whole fleet.
    """
    states = ["up"] * n_nodes
    previous = 0.0
    for event in events:
        if event.at_s < previous:
            raise ConfigurationError(
                "node events must be listed chronologically: "
                f"{event.kind} at t={event.at_s}s follows t={previous}s"
            )
        previous = event.at_s
        for index in event_nodes(event):
            if index >= n_nodes:
                raise ConfigurationError(
                    f"{event.kind} at t={event.at_s}s names node "
                    f"{index} but the cluster has {n_nodes} node(s) "
                    f"(indices 0..{n_nodes - 1})"
                )
            state = states[index]
            if isinstance(event, (NodeFail, RackFail)):
                if state == "failed":
                    raise ConfigurationError(
                        f"{event.kind} at t={event.at_s}s: node {index} "
                        "is already failed"
                    )
                states[index] = "failed"
            elif isinstance(event, NodeDrain):
                if state != "up":
                    raise ConfigurationError(
                        f"node-drain at t={event.at_s}s: node {index} "
                        f"is {state}, only an up node can drain"
                    )
                states[index] = "draining"
            else:  # NodeRepair / RackRepair
                if state == "up":
                    raise ConfigurationError(
                        f"{event.kind} at t={event.at_s}s: node {index} "
                        "is already up"
                    )
                states[index] = "up"
        surviving = states.count("up")
        if surviving == 0 and not allow_total_outage:
            raise ConfigurationError(
                f"{event.kind} at t={event.at_s}s leaves no node up: "
                f"all {n_nodes} node(s) failed or draining (at least "
                "one must stay routable without probe-based health "
                "checking)"
            )
