"""Node-level hazards: whole accelerator nodes fail, drain and return.

The fabric-level hazard engine (:mod:`repro.interposer.photonic.faults`)
models resources dying *inside* one platform; at fleet scale the
dominant events are coarser — an entire node drops out (power, host,
link), is drained for maintenance, or rejoins after repair.  This
module models those as typed events on the **cluster** timeline:

* :class:`NodeFail`   — the node stops *receiving* at ``at_s``: the
  router stops routing to it and, with ``reroute_on_fail`` (the
  default), withdraws its queued-but-undispatched requests and
  re-enqueues them on surviving nodes, so only in-flight batches finish
  locally.  With rerouting disabled the accepted queue drains in place
  instead (graceful for accepted work, closed to new work — the same
  local behavior as a drain, but the requests are *not* moved).
* :class:`NodeDrain`  — graceful removal: no new requests, the queue
  drains in place.
* :class:`NodeRepair` — a failed or draining node returns to rotation.

The factories register under ``node-fail`` / ``node-drain`` /
``node-repair`` in the same ``HAZARD_FACTORIES`` dict the ``HAZARDS``
registry shares with the fabric-level kinds, so cluster fault sections
resolve through the one hazard namespace — and each layer rejects the
other layer's kinds instead of silently misapplying them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

from ..errors import ConfigurationError, UnknownNameError
from ..interposer.photonic.faults import HAZARD_FACTORIES, _reject_inert


@dataclass(frozen=True)
class NodeFail:
    """Node ``node`` stops serving at ``at_s`` (until a repair)."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-fail"


@dataclass(frozen=True)
class NodeDrain:
    """Node ``node`` stops accepting new requests at ``at_s``."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-drain"


@dataclass(frozen=True)
class NodeRepair:
    """Node ``node`` returns to the routing rotation at ``at_s``."""

    at_s: float
    node: int

    kind: ClassVar[str] = "node-repair"


NodeHazardEvent = Union[NodeFail, NodeDrain, NodeRepair]
"""Any event a cluster hazard timeline can carry."""

NODE_HAZARD_KINDS = ("node-fail", "node-drain", "node-repair")
"""Hazard kinds that apply to cluster nodes, not the photonic fabric."""


@dataclass(frozen=True)
class NodeHazardRecord:
    """One applied node event and what the router did about it.

    Plain picklable data: cluster results carry these through the
    cache and the JSON/CSV export path.  ``rerouted`` counts the
    queued requests withdrawn from the node and re-enqueued elsewhere
    (failures only; 0 for drains and repairs).
    """

    kind: str
    node: int
    at_s: float
    rerouted: int = 0


# ---------------------------------------------------------------------------
# Event factories (HAZARDS registry entries for the node kinds).
# ---------------------------------------------------------------------------


def _make_node_event(cls, kind: str, at_s: float,
                     duration_s: float | None = None,
                     memory_gateways: int = 0,
                     chiplet_gateways=(),
                     temperature_rise_k: float = 0.0,
                     power_fraction: float = 1.0,
                     seed: int = 0,
                     node: int | None = None):
    # Fabric-only spec knobs would silently no-op on a node event (yet
    # still move cache digests): reject instead.
    _reject_inert(
        kind,
        duration_s=duration_s is not None,
        memory_gateways=memory_gateways != 0,
        chiplet_gateways=bool(chiplet_gateways),
        temperature_rise_k=temperature_rise_k != 0.0,
        power_fraction=power_fraction != 1.0,
        seed=seed != 0,
    )
    if node is None:
        raise ConfigurationError(
            f"{kind} at t={at_s}s needs a 'node' index"
        )
    if node < 0:
        raise ConfigurationError(
            f"{kind} node index must be >= 0, got {node}"
        )
    return cls(at_s=at_s, node=int(node))


def make_node_fail(at_s: float, **fields) -> NodeFail:
    """``node-fail`` factory: validates the generic spec field set."""
    return _make_node_event(NodeFail, "node-fail", at_s, **fields)


def make_node_drain(at_s: float, **fields) -> NodeDrain:
    """``node-drain`` factory."""
    return _make_node_event(NodeDrain, "node-drain", at_s, **fields)


def make_node_repair(at_s: float, **fields) -> NodeRepair:
    """``node-repair`` factory."""
    return _make_node_event(NodeRepair, "node-repair", at_s, **fields)


NODE_HAZARD_FACTORIES = {
    "node-fail": make_node_fail,
    "node-drain": make_node_drain,
    "node-repair": make_node_repair,
}

for _kind, _factory in NODE_HAZARD_FACTORIES.items():
    # Shared namespace with the fabric kinds: the HAZARDS registry is
    # backed by this dict, so node kinds resolve everywhere specs do.
    HAZARD_FACTORIES.setdefault(_kind, _factory)


# ---------------------------------------------------------------------------
# Timeline lowering and validation.
# ---------------------------------------------------------------------------


def node_hazard_timeline(faults) -> tuple[NodeHazardEvent, ...]:
    """Lower a cluster-level fault section onto typed node events.

    ``faults`` is a :class:`~repro.studies.spec.FaultSpec` (or None).
    Every kind must be a node-level hazard; fabric kinds belong in
    ``platform.faults`` and are rejected with a pointer there.
    """
    if faults is None or not faults.events:
        return ()
    events = []
    for entry in faults.events:
        fields = entry.to_dict()
        kind = fields.pop("kind")
        factory = HAZARD_FACTORIES.get(kind)
        if factory is None:
            raise UnknownNameError(
                "hazard", kind, tuple(HAZARD_FACTORIES),
                registry="HAZARDS",
            )
        if kind not in NODE_HAZARD_KINDS:
            raise ConfigurationError(
                f"hazard kind {kind!r} applies to the photonic fabric; "
                "put it in platform.faults (cluster.faults takes "
                f"{', '.join(NODE_HAZARD_KINDS)})"
            )
        events.append(factory(**fields))
    return tuple(events)


def validate_node_timeline(events: tuple[NodeHazardEvent, ...],
                           n_nodes: int) -> None:
    """Walk a node timeline once: it must stay applicable throughout.

    Every event must address an existing node, transitions must be
    legal (no failing a failed node, no repairing a healthy one) and —
    mirroring the fabric engine's survivors rule — every instant must
    leave at least one node in the ``up`` state to route to.
    """
    states = ["up"] * n_nodes
    previous = 0.0
    for event in events:
        if event.at_s < previous:
            raise ConfigurationError(
                "node events must be listed chronologically: "
                f"{event.kind} at t={event.at_s}s follows t={previous}s"
            )
        previous = event.at_s
        if event.node >= n_nodes:
            raise ConfigurationError(
                f"{event.kind} at t={event.at_s}s names node "
                f"{event.node} but the cluster has {n_nodes} node(s) "
                f"(indices 0..{n_nodes - 1})"
            )
        state = states[event.node]
        if isinstance(event, NodeFail):
            if state == "failed":
                raise ConfigurationError(
                    f"node-fail at t={event.at_s}s: node {event.node} "
                    "is already failed"
                )
            states[event.node] = "failed"
        elif isinstance(event, NodeDrain):
            if state != "up":
                raise ConfigurationError(
                    f"node-drain at t={event.at_s}s: node {event.node} "
                    f"is {state}, only an up node can drain"
                )
            states[event.node] = "draining"
        else:  # NodeRepair
            if state == "up":
                raise ConfigurationError(
                    f"node-repair at t={event.at_s}s: node {event.node} "
                    "is already up"
                )
            states[event.node] = "up"
        surviving = states.count("up")
        if surviving == 0:
            raise ConfigurationError(
                f"{event.kind} at t={event.at_s}s leaves no node up: "
                f"all {n_nodes} node(s) failed or draining (at least "
                "one must stay routable)"
            )
