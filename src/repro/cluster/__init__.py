"""Cluster serving: a fleet of platform replicas behind a router.

Scales the single-node serving layer (:mod:`repro.serving`) out to N
platform replicas — each its own
:meth:`~repro.core.accelerator._PlatformBase.build_simulation` context,
all inside **one** shared :class:`~repro.sim.core.Environment` — behind
a :class:`~repro.cluster.router.ClusterRouter` that dispatches the
traffic-mix arrival stream via pluggable routing policies and survives
node-level hazards (:mod:`repro.cluster.hazards`).  The declarative
study layer lowers :class:`~repro.studies.spec.ClusterSpec` sections
onto :class:`~repro.cluster.study.ClusterCell`s through the same
parallel/cached cell machinery as every other study.

The study module loads lazily (PEP 562): it resolves names against
:mod:`repro.studies.registry`, which itself imports this package for
the ``ROUTERS`` backing dict — eager package-level imports would make
that a cycle.
"""

from importlib import import_module

from .hazards import (
    NODE_HAZARD_KINDS,
    NodeDrain,
    NodeFail,
    NodeHazardRecord,
    NodeRepair,
    node_hazard_timeline,
    validate_node_timeline,
)
from .router import (
    ROUTER_FACTORIES,
    ClusterNode,
    ClusterRouter,
    RoutingPolicy,
)

_LAZY_EXPORTS = {
    ".study": (
        "CLUSTER_STUDY_VERSION",
        "ClusterCell",
        "render_cluster_study",
        "render_node_table",
        "simulate_cluster_cell",
    ),
}

_LAZY_HOMES = {
    name: module
    for module, names in _LAZY_EXPORTS.items()
    for name in names
}


def __getattr__(name: str):
    home = _LAZY_HOMES.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(import_module(home, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


__all__ = [
    "ClusterNode",
    "ClusterRouter",
    "NODE_HAZARD_KINDS",
    "NodeDrain",
    "NodeFail",
    "NodeHazardRecord",
    "NodeRepair",
    "ROUTER_FACTORIES",
    "RoutingPolicy",
    "node_hazard_timeline",
    "validate_node_timeline",
    *_LAZY_HOMES,
]
