"""Fleet routing: dispatch one arrival stream across N platform nodes.

A :class:`ClusterRouter` sits above the per-node
:class:`~repro.serving.scheduler.RequestScheduler`s: it consumes the
traffic-mix arrival process exactly like a single scheduler would, but
each request is first assigned to a node by a pluggable
:class:`RoutingPolicy`:

* ``round-robin``         — cycle over the routable nodes;
* ``least-outstanding``   — fewest accepted-but-uncompleted requests;
* ``weighted``            — capacity-proportional: the node furthest
  below its weight share of total dispatches goes next;
* ``join-shortest-queue`` — fewest requests waiting for dispatch
  (ignores in-flight work, the classic JSQ approximation);
* ``model-affinity``      — prefer nodes whose
  :class:`~repro.mapping.residency.WeightResidency` already holds the
  request's model (no re-fetch), least-outstanding among them.

The router also owns the **node-level hazard timeline**
(:mod:`repro.cluster.hazards`): failed and draining nodes leave the
routable set, a failure optionally withdraws the node's queued-but-
undispatched requests and re-enqueues them on survivors (original
arrival times preserved, so latency and SLO clocks keep running), and
repairs return nodes to rotation.  Everything runs inside one shared
:class:`~repro.sim.core.Environment`, so fleet results are exactly as
deterministic as single-node ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..core.accelerator import PlatformSimulation
from ..errors import ConfigurationError, SimulationError
from ..mapping.residency import WeightResidency
from ..serving.scheduler import DEFAULT_DRAIN_LIMIT_S, RequestScheduler
from ..sim.traffic import ClosedLoopClients
from .hazards import (
    NodeDrain,
    NodeFail,
    NodeHazardEvent,
    NodeHazardRecord,
    validate_node_timeline,
)


@dataclass
class ClusterNode:
    """One platform replica behind the router.

    ``state`` is router-visible only: a ``failed`` node's scheduler
    keeps draining whatever it already accepted — in-flight batches,
    plus its queue unless the router withdrew it on failure — it just
    never receives another routed request until repaired.
    """

    index: int
    platform: object
    sim: PlatformSimulation
    scheduler: RequestScheduler
    residency: WeightResidency
    weight: float = 1.0
    state: str = "up"
    routed: int = 0
    rerouted_away: int = 0

    @property
    def name(self) -> str:
        return f"node{self.index}"

    @property
    def outstanding(self) -> int:
        return self.scheduler.outstanding

    @property
    def queue_length(self) -> int:
        return self.scheduler.queue_length

    def holds_model(self, model: str) -> bool:
        """Whether the node's weight store already has (or is fetching)
        this model's weights."""
        return self.residency.resident_bits_for(model) > 0.0


# ---------------------------------------------------------------------------
# Routing policies.
# ---------------------------------------------------------------------------


class RoutingPolicy:
    """Chooses a node for each request; stateless unless noted."""

    name = "routing-policy"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        """Pick one of ``candidates`` (non-empty, all routable)."""
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """Cycle over the routable nodes in index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._dispatches = 0

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        node = candidates[self._dispatches % len(candidates)]
        self._dispatches += 1
        return node


class LeastOutstandingRouting(RoutingPolicy):
    """Fewest accepted-but-uncompleted requests (ties: lowest index)."""

    name = "least-outstanding"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates, key=lambda n: (n.outstanding, n.index))


class WeightedRouting(RoutingPolicy):
    """Capacity-proportional dispatch.

    The node whose dispatch count is furthest below its weight share
    goes next — deterministic smooth weighted round-robin, no RNG.
    """

    name = "weighted"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates,
                   key=lambda n: (n.routed / n.weight, n.index))


class JoinShortestQueueRouting(RoutingPolicy):
    """Fewest requests waiting for dispatch (ties: lowest index)."""

    name = "join-shortest-queue"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates, key=lambda n: (n.queue_length, n.index))


class ModelAffinityRouting(RoutingPolicy):
    """Prefer nodes already holding the request's weights.

    Among the nodes where the model is resident (no weight re-fetch,
    per-node :class:`~repro.mapping.residency.WeightResidency`), pick
    the least-outstanding; when no node holds the model yet, fall back
    to least-outstanding overall — which then *becomes* an affinity
    node for the model's later requests.
    """

    name = "model-affinity"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        resident = [n for n in candidates if n.holds_model(model)]
        pool = resident or candidates
        return min(pool, key=lambda n: (n.outstanding, n.index))


def _require_no_weights(name: str, n_nodes: int,
                        weights: tuple[float, ...]) -> None:
    if weights:
        raise ConfigurationError(
            f"router {name!r} ignores per-node weights; "
            "use the 'weighted' router or drop cluster.weights"
        )


def _make_round_robin(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("round-robin", n_nodes, weights)
    return RoundRobinRouting()


def _make_least_outstanding(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("least-outstanding", n_nodes, weights)
    return LeastOutstandingRouting()


def _make_weighted(n_nodes: int, weights=()) -> RoutingPolicy:
    if len(weights) != n_nodes:
        raise ConfigurationError(
            f"the weighted router needs one weight per node: got "
            f"{len(weights)} weight(s) for {n_nodes} node(s)"
        )
    if any(weight <= 0 for weight in weights):
        raise ConfigurationError(
            f"node weights must be positive, got {list(weights)}"
        )
    return WeightedRouting()


def _make_jsq(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("join-shortest-queue", n_nodes, weights)
    return JoinShortestQueueRouting()


def _make_model_affinity(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("model-affinity", n_nodes, weights)
    return ModelAffinityRouting()


ROUTER_FACTORIES: dict[str, Callable[..., RoutingPolicy]] = {
    "round-robin": _make_round_robin,
    "least-outstanding": _make_least_outstanding,
    "weighted": _make_weighted,
    "join-shortest-queue": _make_jsq,
    "model-affinity": _make_model_affinity,
}
"""Routing-policy factories ``(n_nodes, weights) -> policy``.  The
``ROUTERS`` registry (:mod:`repro.studies.registry`) shares this dict,
so externally registered routers are buildable from JSON specs."""


# ---------------------------------------------------------------------------
# The router.
# ---------------------------------------------------------------------------


class ClusterRouter:
    """Streams one arrival process across a fleet of nodes.

    Build one per cluster simulation: it owns the routing policy, the
    node states, the node-level hazard timeline and the fleet-level
    drain barrier.  ``t=0`` node events apply synchronously at
    construction (mirroring the fabric hazard engine); later events run
    as an ordinary process in the shared environment.
    """

    def __init__(self, nodes: list[ClusterNode], policy: RoutingPolicy,
                 node_events: tuple[NodeHazardEvent, ...] = (),
                 reroute_on_fail: bool = True):
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.env = nodes[0].sim.env
        for node in nodes:
            if node.sim.env is not self.env:
                raise ConfigurationError(
                    f"{node.name} lives in a different Environment; "
                    "all cluster nodes must share one"
                )
        validate_node_timeline(node_events, len(nodes))
        self.nodes = nodes
        self.policy = policy
        self.node_events = node_events
        self.reroute_on_fail = reroute_on_fail
        self.records: list[NodeHazardRecord] = []
        self.requests_routed = 0
        self.requests_rerouted = 0
        self._closed = 0
        self._injection_done = False
        self._drained = self.env.event()
        self._served = False
        for node in nodes:
            node.scheduler.on_request_closed = self._request_closed
        pending = []
        for event in node_events:
            if event.at_s <= 0.0:
                self._apply(event)
            else:
                pending.append(event)
        if pending:
            self.env.process(self._run_events(pending))

    # -- routing ------------------------------------------------------------------

    def routable_nodes(self) -> list[ClusterNode]:
        """Nodes currently accepting new requests, index order."""
        return [node for node in self.nodes if node.state == "up"]

    def _choose(self, model: str | None) -> ClusterNode:
        candidates = self.routable_nodes()
        if not candidates:
            # The timeline validator forbids event sequences that kill
            # every node, so this is an internal invariant violation.
            raise SimulationError(
                f"no routable node at t={self.env.now}s"
            )
        name = (
            model if model is not None
            else self.nodes[0].scheduler.model_name
        )
        return self.policy.choose(candidates, name)

    def route(self, model: str | None = None, done=None):
        """Assign one arriving request to a node and enqueue it there."""
        node = self._choose(model)
        handle = node.scheduler.submit(done=done, model=model)
        node.routed += 1
        self.requests_routed += 1
        return handle

    def _reroute(self, handle, from_node: ClusterNode) -> None:
        """Re-enqueue an evicted request, preserving its arrival time."""
        node = self._choose(handle.model)
        node.scheduler.submit(
            done=handle.done, model=handle.model,
            arrival_s=handle.submit_s,
        )
        node.routed += 1
        from_node.rerouted_away += 1
        self.requests_rerouted += 1

    # -- node hazards -------------------------------------------------------------

    def _apply(self, event: NodeHazardEvent) -> None:
        node = self.nodes[event.node]
        rerouted = 0
        if isinstance(event, NodeFail):
            node.state = "failed"
            if self.reroute_on_fail:
                evicted = node.scheduler.evict_queued()
                for handle in evicted:
                    self._reroute(handle, node)
                rerouted = len(evicted)
        elif isinstance(event, NodeDrain):
            node.state = "draining"
        else:  # NodeRepair
            node.state = "up"
        self.records.append(NodeHazardRecord(
            kind=event.kind, node=event.node, at_s=self.env.now,
            rerouted=rerouted,
        ))

    def _run_events(self, pending: list[NodeHazardEvent]):
        for event in pending:
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    # -- fleet drain barrier ------------------------------------------------------

    def _request_closed(self, handle) -> None:
        self._closed += 1
        self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self._closed == self.requests_routed
            and not self._drained.triggered
        ):
            self._drained.succeed()

    # -- injection ----------------------------------------------------------------

    def _next_model(self, models: Iterator[str] | None) -> str | None:
        return None if models is None else next(models)

    def _open_loop_injector(self, arrivals, duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            self.route(model=self._next_model(models))

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            handle = self.route(done=self.env.event(),
                                model=self._next_model(models))
            yield handle.done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S,
              models: Iterator[str] | None = None) -> None:
        """Run the full fleet-serving window: inject, route, drain.

        The same contract as
        :meth:`~repro.serving.scheduler.RequestScheduler.serve`, lifted
        to the fleet: the drain barrier is router-level (every routed
        request completed or was shed *somewhere*), so requests
        re-enqueued after a mid-drain node failure are still waited on.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            raise SimulationError(
                "ClusterRouter.serve() is single-shot; build a new "
                "router for another serving window"
            )
        self._served = True
        if isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s,
                                             models)
                )
                for index in range(arrivals.n_clients)
            ]
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s, models)
                )
            ]
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        self.env.process(self._watch_injection(injectors))
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"cluster run did not drain: {self._closed}/"
                f"{self.requests_routed} requests closed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
