"""Fleet routing: dispatch one arrival stream across N platform nodes.

A :class:`ClusterRouter` sits above the per-node
:class:`~repro.serving.scheduler.RequestScheduler`s: it consumes the
traffic-mix arrival process exactly like a single scheduler would, but
each request is first assigned to a node by a pluggable
:class:`RoutingPolicy`:

* ``round-robin``         — cycle over the routable nodes;
* ``least-outstanding``   — fewest accepted-but-uncompleted requests;
* ``weighted``            — capacity-proportional: the node furthest
  below its weight share of total dispatches goes next;
* ``join-shortest-queue`` — fewest requests waiting for dispatch
  (ignores in-flight work, the classic JSQ approximation);
* ``model-affinity``      — prefer nodes whose
  :class:`~repro.mapping.residency.WeightResidency` already holds the
  request's model (no re-fetch), least-outstanding among them.

The router also owns the **node-level hazard timeline**
(:mod:`repro.cluster.hazards`): failed and draining nodes leave the
routable set, a failure optionally withdraws the node's queued-but-
undispatched requests and re-enqueues them on survivors (original
arrival times preserved, so latency and SLO clocks keep running), and
repairs return nodes to rotation.  Everything runs inside one shared
:class:`~repro.sim.core.Environment`, so fleet results are exactly as
deterministic as single-node ones.

By default the router is **omniscient**: policies read live queue
depths and failures leave the routable set instantly.  A
:class:`HealthPolicy` replaces that with a modeled signal path —
queue-depth signals sampled on a staleness interval (policies route on
the stale copy, so bursts misroute until the next sample) and
probe-based failure detection (a failed node keeps *receiving* until
``probe_misses`` consecutive probes fail and it is ejected; probes
succeeding after repair reinstate it).  Detection lag, misrouting and
true fleet-wide outages become visible, which is exactly what the
resilience layer (:mod:`repro.serving.lifecycle`) is there to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..core.accelerator import PlatformSimulation
from ..errors import ConfigurationError, SimulationError
from ..mapping.residency import WeightResidency
from ..serving.metrics import IncidentRecord
from ..serving.scheduler import DEFAULT_DRAIN_LIMIT_S, RequestScheduler
from ..sim.traffic import ClosedLoopClients
from .hazards import (
    NodeDrain,
    NodeFail,
    NodeHazardEvent,
    NodeHazardRecord,
    RackFail,
    event_nodes,
    validate_node_timeline,
)


@dataclass(frozen=True)
class HealthPolicy:
    """How the router *observes* its fleet (instead of omnisciently).

    ``signal_staleness_s`` — queue-depth/outstanding signals are
    sampled on this interval; routing policies read the sampled copy.
    ``probe_interval_s`` — when set, node liveness is learned from
    probes: ``probe_misses`` consecutive failures eject a node from
    the routable set, a succeeding probe reinstates it.  Probe mode
    also means a failure is *not* applied to routing instantly — the
    node keeps receiving (its scheduler pauses, so accepted requests
    strand in its queue) until ejection withdraws the queue.
    """

    signal_staleness_s: float = 0.0
    probe_interval_s: float | None = None
    probe_misses: int = 3

    def __post_init__(self) -> None:
        if self.signal_staleness_s < 0:
            raise ConfigurationError(
                f"signal staleness must be non-negative, got "
                f"{self.signal_staleness_s}"
            )
        if self.probe_interval_s is not None and self.probe_interval_s <= 0:
            raise ConfigurationError(
                f"probe interval must be positive, got "
                f"{self.probe_interval_s}"
            )
        if self.probe_misses < 1:
            raise ConfigurationError(
                f"probe misses must be >= 1, got {self.probe_misses}"
            )

    def __bool__(self) -> bool:
        """True when any part of the signal path is modeled."""
        return (
            self.signal_staleness_s > 0.0
            or self.probe_interval_s is not None
        )

    @property
    def probe_based(self) -> bool:
        return self.probe_interval_s is not None

    @property
    def label(self) -> str:
        parts = []
        if self.signal_staleness_s > 0.0:
            parts.append(f"stale={self.signal_staleness_s * 1e6:.0f}us")
        if self.probe_interval_s is not None:
            parts.append(
                f"probe={self.probe_interval_s * 1e6:.0f}us"
                f"x{self.probe_misses}"
            )
        return "+".join(parts) if parts else "omniscient"


@dataclass
class ClusterNode:
    """One platform replica behind the router.

    ``state`` is router-visible only: a ``failed`` node's scheduler
    keeps draining whatever it already accepted — in-flight batches,
    plus its queue unless the router withdrew it on failure — it just
    never receives another routed request until repaired.
    """

    index: int
    platform: object
    sim: PlatformSimulation
    scheduler: RequestScheduler
    residency: WeightResidency
    weight: float = 1.0
    state: str = "up"
    routed: int = 0
    rerouted_away: int = 0
    ejected: bool = False
    """Probe-based health checking withdrew the node from routing."""
    misses: int = 0
    """Consecutive failed probes (probe mode only)."""
    sampled_outstanding: int | None = None
    sampled_queue_length: int | None = None
    """Stale signal copies; ``None`` means live (omniscient) signals."""

    @property
    def name(self) -> str:
        return f"node{self.index}"

    @property
    def outstanding(self) -> int:
        if self.sampled_outstanding is not None:
            return self.sampled_outstanding
        return self.scheduler.outstanding

    @property
    def queue_length(self) -> int:
        if self.sampled_queue_length is not None:
            return self.sampled_queue_length
        return self.scheduler.queue_length

    def holds_model(self, model: str) -> bool:
        """Whether the node's weight store already has (or is fetching)
        this model's weights."""
        return self.residency.resident_bits_for(model) > 0.0


# ---------------------------------------------------------------------------
# Routing policies.
# ---------------------------------------------------------------------------


class RoutingPolicy:
    """Chooses a node for each request; stateless unless noted."""

    name = "routing-policy"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        """Pick one of ``candidates`` (non-empty, all routable)."""
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """Cycle over the routable nodes in index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._dispatches = 0

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        node = candidates[self._dispatches % len(candidates)]
        self._dispatches += 1
        return node


class LeastOutstandingRouting(RoutingPolicy):
    """Fewest accepted-but-uncompleted requests (ties: lowest index)."""

    name = "least-outstanding"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates, key=lambda n: (n.outstanding, n.index))


class WeightedRouting(RoutingPolicy):
    """Capacity-proportional dispatch.

    The node whose dispatch count is furthest below its weight share
    goes next — deterministic smooth weighted round-robin, no RNG.
    """

    name = "weighted"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates,
                   key=lambda n: (n.routed / n.weight, n.index))


class JoinShortestQueueRouting(RoutingPolicy):
    """Fewest requests waiting for dispatch (ties: lowest index)."""

    name = "join-shortest-queue"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        return min(candidates, key=lambda n: (n.queue_length, n.index))


class ModelAffinityRouting(RoutingPolicy):
    """Prefer nodes already holding the request's weights.

    Among the nodes where the model is resident (no weight re-fetch,
    per-node :class:`~repro.mapping.residency.WeightResidency`), pick
    the least-outstanding; when no node holds the model yet, fall back
    to least-outstanding overall — which then *becomes* an affinity
    node for the model's later requests.
    """

    name = "model-affinity"

    def choose(self, candidates: list[ClusterNode],
               model: str) -> ClusterNode:
        resident = [n for n in candidates if n.holds_model(model)]
        pool = resident or candidates
        return min(pool, key=lambda n: (n.outstanding, n.index))


def _require_no_weights(name: str, n_nodes: int,
                        weights: tuple[float, ...]) -> None:
    if weights:
        raise ConfigurationError(
            f"router {name!r} ignores per-node weights; "
            "use the 'weighted' router or drop cluster.weights"
        )


def _make_round_robin(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("round-robin", n_nodes, weights)
    return RoundRobinRouting()


def _make_least_outstanding(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("least-outstanding", n_nodes, weights)
    return LeastOutstandingRouting()


def _make_weighted(n_nodes: int, weights=()) -> RoutingPolicy:
    if len(weights) != n_nodes:
        raise ConfigurationError(
            f"the weighted router needs one weight per node: got "
            f"{len(weights)} weight(s) for {n_nodes} node(s)"
        )
    if any(weight <= 0 for weight in weights):
        raise ConfigurationError(
            f"node weights must be positive, got {list(weights)}"
        )
    return WeightedRouting()


def _make_jsq(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("join-shortest-queue", n_nodes, weights)
    return JoinShortestQueueRouting()


def _make_model_affinity(n_nodes: int, weights=()) -> RoutingPolicy:
    _require_no_weights("model-affinity", n_nodes, weights)
    return ModelAffinityRouting()


ROUTER_FACTORIES: dict[str, Callable[..., RoutingPolicy]] = {
    "round-robin": _make_round_robin,
    "least-outstanding": _make_least_outstanding,
    "weighted": _make_weighted,
    "join-shortest-queue": _make_jsq,
    "model-affinity": _make_model_affinity,
}
"""Routing-policy factories ``(n_nodes, weights) -> policy``.  The
``ROUTERS`` registry (:mod:`repro.studies.registry`) shares this dict,
so externally registered routers are buildable from JSON specs."""


# ---------------------------------------------------------------------------
# The router.
# ---------------------------------------------------------------------------


class ClusterRouter:
    """Streams one arrival process across a fleet of nodes.

    Build one per cluster simulation: it owns the routing policy, the
    node states, the node-level hazard timeline and the fleet-level
    drain barrier.  ``t=0`` node events apply synchronously at
    construction (mirroring the fabric hazard engine); later events run
    as an ordinary process in the shared environment.
    """

    def __init__(self, nodes: list[ClusterNode], policy: RoutingPolicy,
                 node_events: tuple[NodeHazardEvent, ...] = (),
                 reroute_on_fail: bool = True,
                 health: HealthPolicy | None = None):
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.env = nodes[0].sim.env
        for node in nodes:
            if node.sim.env is not self.env:
                raise ConfigurationError(
                    f"{node.name} lives in a different Environment; "
                    "all cluster nodes must share one"
                )
        self.health = health
        probe_based = health is not None and health.probe_based
        validate_node_timeline(node_events, len(nodes),
                               allow_total_outage=probe_based)
        self.nodes = nodes
        self.policy = policy
        self.node_events = node_events
        self.reroute_on_fail = reroute_on_fail
        self.records: list[NodeHazardRecord] = []
        # Telemetry hook (attached post-construction by the study
        # layer): routing decisions land as instants on a shared
        # ``router`` track; ``None`` keeps the classic path untouched.
        self.obs_trace = None
        self.requests_routed = 0
        self.requests_rerouted = 0
        self._closed = 0
        self._injection_done = False
        self._drained = self.env.event()
        self._served = False
        self._open_incidents: dict[int, dict] = {}
        self._incidents: list[IncidentRecord] = []
        self._down_since: float | None = None
        self._downtime_s = 0.0
        for node in nodes:
            node.scheduler.on_request_closed = self._request_closed
        if health is not None and health.signal_staleness_s > 0.0:
            for node in nodes:
                node.sampled_outstanding = 0
                node.sampled_queue_length = 0
            self.env.process(self._sample_signals())
        if probe_based:
            for node in nodes:
                self.env.process(self._probe_node(node))
        pending = []
        for event in node_events:
            if event.at_s <= 0.0:
                self._apply(event)
            else:
                pending.append(event)
        if pending:
            self.env.process(self._run_events(pending))

    @property
    def _probe_based(self) -> bool:
        return self.health is not None and self.health.probe_based

    # -- routing ------------------------------------------------------------------

    def routable_nodes(self) -> list[ClusterNode]:
        """Nodes the router *believes* accept new requests, index order.

        Omniscient mode: exactly the ``up`` nodes.  Probe mode: every
        non-ejected, non-draining node — a freshly failed node keeps
        receiving until the probes catch up (drains are control-plane
        operations the router always knows instantly).
        """
        if self._probe_based:
            return [
                node for node in self.nodes
                if not node.ejected and node.state != "draining"
            ]
        return [node for node in self.nodes if node.state == "up"]

    def _choose(self, model: str | None,
                exclude: tuple[int, ...] = ()) -> ClusterNode:
        candidates = self.routable_nodes()
        if exclude:
            # Hedged attempts want a *different* node; fall back to the
            # full routable set when exclusion would empty it.
            filtered = [
                node for node in candidates if node.index not in exclude
            ]
            candidates = filtered or candidates
        if not candidates:
            if self._probe_based:
                # Everyone is ejected: the router must still park the
                # request somewhere — queue it on a non-draining node
                # and let repairs (or retries/hedges) rescue it.
                candidates = [
                    node for node in self.nodes
                    if node.state != "draining"
                ] or self.nodes
            else:
                # The timeline validator forbids event sequences that
                # kill every node, so this is an internal invariant
                # violation.
                raise SimulationError(
                    f"no routable node at t={self.env.now}s"
                )
        name = (
            model if model is not None
            else self.nodes[0].scheduler.model_name
        )
        return self.policy.choose(candidates, name)

    def submit(self, done=None, model: str | None = None,
               arrival_s: float | None = None,
               exclude: tuple[int, ...] = ()):
        """Route one request to a node and enqueue it there.

        The fleet-level twin of
        :meth:`~repro.serving.scheduler.RequestScheduler.submit`
        (same duck-typed surface, so the resilience lifecycle drives
        either).  ``exclude`` biases placement away from the named node
        indices — hedged attempts use it to land on a different node.
        """
        node = self._choose(model, exclude)
        handle = node.scheduler.submit(
            done=done, model=model, arrival_s=arrival_s
        )
        handle.node = node.index
        node.routed += 1
        self.requests_routed += 1
        if self.obs_trace is not None and self.obs_trace.sampled(
            handle.request_id
        ):
            self.obs_trace.instant(
                "router", "route",
                args={"node": node.index, "request": handle.request_id},
            )
        return handle

    def route(self, model: str | None = None, done=None):
        """Assign one arriving request to a node and enqueue it there."""
        return self.submit(done=done, model=model)

    def cancel(self, handle) -> bool:
        """Withdraw a queued request wherever it currently waits.

        True when some node's scheduler still held it undispatched;
        the routed-request count rolls back so the fleet drain barrier
        never waits on a request nobody will run.
        """
        for node in self.nodes:
            if node.scheduler.cancel(handle):
                self.requests_routed -= 1
                return True
        return False

    def _reroute(self, handle, from_node: ClusterNode) -> None:
        """Re-enqueue an evicted request, preserving its arrival time."""
        node = self._choose(handle.model, exclude=(from_node.index,))
        new_handle = node.scheduler.submit(
            done=handle.done, model=handle.model,
            arrival_s=handle.submit_s,
        )
        new_handle.node = node.index
        handle.node = node.index
        node.routed += 1
        from_node.rerouted_away += 1
        self.requests_rerouted += 1
        if self.obs_trace is not None:
            self.obs_trace.instant(
                "router", "reroute",
                args={"from": from_node.index, "to": node.index},
            )

    # -- modeled signal path (health checking) ------------------------------------

    def _sample_signals(self):
        """Copy live queue signals into the sampled view on a period."""
        staleness = self.health.signal_staleness_s
        while True:
            for node in self.nodes:
                node.sampled_outstanding = node.scheduler.outstanding
                node.sampled_queue_length = node.scheduler.queue_length
            yield self.env.timeout(staleness)

    def _probe_node(self, node: ClusterNode):
        """Periodic liveness probe: eject after K misses, reinstate on
        the first success after repair."""
        misses_needed = self.health.probe_misses
        while True:
            yield self.env.timeout(self.health.probe_interval_s)
            if node.state == "failed":
                node.misses += 1
                if node.misses >= misses_needed and not node.ejected:
                    self._eject(node)
            else:
                node.misses = 0
                if node.ejected:
                    node.ejected = False

    def _eject(self, node: ClusterNode) -> None:
        """Probes confirmed the failure: withdraw the node from routing
        and move its stranded queue to nodes still believed healthy."""
        node.ejected = True
        incident = self._open_incidents.get(node.index)
        if incident is not None and incident["detected_s"] is None:
            incident["detected_s"] = self.env.now
        rerouted = 0
        if self.reroute_on_fail:
            survivors = [
                peer for peer in self.routable_nodes()
                if peer.index != node.index
            ]
            if survivors:
                evicted = node.scheduler.evict_queued()
                for handle in evicted:
                    self._reroute(handle, node)
                rerouted = len(evicted)
        self.records.append(NodeHazardRecord(
            kind="node-eject", node=node.index, at_s=self.env.now,
            rerouted=rerouted,
        ))
        if self.obs_trace is not None:
            self.obs_trace.instant(
                "router", "eject",
                args={"node": node.index, "rerouted": rerouted},
            )

    # -- incidents and availability -----------------------------------------------

    def _open_incident(self, node: ClusterNode) -> None:
        if node.index in self._open_incidents:
            return
        self._open_incidents[node.index] = {
            "start_s": self.env.now,
            # Omniscient routing detects instantly; probe mode leaves
            # detection to the ejection path.
            "detected_s": None if self._probe_based else self.env.now,
        }

    def _close_incident(self, node: ClusterNode) -> None:
        incident = self._open_incidents.pop(node.index, None)
        if incident is None:
            return
        self._incidents.append(IncidentRecord(
            node=node.index,
            start_s=incident["start_s"],
            detected_s=incident["detected_s"],
            end_s=self.env.now,
        ))

    def incidents(self) -> tuple[IncidentRecord, ...]:
        """Every incident so far, resolved first, unresolved still open."""
        open_records = tuple(
            IncidentRecord(
                node=index,
                start_s=incident["start_s"],
                detected_s=incident["detected_s"],
            )
            for index, incident in sorted(self._open_incidents.items())
        )
        return (
            tuple(sorted(self._incidents, key=lambda i: (i.start_s, i.node)))
            + open_records
        )

    def _update_availability(self) -> None:
        """Track wall-clock spent with zero ``up`` nodes (total outage)."""
        any_up = any(node.state == "up" for node in self.nodes)
        now = self.env.now
        if any_up and self._down_since is not None:
            self._downtime_s += now - self._down_since
            self._down_since = None
        elif not any_up and self._down_since is None:
            self._down_since = now

    def availability(self, horizon_s: float) -> float:
        """Fraction of ``[0, horizon_s]`` with at least one up node."""
        if horizon_s <= 0:
            return 1.0
        downtime = self._downtime_s
        if self._down_since is not None:
            downtime += max(0.0, horizon_s - self._down_since)
        return max(0.0, 1.0 - downtime / horizon_s)

    # -- node hazards -------------------------------------------------------------

    def _apply(self, event: NodeHazardEvent) -> None:
        for index in event_nodes(event):
            node = self.nodes[index]
            rerouted = 0
            if isinstance(event, (NodeFail, RackFail)):
                node.state = "failed"
                self._open_incident(node)
                if self._probe_based:
                    # The router does not know yet; the node's scheduler
                    # pauses (a dead node dispatches nothing) and its
                    # queue strands until probes trigger the ejection.
                    node.scheduler.pause()
                elif self.reroute_on_fail:
                    evicted = node.scheduler.evict_queued()
                    for handle in evicted:
                        self._reroute(handle, node)
                    rerouted = len(evicted)
            elif isinstance(event, NodeDrain):
                node.state = "draining"
            else:  # NodeRepair / RackRepair
                node.state = "up"
                if self._probe_based:
                    node.scheduler.resume()
                self._close_incident(node)
            self.records.append(NodeHazardRecord(
                kind=event.kind, node=index, at_s=self.env.now,
                rerouted=rerouted,
            ))
            if self.obs_trace is not None:
                self.obs_trace.instant(
                    "router", event.kind, args={"node": index}
                )
        self._update_availability()

    def _run_events(self, pending: list[NodeHazardEvent]):
        for event in pending:
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._apply(event)

    # -- fleet drain barrier ------------------------------------------------------

    def _request_closed(self, handle) -> None:
        self._closed += 1
        self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self._closed == self.requests_routed
            and not self._drained.triggered
        ):
            self._drained.succeed()

    # -- injection ----------------------------------------------------------------

    def _next_model(self, models: Iterator[str] | None) -> str | None:
        return None if models is None else next(models)

    def _open_loop_injector(self, arrivals, duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            self.route(model=self._next_model(models))

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            handle = self.route(done=self.env.event(),
                                model=self._next_model(models))
            yield handle.done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S,
              models: Iterator[str] | None = None) -> None:
        """Run the full fleet-serving window: inject, route, drain.

        The same contract as
        :meth:`~repro.serving.scheduler.RequestScheduler.serve`, lifted
        to the fleet: the drain barrier is router-level (every routed
        request completed or was shed *somewhere*), so requests
        re-enqueued after a mid-drain node failure are still waited on.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            raise SimulationError(
                "ClusterRouter.serve() is single-shot; build a new "
                "router for another serving window"
            )
        self._served = True
        if isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s,
                                             models)
                )
                for index in range(arrivals.n_clients)
            ]
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s, models)
                )
            ]
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        self.env.process(self._watch_injection(injectors))
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"cluster run did not drain: {self._closed}/"
                f"{self.requests_routed} requests closed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
