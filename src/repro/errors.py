"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so that
callers can catch one base class.  Subclasses separate configuration
mistakes (user-fixable) from modelling violations (internal invariants).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An architecture or device configuration is invalid or inconsistent."""


class LinkBudgetError(ReproError):
    """A photonic link cannot close: losses exceed the available power."""


class MappingError(ReproError):
    """A DNN layer cannot be mapped onto the available compute resources."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an invariant violation."""


class ShapeError(ReproError):
    """DNN tensor shapes are incompatible with a layer's expectations."""
