"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so that
callers can catch one base class.  Subclasses separate configuration
mistakes (user-fixable) from modelling violations (internal invariants).
"""

from __future__ import annotations

import difflib
from typing import Iterable, Sequence


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An architecture or device configuration is invalid or inconsistent."""


def did_you_mean(name: str, known: Iterable[str]) -> tuple[str, ...]:
    """Close matches for a mistyped name among the registered ones."""
    return tuple(
        difflib.get_close_matches(name, list(known), n=3, cutoff=0.4)
    )


class UnknownNameError(ConfigurationError, KeyError):
    """A registry lookup failed: no entry under the requested name.

    Also a :class:`KeyError` because the registries replaced plain
    dictionary lookups — callers catching ``KeyError`` keep working.
    Carries the registry kind, the failing name, the registered names,
    the registry's own name (``registry``, e.g. ``"ROUTERS"`` — multi-
    registry specs need the message to say *which* table rejected the
    name) and a did-you-mean suggestion list for error messages.
    """

    def __init__(self, kind: str, name: str, known: Sequence[str],
                 registry: str | None = None):
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        self.registry = registry
        self.suggestions = did_you_mean(name, self.known)
        message = f"unknown {kind} {name!r}"
        if registry:
            message += f" in {registry} registry"
        if self.suggestions:
            message += (
                "; did you mean "
                + " or ".join(repr(s) for s in self.suggestions)
                + "?"
            )
        message += f" (registered: {', '.join(self.known)})"
        super().__init__(message)
        self.args = (message,)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

    def __reduce__(self):
        # args holds the rendered message, not the ctor signature —
        # rebuild from the fields so worker-process raises survive
        # the trip back through the process pool.
        return (type(self), (self.kind, self.name, self.known,
                             self.registry))


class SpecError(ConfigurationError):
    """A declarative study spec is malformed or fails validation."""


class AdmissionError(ConfigurationError):
    """A request can never be admitted: its KV cache exceeds the
    platform's total residency capacity even with every weight evicted."""


class LinkBudgetError(ReproError):
    """A photonic link cannot close: losses exceed the available power."""


class MappingError(ReproError):
    """A DNN layer cannot be mapped onto the available compute resources."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an invariant violation."""


class ShapeError(ReproError):
    """DNN tensor shapes are incompatible with a layer's expectations."""
