"""Request admission, dispatch ordering and dynamic batching.

The scheduler closes the loop between an arrival process
(:mod:`repro.sim.traffic`) and the re-entrant execution path
(:class:`~repro.core.engine.RequestExecution`): requests queue as they
arrive, a dispatcher groups them according to a :class:`BatchPolicy`,
and each group executes as one batched inference over the platform's
**shared** fabric — weights stay resident per model
(:class:`~repro.mapping.residency.WeightResidency`), activations stream
per request, and contention between overlapping requests emerges from
the fabric's channels.

Several models can be served from one fabric: register extra tenants
with :meth:`RequestScheduler.add_model` and tag submissions with a
model name.  Batches never mix models (one batched inference is one
model), and per-model latency SLOs assign every request a deadline at
submission.

Five policies:

* ``fifo``      — every request dispatches alone, in arrival order;
  ``max_inflight`` caps concurrent executions (admission control).
* ``max-batch`` — the dispatcher opens a batch when an execution slot
  is free, then gathers up to ``max_batch`` same-model requests or
  until ``batch_timeout_s`` elapses since the batch opened, whichever
  is first — classic dynamic batching with a latency bound.
* ``edf``       — earliest-deadline-first: single-request dispatch
  ordered by assigned deadline (no-SLO requests go last, FIFO among
  themselves).
* ``priority``  — single-request dispatch ordered by the submitting
  model's priority (higher first), FIFO within a priority level.  An
  optional ``starvation_age_s`` guard promotes the oldest queued
  request ahead of the priority order once it has waited that long.
* ``continuous`` — continuous batching for autoregressive (sequence)
  requests: each admitted sequence prefills alone, then joins the
  model's *running decode batch*; sequences join and leave the batch
  at decode-step boundaries, and the decode mapping is re-derived per
  batch width (``max_batch`` caps the width).  Single-shot requests
  under this policy dispatch alone, like ``fifo``.

A *sequence* request (``output_tokens > 0`` at submission) runs as one
prefill pass over its prompt followed by dependent decode steps; its
KV cache reserves residency capacity for the whole generation at
admission (:class:`~repro.mapping.residency.KVCacheResidency`) and is
released at completion.

Any policy can additionally set ``shed_expired``: requests whose
deadline has already passed when they are selected for dispatch are
shed — they complete immediately as dropped (the closed-loop client
moves on) and count as SLO violations instead of occupying the fabric.
Per-model admission ``quota``\\ s cap outstanding requests per tenant:
submissions over quota are shed immediately and counted per model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..core.accelerator import PlatformSimulation
from ..core.engine import ComputeOccupancy, ExecutionTrace, RequestExecution
from ..dnn.workload import decode_workload, widened_workload
from ..errors import ConfigurationError, SimulationError, UnknownNameError
from ..mapping.mapper import ModelMapping
from ..mapping.residency import KVCacheResidency, WeightResidency
from ..sim.core import Event
from ..sim.resources import Resource
from ..sim.traffic import ClosedLoopClients
from .metrics import RequestRecord

DEFAULT_DRAIN_LIMIT_S = 1.0
"""Simulated-time hang guard for draining in-flight requests after
injection stops (generous: serving windows are µs–ms scale)."""

POLICY_NAMES = ("fifo", "max-batch", "edf", "priority", "continuous")
"""Every dispatch policy the scheduler implements."""


@dataclass(frozen=True)
class BatchPolicy:
    """Admission + dispatch-ordering + batching configuration."""

    name: str = "fifo"
    max_batch: int = 1
    batch_timeout_s: float = 20e-6
    max_inflight: int = 4
    shed_expired: bool = False

    def __post_init__(self) -> None:
        if self.name not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown batch policy {self.name!r}; "
                f"choose from {', '.join(POLICY_NAMES)}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max batch must be >= 1, got {self.max_batch}"
            )
        if self.name not in ("max-batch", "continuous") and self.max_batch != 1:
            raise ConfigurationError(
                f"{self.name} policy dispatches single requests"
            )
        if self.batch_timeout_s < 0:
            raise ConfigurationError(
                f"batch timeout must be non-negative, got "
                f"{self.batch_timeout_s}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max inflight must be >= 1, got {self.max_inflight}"
            )

    @classmethod
    def fifo(cls, max_inflight: int = 4,
             shed_expired: bool = False) -> "BatchPolicy":
        """One request per dispatch, ``max_inflight`` concurrent."""
        return cls(name="fifo", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @classmethod
    def max_batch_with_timeout(cls, max_batch: int = 8,
                               batch_timeout_s: float = 20e-6,
                               max_inflight: int = 4,
                               shed_expired: bool = False) -> "BatchPolicy":
        """Gather up to ``max_batch`` requests or until the timeout."""
        return cls(name="max-batch", max_batch=max_batch,
                   batch_timeout_s=batch_timeout_s,
                   max_inflight=max_inflight, shed_expired=shed_expired)

    @classmethod
    def edf(cls, max_inflight: int = 4,
            shed_expired: bool = False) -> "BatchPolicy":
        """Earliest-deadline-first single-request dispatch."""
        return cls(name="edf", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @classmethod
    def priority(cls, max_inflight: int = 4,
                 shed_expired: bool = False) -> "BatchPolicy":
        """Model-priority single-request dispatch (higher first)."""
        return cls(name="priority", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @classmethod
    def continuous(cls, max_batch: int = 8,
                   max_inflight: int | None = None,
                   shed_expired: bool = False) -> "BatchPolicy":
        """Continuous batching: ``max_batch`` caps the decode width."""
        if max_inflight is None:
            max_inflight = max(max_batch, 4)
        return cls(name="continuous", max_batch=max_batch,
                   max_inflight=max_inflight, shed_expired=shed_expired)

    @property
    def label(self) -> str:
        base = (
            f"{self.name}({self.max_batch})"
            if self.name in ("max-batch", "continuous")
            else self.name
        )
        return base + "+shed" if self.shed_expired else base


@dataclass
class RequestHandle:
    """Public handle for one submitted request.

    Returned by :meth:`RequestScheduler.submit`: carries the submit
    time, the model the request targets, the deadline assigned from the
    model's SLO (``None`` when the model has none) and the optional
    completion event the submitter may wait on.  ``node`` is the
    cluster node index the router placed the request on (``None`` on a
    single-node scheduler); ``dropped`` flips when the scheduler sheds
    the request, so a waiter on ``done`` can tell shed from served;
    ``record`` is the closing :class:`RequestRecord` once one exists.
    """

    request_id: int
    model: str
    submit_s: float
    deadline_s: float | None = None
    done: Event | None = field(default=None)
    node: int | None = None
    dropped: bool = False
    record: RequestRecord | None = None
    prompt_tokens: int = 0
    output_tokens: int = 0
    tokens_done: int = 0
    dispatch_s: float | None = None
    first_token_s: float | None = None
    token_times: list[float] = field(default_factory=list)

    @property
    def is_sequence(self) -> bool:
        """Whether this request runs as prefill + decode steps."""
        return self.output_tokens > 0

    @property
    def arrival_s(self) -> float:
        """Alias: submission is arrival, in scheduler terms."""
        return self.submit_s

    def remaining_s(self, now: float) -> float:
        """Time left until the deadline, clamped at zero.

        Backdated arrivals (a request rerouted after a node failure
        keeps its original ``arrival_s``) can place the deadline in the
        past, so the raw difference may be negative — and a negative
        value handed to a timer would crash the kernel's backwards-time
        guard.  ``inf`` when the request has no deadline.
        """
        if self.deadline_s is None:
            return float("inf")
        return max(0.0, self.deadline_s - now)


@dataclass(frozen=True)
class _ModelEntry:
    """One served model: its mapping and service-level parameters."""

    name: str
    mapping: ModelMapping
    slo_s: float | None = None
    priority: int = 0
    quota: int | None = None


class RequestScheduler:
    """Streams requests from an arrival process through a platform.

    Build one per serving simulation: it owns the queue, the dispatcher
    process, the admission semaphore and the shared
    :class:`ExecutionTrace` that accumulates operation counts (for the
    energy ledger) and per-request records (for latency aggregation).
    """

    def __init__(
        self,
        sim: PlatformSimulation,
        mapping: ModelMapping,
        model_name: str,
        policy: BatchPolicy | None = None,
        residency: WeightResidency | None = None,
        trace: ExecutionTrace | None = None,
        record_timings: bool = False,
        slo_s: float | None = None,
        priority: int = 0,
        quota: int | None = None,
        starvation_age_s: float | None = None,
    ):
        self.sim = sim
        self.env = sim.env
        self.mapping = mapping
        self.model_name = model_name
        self.policy = policy or BatchPolicy.fifo()
        self.residency = (
            residency if residency is not None
            else WeightResidency(sim.env)
        )
        self.trace = trace or ExecutionTrace()
        self.record_timings = record_timings
        self.compute = ComputeOccupancy(sim.env)
        if starvation_age_s is not None:
            if self.policy.name != "priority":
                raise ConfigurationError(
                    "starvation_age_s only applies to the priority "
                    f"policy, not {self.policy.name!r}"
                )
            if starvation_age_s <= 0:
                raise ConfigurationError(
                    f"starvation age must be positive, got "
                    f"{starvation_age_s}"
                )
        self.starvation_age_s = starvation_age_s
        self._models: dict[str, _ModelEntry] = {}
        self._register(model_name, mapping, slo_s, priority, quota)

        self._queue: deque[RequestHandle] = deque()
        self._arrival_signal: Event | None = None
        self._admission = Resource(sim.env,
                                   capacity=self.policy.max_inflight)
        self.records: list[RequestRecord] = []
        self.requests_injected = 0
        self.requests_completed = 0
        self.requests_shed = 0
        self.requests_evicted = 0
        self.requests_cancelled = 0
        self.batches_dispatched = 0
        self.starvation_promotions = 0
        self.quota_denied: dict[str, int] = {}
        self._outstanding: dict[str, int] = {}
        self.kv: KVCacheResidency | None = None
        self.decode_remaps = 0
        self._decode_workloads: dict[str, object] = {}
        self._decode_mappings: dict[tuple[str, int], ModelMapping] = {}
        self._pools: dict[str, list[RequestHandle]] = {}
        self._pool_running: set[str] = set()
        self._has_sequences = False
        self.on_request_closed: Callable[[RequestHandle], None] | None = None
        # Telemetry hooks, attached post-construction by the study
        # layer: a span recorder and a metrics registry, or ``None`` on
        # the untelemetered path — every instrumentation site below
        # guards on a single attribute comparison, so the classic hot
        # path stays untouched.
        self.obs_trace = None
        self.obs_metrics = None
        self.obs_prefix = ""
        """Track-name prefix (``node3/`` on fleets) keeping per-request
        tracks distinct when several schedulers share one recorder."""
        self._injection_done = False
        self._drained = sim.env.event()
        self._next_id = 0
        self._served = False
        self._paused = False
        self._resume_signal: Event | None = None
        self.env.process(self._dispatch_loop())

    # -- served models ------------------------------------------------------------

    def _register(self, name: str, mapping: ModelMapping,
                  slo_s: float | None, priority: int,
                  quota: int | None = None) -> None:
        if name in self._models:
            raise ConfigurationError(f"model {name!r} is already served")
        if slo_s is not None and slo_s <= 0:
            raise ConfigurationError(
                f"SLO must be positive, got {slo_s} for {name!r}"
            )
        if quota is not None and quota < 1:
            raise ConfigurationError(
                f"admission quota must be >= 1, got {quota} for {name!r}"
            )
        self._models[name] = _ModelEntry(
            name=name, mapping=mapping, slo_s=slo_s, priority=priority,
            quota=quota,
        )

    def add_model(self, name: str, mapping: ModelMapping,
                  slo_s: float | None = None, priority: int = 0,
                  quota: int | None = None) -> None:
        """Register another tenant model to serve from the same fabric."""
        self._register(name, mapping, slo_s, priority, quota)

    @property
    def served_models(self) -> tuple[str, ...]:
        """Names of every registered tenant, registration order."""
        return tuple(self._models)

    def slos(self) -> dict[str, float | None]:
        """Per-model latency SLOs (None where unset)."""
        return {name: entry.slo_s for name, entry in self._models.items()}

    # -- queue plumbing -----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for dispatch."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Accepted requests not yet completed (queued + in flight)."""
        return (
            self.requests_injected
            - self.requests_completed
            - self.requests_shed
        )

    def submit(self, done: Event | None = None,
               model: str | None = None,
               arrival_s: float | None = None,
               prompt_tokens: int = 0,
               output_tokens: int = 0) -> RequestHandle:
        """Enqueue one request arriving now; returns its public handle.

        ``model`` defaults to the primary model the scheduler was built
        with; the handle's deadline is assigned from the model's SLO.
        ``arrival_s`` backdates the arrival (and therefore the deadline
        base): the cluster router uses it when re-enqueueing a request
        evicted from a failed node, so the user-visible latency and SLO
        clock keep running from the original submission.

        ``output_tokens > 0`` makes this a *sequence* request: one
        prefill pass over ``prompt_tokens`` followed by decode steps
        until ``output_tokens`` have been generated.  The target model
        must have attention layers (a KV cache to keep).
        """
        name = self.model_name if model is None else model
        try:
            entry = self._models[name]
        except KeyError:
            raise UnknownNameError(
                "served model", name, tuple(self._models)
            ) from None
        if output_tokens > 0:
            if entry.mapping.workload.kv_bits_per_token <= 0:
                raise ConfigurationError(
                    f"model {name!r} has no attention layers; sequence "
                    "requests need a transformer model"
                )
            if prompt_tokens < 1:
                raise ConfigurationError(
                    f"sequence requests need >= 1 prompt token, got "
                    f"{prompt_tokens}"
                )
            self._has_sequences = True
        elif prompt_tokens:
            raise ConfigurationError(
                "prompt_tokens without output_tokens: single-shot "
                "requests carry no sequence lengths"
            )
        now = self.env.now if arrival_s is None else arrival_s
        request = RequestHandle(
            request_id=self._next_id, model=name, submit_s=now,
            deadline_s=None if entry.slo_s is None else now + entry.slo_s,
            done=done, prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
        )
        self._next_id += 1
        self.requests_injected += 1
        if self.obs_trace is not None and self.obs_trace.sampled(
            request.request_id
        ):
            self.obs_trace.note_sampled()
        denied = (
            entry.quota is not None
            and self._outstanding.get(name, 0) >= entry.quota
        )
        self._outstanding[name] = self._outstanding.get(name, 0) + 1
        if denied:
            # Over the tenant's admission quota: shed at submit time.
            # (_shed rolls the outstanding count back via _note_closed.)
            self.quota_denied[name] = self.quota_denied.get(name, 0) + 1
            self._shed(request)
            return request
        self._queue.append(request)
        self._signal_arrival()
        return request

    def _signal_arrival(self) -> None:
        signal = self._arrival_signal
        if signal is not None and not signal.triggered:
            signal.succeed()

    def _note_closed(self, request: RequestHandle) -> None:
        """Drop a queued-or-running request from its model's quota count."""
        count = self._outstanding.get(request.model, 0)
        if count > 0:
            self._outstanding[request.model] = count - 1

    def cancel(self, handle: RequestHandle) -> bool:
        """Withdraw one still-queued request (lifecycle cancellation).

        Matches by handle identity *or* by shared completion event —
        after a failed node's queue is rerouted the caller's handle is
        stale, but the re-submitted copy carries the same ``done``
        event.  Returns ``False`` when the request already dispatched
        (in-flight work cannot be recalled) or was shed; the injected
        counter is rolled back exactly like :meth:`evict_queued` so the
        drain invariant keeps holding.
        """
        for index, request in enumerate(self._queue):
            if request is handle or (
                handle.done is not None and request.done is handle.done
            ):
                del self._queue[index]
                self.requests_injected -= 1
                self.requests_cancelled += 1
                self._note_closed(request)
                self._check_drained()
                return True
        return False

    def pause(self) -> None:
        """Stop dispatching (a failed node under health-checked routing).

        Queued requests stay queued and in-flight batches finish;
        nothing new dispatches until :meth:`resume`.  The omniscient
        legacy path never pauses, so its behavior is untouched.
        """
        self._paused = True

    def resume(self) -> None:
        """Resume dispatching after a :meth:`pause` (node repair)."""
        if not self._paused:
            return
        self._paused = False
        signal = self._resume_signal
        if signal is not None and not signal.triggered:
            signal.succeed()

    def _wait_resume(self) -> Event:
        event = self.env.event()
        self._resume_signal = event
        return event

    def evict_queued(self) -> list[RequestHandle]:
        """Withdraw every request still waiting for dispatch.

        Returns the evicted handles in queue order so a caller (the
        cluster router, when this scheduler's node fails) can re-enqueue
        them elsewhere.  In-flight batches are unaffected; the injected
        counter is rolled back so the drain invariant
        ``injected == completed + shed + outstanding`` keeps holding.
        """
        evicted = list(self._queue)
        self._queue.clear()
        self.requests_injected -= len(evicted)
        self.requests_evicted += len(evicted)
        for request in evicted:
            self._note_closed(request)
        self._check_drained()
        return evicted

    def _wait_arrival(self) -> Event:
        event = self.env.event()
        self._arrival_signal = event
        return event

    # -- telemetry -------------------------------------------------------------------

    def _obs_track(self, request: RequestHandle) -> str | None:
        """The request's trace track when sampled, else ``None``."""
        trace = self.obs_trace
        if trace is None or not trace.sampled(request.request_id):
            return None
        return f"{self.obs_prefix}req:{request.request_id:06d}"

    # -- dispatcher ------------------------------------------------------------------

    def _select_index(self) -> int:
        """Queue index the policy dispatches next (queue non-empty)."""
        queue = self._queue
        if self.policy.name == "edf":
            return min(
                range(len(queue)),
                key=lambda i: (
                    float("inf") if queue[i].deadline_s is None
                    else queue[i].deadline_s,
                    i,
                ),
            )
        if self.policy.name == "priority":
            # Starvation guard: the queue is in arrival order, so index
            # 0 is the oldest waiter — once it has aged past the
            # threshold it dispatches ahead of higher-priority arrivals.
            age = self.starvation_age_s
            if age is not None and self.env.now - queue[0].submit_s > age:
                self.starvation_promotions += 1
                if self.obs_trace is not None:
                    self.obs_trace.instant(
                        "scheduler", "starvation-promotion",
                        args={"request": queue[0].request_id},
                    )
                return 0
            return min(
                range(len(queue)),
                key=lambda i: (-self._models[queue[i].model].priority, i),
            )
        return 0  # fifo / max-batch / continuous: arrival order

    def _expired(self, request: RequestHandle) -> bool:
        """Whether dispatching ``request`` now should shed it instead."""
        return (
            self.policy.shed_expired
            and request.deadline_s is not None
            and self.env.now > request.deadline_s
        )

    def _next_dispatch(self) -> RequestHandle | None:
        """Pop the next live request, shedding expired ones if asked."""
        while self._queue:
            index = self._select_index()
            request = self._queue[index]
            del self._queue[index]
            if self._expired(request):
                self._shed(request)
                continue
            return request
        return None

    def _pop_match(self, model: str,
                   want_sequence: bool = False) -> RequestHandle | None:
        """Pop the oldest queued request for ``model`` (batch filling).

        Batches never mix sequence and single-shot requests — the two
        take different execution paths — so candidates must match the
        batch head's kind as well as its model.
        """
        queue = self._queue
        if len(self._models) == 1 and not self._has_sequences:
            return queue.popleft() if queue else None
        for index, request in enumerate(queue):
            if request.model == model and request.is_sequence == want_sequence:
                del queue[index]
                return request
        return None

    def _dispatch_loop(self):
        policy = self.policy
        while True:
            while self._paused:
                yield self._wait_resume()
            while not self._queue:
                yield self._wait_arrival()
                if self._paused:
                    break
            if self._paused or not self._queue:
                continue
            # Back-pressure: only open a batch once an execution slot is
            # free, so under load batches fill instead of fragmenting.
            yield self._admission.request()
            if self._paused:
                self._admission.release()
                continue
            head = self._next_dispatch()
            if head is None:
                # Everything queued was shed; give the slot back.
                self._admission.release()
                continue
            if head.is_sequence:
                self.batches_dispatched += 1
                if policy.name == "continuous":
                    # Each sequence holds its admission slot for its
                    # whole lifetime; prefilled sequences join the
                    # model's running decode batch.
                    self.env.process(self._serve_sequence(head))
                    continue
                batch = [head]
                if policy.name == "max-batch" and policy.max_batch > 1:
                    deadline = self.env.now + policy.batch_timeout_s
                    while len(batch) < policy.max_batch:
                        candidate = self._pop_match(head.model,
                                                    want_sequence=True)
                        if candidate is not None:
                            if self._expired(candidate):
                                self._shed(candidate)
                            else:
                                batch.append(candidate)
                            continue
                        remaining = deadline - self.env.now
                        if remaining <= 0:
                            break
                        yield self.env.any_of([
                            self._wait_arrival(),
                            self.env.timeout(remaining),
                        ])
                self.env.process(self._execute_sequence_batch(batch))
                continue
            batch = [head]
            if policy.name == "max-batch" and policy.max_batch > 1:
                deadline = self.env.now + policy.batch_timeout_s
                while len(batch) < policy.max_batch:
                    candidate = self._pop_match(head.model)
                    if candidate is not None:
                        if self._expired(candidate):
                            self._shed(candidate)
                        else:
                            batch.append(candidate)
                        continue
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        break
                    yield self.env.any_of([
                        self._wait_arrival(),
                        self.env.timeout(remaining),
                    ])
            self.batches_dispatched += 1
            self.env.process(self._execute(batch))

    def _shed(self, request: RequestHandle) -> None:
        """Drop an expired request without executing it."""
        now = self.env.now
        record = RequestRecord(
            request_id=request.request_id,
            model=request.model,
            arrival_s=request.submit_s,
            dispatch_s=now,
            finish_s=now,
            batch_size=0,
            deadline_s=request.deadline_s,
            dropped=True,
        )
        self.records.append(record)
        self.trace.request_records.append(record)
        track = self._obs_track(request)
        if track is not None:
            self.obs_trace.add(track, "queue-wait", request.submit_s, now)
            self.obs_trace.instant(track, "shed")
        request.dropped = True
        request.record = record
        if request.done is not None:
            request.done.succeed()
        self.requests_shed += 1
        self._note_closed(request)
        if self.on_request_closed is not None:
            self.on_request_closed(request)
        self._check_drained()

    def _execute(self, batch: list[RequestHandle]):
        """Run one dispatched batch as a single batched inference."""
        entry = self._models[batch[0].model]
        fabric = self.sim.fabric
        dispatch_s = self.env.now
        for _ in batch:
            fabric.request_started()
        obs = self.obs_trace
        head_track = None
        if obs is not None:
            for request in batch:
                track = self._obs_track(request)
                if track is not None:
                    obs.add(track, "queue-wait", request.submit_s,
                            dispatch_s)
            head_track = self._obs_track(batch[0])
            if head_track is not None:
                obs.begin(head_track, "execute",
                          args={"batch": len(batch), "model": entry.name})
        execution = RequestExecution(
            self.env, self.sim.platform.config, fabric, entry.mapping,
            self.trace, mac_rate_hz=self.sim.mac_rate_hz,
            batch_size=len(batch), residency=self.residency,
            compute=self.compute, model_name=entry.name,
            record_timings=self.record_timings,
            obs=obs if head_track is not None else None,
            obs_track=head_track or "",
        )
        yield execution.start()
        self._admission.release()
        finish_s = self.env.now
        if obs is not None:
            if head_track is not None:
                obs.end(head_track)
            # Non-head batch members share the execution timeline; each
            # sampled one gets a complete span (no nested layer detail).
            for request in batch[1:]:
                track = self._obs_track(request)
                if track is not None:
                    obs.add(track, "execute", dispatch_s, finish_s,
                            args={"batch": len(batch)})
        metrics = self.obs_metrics
        if metrics is not None:
            metrics.observe("batch_size", len(batch))
            for request in batch:
                metrics.observe("request_latency_s",
                                finish_s - request.submit_s)
        for request in batch:
            fabric.request_finished()
            record = RequestRecord(
                request_id=request.request_id,
                model=request.model,
                arrival_s=request.submit_s,
                dispatch_s=dispatch_s,
                finish_s=finish_s,
                batch_size=len(batch),
                deadline_s=request.deadline_s,
            )
            self.records.append(record)
            self.trace.request_records.append(record)
            request.record = record
            if request.done is not None:
                request.done.succeed()
            self._note_closed(request)
            if self.on_request_closed is not None:
                self.on_request_closed(request)
        self.requests_completed += len(batch)
        self._check_drained()

    # -- sequence execution: prefill + decode steps -----------------------------------

    def _kv_store(self) -> KVCacheResidency:
        """The KV-cache store, attached to the weight pool on first use."""
        if self.kv is None:
            self.kv = (
                self.residency.kv
                if self.residency.kv is not None
                else KVCacheResidency(self.residency)
            )
        return self.kv

    def _decode_mapping(self, entry: _ModelEntry, width: int) -> ModelMapping:
        """Decode-step mapping for a batch of ``width`` sequences.

        The remapping hook of continuous batching: the per-token decode
        workload is scaled to the running batch width and remapped, so
        chiplet allocation tracks the width; mappings are memoised per
        (model, width) and ``decode_remaps`` counts the distinct
        remappings a run needed.
        """
        key = (entry.name, width)
        mapping = self._decode_mappings.get(key)
        if mapping is None:
            base = self._decode_workloads.get(entry.name)
            if base is None:
                base = decode_workload(entry.mapping.workload)
                self._decode_workloads[entry.name] = base
            mapping = self.sim.map_workload(widened_workload(base, width))
            self._decode_mappings[key] = mapping
            self.decode_remaps += 1
        return mapping

    def _run_step(self, mapping: ModelMapping, entry: _ModelEntry,
                  batch_size: int = 1,
                  obs_track: str | None = None) -> Event:
        """One execution over a decode-shaped mapping (prefill or step)."""
        execution = RequestExecution(
            self.env, self.sim.platform.config, self.sim.fabric, mapping,
            self.trace, mac_rate_hz=self.sim.mac_rate_hz,
            batch_size=batch_size, residency=self.residency,
            compute=self.compute, model_name=entry.name,
            record_timings=self.record_timings,
            obs=self.obs_trace if obs_track is not None else None,
            obs_track=obs_track or "",
        )
        return execution.start()

    def _admit_kv(self, request: RequestHandle, entry: _ModelEntry):
        """Reserve the sequence's KV cache, waiting out refusals."""
        kv = self._kv_store()
        bits = entry.mapping.workload.kv_bits_per_token
        total_tokens = request.prompt_tokens + request.output_tokens
        track = self._obs_track(request)
        if track is not None:
            self.obs_trace.begin(track, "kv-admit",
                                 args={"tokens": total_tokens})
        while not kv.admit(request.request_id, total_tokens, bits):
            yield kv.wait_release()
        if track is not None:
            self.obs_trace.end(track)

    def _prefill(self, request: RequestHandle, entry: _ModelEntry):
        """Prefill one sequence: one pass, batched over prompt tokens."""
        request.dispatch_s = self.env.now
        track = self._obs_track(request)
        if track is not None:
            self.obs_trace.begin(
                track, "prefill",
                args={"prompt_tokens": request.prompt_tokens},
            )
        yield self._run_step(
            self._decode_mapping(entry, 1), entry,
            batch_size=max(1, request.prompt_tokens),
            obs_track=track,
        )
        if track is not None:
            self.obs_trace.end(track)
        now = self.env.now
        request.first_token_s = now
        request.tokens_done = 1
        request.token_times.append(now)
        self._kv_store().grow(
            request.request_id, request.prompt_tokens + 1,
            entry.mapping.workload.kv_bits_per_token,
        )

    def _close_sequence(self, request: RequestHandle,
                        release_slot: bool) -> None:
        """Complete one sequence: record, KV release, drain accounting."""
        self._kv_store().release(request.request_id)
        track = self._obs_track(request)
        if track is not None and request.first_token_s is not None:
            self.obs_trace.add(
                track, "decode", request.first_token_s, self.env.now,
                args={"tokens": request.tokens_done},
            )
        metrics = self.obs_metrics
        if metrics is not None:
            metrics.observe("request_latency_s",
                            self.env.now - request.submit_s)
        times = request.token_times
        record = RequestRecord(
            request_id=request.request_id,
            model=request.model,
            arrival_s=request.submit_s,
            dispatch_s=(
                request.dispatch_s if request.dispatch_s is not None
                else request.submit_s
            ),
            finish_s=self.env.now,
            batch_size=1,
            deadline_s=request.deadline_s,
            prompt_tokens=request.prompt_tokens,
            output_tokens=request.tokens_done,
            first_token_s=request.first_token_s,
            token_gaps=tuple(
                later - earlier for earlier, later in zip(times, times[1:])
            ),
        )
        self.records.append(record)
        self.trace.request_records.append(record)
        request.record = record
        self.sim.fabric.request_finished()
        if release_slot:
            self._admission.release()
        if request.done is not None:
            request.done.succeed()
        self._note_closed(request)
        if self.on_request_closed is not None:
            self.on_request_closed(request)
        self.requests_completed += 1
        self._check_drained()

    def _serve_sequence(self, request: RequestHandle):
        """Continuous batching: prefill alone, then join the decode pool."""
        entry = self._models[request.model]
        track = self._obs_track(request)
        if track is not None:
            self.obs_trace.add(track, "queue-wait", request.submit_s,
                               self.env.now)
        yield from self._admit_kv(request, entry)
        self.sim.fabric.request_started()
        yield from self._prefill(request, entry)
        if request.tokens_done >= request.output_tokens:
            self._close_sequence(request, release_slot=True)
            return
        pool = self._pools.setdefault(request.model, [])
        pool.append(request)
        if request.model not in self._pool_running:
            self._pool_running.add(request.model)
            self.env.process(self._decode_pool(request.model))

    def _decode_pool(self, model: str):
        """The running decode batch of one model (continuous policy).

        Lives while the pool has members: every iteration executes one
        decode step at the current batch width (joins since the last
        step widen it; finished sequences leave and release their KV
        reservation and admission slot at the step boundary).
        """
        entry = self._models[model]
        pool = self._pools[model]
        width_cap = max(1, self.policy.max_batch)
        kv = self._kv_store()
        bits = entry.mapping.workload.kv_bits_per_token
        while pool:
            members = pool[:width_cap]
            width = len(members)
            mapping = self._decode_mapping(entry, width)
            step_begin_s = self.env.now
            yield self._run_step(mapping, entry)
            if self.obs_trace is not None:
                self.obs_trace.add(
                    f"{self.obs_prefix}decode-pool:{model}", "decode-step",
                    step_begin_s, self.env.now, args={"width": width},
                )
            if self.obs_metrics is not None:
                self.obs_metrics.observe("decode_width", width)
            # Batched step completion: one pass accounts every member's
            # token and closes finishers in members order (preserving
            # admission-slot grant order), then the pool prefix is
            # rebuilt once — joiners landed behind it during the step.
            now = self.env.now
            survivors = []
            for member in members:
                member.tokens_done += 1
                member.token_times.append(now)
                kv.grow(member.request_id, 1, bits)
                if member.tokens_done >= member.output_tokens:
                    self._close_sequence(member, release_slot=True)
                else:
                    survivors.append(member)
            if len(survivors) != width:
                pool[:width] = survivors
        self._pool_running.discard(model)

    def _execute_sequence_batch(self, batch: list[RequestHandle]):
        """Sequence batch under a non-continuous policy: the whole batch
        prefills together and decodes in lockstep — members leave as
        they finish, but nothing joins a running batch."""
        entry = self._models[batch[0].model]
        kv = self._kv_store()
        bits = entry.mapping.workload.kv_bits_per_token
        admitted: list[RequestHandle] = []
        deferred: list[RequestHandle] = []
        own_bits = 0.0
        for request in batch:
            total_tokens = request.prompt_tokens + request.output_tokens
            while True:
                if kv.admit(request.request_id, total_tokens, bits):
                    admitted.append(request)
                    own_bits += float(total_tokens * bits)
                    break
                if kv.reserved_bits - own_bits <= 0:
                    # Only this batch's own members hold KV: waiting
                    # would deadlock.  Run with what fits; the rest
                    # re-queue for a later dispatch.
                    deferred.append(request)
                    break
                yield kv.wait_release()
        if deferred:
            self._queue.extendleft(reversed(deferred))
            self._signal_arrival()
        dispatch_s = self.env.now
        for request in admitted:
            self.sim.fabric.request_started()
            request.dispatch_s = dispatch_s
        obs = self.obs_trace
        if obs is not None:
            for request in admitted:
                track = self._obs_track(request)
                if track is not None:
                    obs.add(track, "queue-wait", request.submit_s,
                            dispatch_s)
        total_prompt = sum(
            max(1, request.prompt_tokens) for request in admitted
        )
        yield self._run_step(
            self._decode_mapping(entry, 1), entry, batch_size=total_prompt
        )
        now = self.env.now
        if obs is not None:
            for request in admitted:
                track = self._obs_track(request)
                if track is not None:
                    obs.add(track, "prefill", dispatch_s, now,
                            args={"batch": len(admitted)})
        active: list[RequestHandle] = []
        for request in admitted:
            request.first_token_s = now
            request.tokens_done = 1
            request.token_times.append(now)
            kv.grow(request.request_id, request.prompt_tokens + 1, bits)
            if request.tokens_done >= request.output_tokens:
                self._close_sequence(request, release_slot=False)
            else:
                active.append(request)
        while active:
            mapping = self._decode_mapping(entry, len(active))
            yield self._run_step(mapping, entry)
            now = self.env.now
            survivors = []
            for member in active:
                member.tokens_done += 1
                member.token_times.append(now)
                kv.grow(member.request_id, 1, bits)
                if member.tokens_done >= member.output_tokens:
                    self._close_sequence(member, release_slot=False)
                else:
                    survivors.append(member)
            active = survivors
        self._admission.release()

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self.requests_completed + self.requests_shed
            == self.requests_injected
            and not self._drained.triggered
        ):
            self._drained.succeed()

    # -- injection -------------------------------------------------------------------

    def _next_submission(
        self, models: Iterator | None
    ) -> tuple[str | None, int, int]:
        """(model, prompt_tokens, output_tokens) of the next injection.

        The ``models`` iterator may yield bare model names (single-shot
        requests, the classic contract) or ``(model, prompt_tokens,
        output_tokens)`` tuples for sequence requests.
        """
        if models is None:
            return None, 0, 0
        item = next(models)
        if isinstance(item, tuple):
            return item
        return item, 0, 0

    def _open_loop_injector(self, arrivals, duration_s: float,
                            models: Iterator | None = None):
        """Inject an open-loop gap stream for the duration window."""
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            model, prompt, output = self._next_submission(models)
            self.submit(model=model, prompt_tokens=prompt,
                        output_tokens=output)

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float,
                            models: Iterator | None = None):
        """One closed-loop client: think, request, await completion."""
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            model, prompt, output = self._next_submission(models)
            request = self.submit(done=self.env.event(), model=model,
                                  prompt_tokens=prompt,
                                  output_tokens=output)
            yield request.done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def _inject_cohort(self, arrivals, duration_s: float,
                       models: Iterator | None) -> None:
        """Vectorized open-loop injection: the whole arrival cohort is
        precomputed (batched RNG draws) and bulk-scheduled as plain
        callbacks — no generator frame or per-gap timeout per request.
        Arrival times and submission order match the event-driven
        injector exactly (same seeded stream, same times)."""
        times = arrivals.arrival_times(duration_s)

        def _submit_one(_at_s: float) -> None:
            model, prompt, output = self._next_submission(models)
            self.submit(model=model, prompt_tokens=prompt,
                        output_tokens=output)

        def _mark_done(_at_s: float) -> None:
            self._injection_done = True
            self._check_drained()

        if len(times) == 0:
            self._injection_done = True
            self._check_drained()
            return
        self.env.schedule_calls(times, _submit_one)
        # Scheduled after the cohort at the final arrival time, so its
        # larger sequence number fires it after the last submission.
        self.env.schedule_calls((float(times[-1]),), _mark_done)

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S,
              models: Iterator | None = None,
              vectorized: bool = False) -> None:
        """Run the full serving window: inject, dispatch, drain.

        ``arrivals`` is any open-loop process exposing ``gaps()`` (e.g.
        :class:`~repro.sim.traffic.PoissonArrivals`,
        :class:`~repro.sim.traffic.MMPPArrivals`) or a
        :class:`~repro.sim.traffic.ClosedLoopClients` population.
        ``models`` optionally names the target model of each injected
        request (an infinite iterator, e.g. a seeded traffic-mix
        sampler); by default everything targets the primary model.
        ``vectorized`` precomputes the whole open-loop arrival cohort
        and bulk-schedules it (same times, same order, fewer kernel
        events); arrival processes without a vectorized sampler fall
        back to the event-driven injector.  Returns once every injected
        request completed (or was shed); per-request records are on
        :attr:`records` and the shared trace.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            # The drained barrier and injection flags are one-shot;
            # reuse would silently simulate nothing.
            raise SimulationError(
                "RequestScheduler.serve() is single-shot; build a new "
                "scheduler for another serving window"
            )
        self._served = True
        if (
            vectorized
            and not isinstance(arrivals, ClosedLoopClients)
            and hasattr(arrivals, "arrival_times")
        ):
            self._inject_cohort(arrivals, duration_s, models)
        elif isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s,
                                             models)
                )
                for index in range(arrivals.n_clients)
            ]
            self.env.process(self._watch_injection(injectors))
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s, models)
                )
            ]
            self.env.process(self._watch_injection(injectors))
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"serving run did not drain: {self.requests_completed}/"
                f"{self.requests_injected} requests completed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
