"""Request admission, dispatch ordering and dynamic batching.

The scheduler closes the loop between an arrival process
(:mod:`repro.sim.traffic`) and the re-entrant execution path
(:class:`~repro.core.engine.RequestExecution`): requests queue as they
arrive, a dispatcher groups them according to a :class:`BatchPolicy`,
and each group executes as one batched inference over the platform's
**shared** fabric — weights stay resident per model
(:class:`~repro.mapping.residency.WeightResidency`), activations stream
per request, and contention between overlapping requests emerges from
the fabric's channels.

Several models can be served from one fabric: register extra tenants
with :meth:`RequestScheduler.add_model` and tag submissions with a
model name.  Batches never mix models (one batched inference is one
model), and per-model latency SLOs assign every request a deadline at
submission.

Four policies:

* ``fifo``      — every request dispatches alone, in arrival order;
  ``max_inflight`` caps concurrent executions (admission control).
* ``max-batch`` — the dispatcher opens a batch when an execution slot
  is free, then gathers up to ``max_batch`` same-model requests or
  until ``batch_timeout_s`` elapses since the batch opened, whichever
  is first — classic dynamic batching with a latency bound.
* ``edf``       — earliest-deadline-first: single-request dispatch
  ordered by assigned deadline (no-SLO requests go last, FIFO among
  themselves).
* ``priority``  — single-request dispatch ordered by the submitting
  model's priority (higher first), FIFO within a priority level.

Any policy can additionally set ``shed_expired``: requests whose
deadline has already passed when they are selected for dispatch are
shed — they complete immediately as dropped (the closed-loop client
moves on) and count as SLO violations instead of occupying the fabric.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..core.accelerator import PlatformSimulation
from ..core.engine import ComputeOccupancy, ExecutionTrace, RequestExecution
from ..errors import ConfigurationError, SimulationError, UnknownNameError
from ..mapping.mapper import ModelMapping
from ..mapping.residency import WeightResidency
from ..sim.core import Event
from ..sim.resources import Resource
from ..sim.traffic import ClosedLoopClients
from .metrics import RequestRecord

DEFAULT_DRAIN_LIMIT_S = 1.0
"""Simulated-time hang guard for draining in-flight requests after
injection stops (generous: serving windows are µs–ms scale)."""

POLICY_NAMES = ("fifo", "max-batch", "edf", "priority")
"""Every dispatch policy the scheduler implements."""


@dataclass(frozen=True)
class BatchPolicy:
    """Admission + dispatch-ordering + batching configuration."""

    name: str = "fifo"
    max_batch: int = 1
    batch_timeout_s: float = 20e-6
    max_inflight: int = 4
    shed_expired: bool = False

    def __post_init__(self) -> None:
        if self.name not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown batch policy {self.name!r}; "
                f"choose from {', '.join(POLICY_NAMES)}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max batch must be >= 1, got {self.max_batch}"
            )
        if self.name != "max-batch" and self.max_batch != 1:
            raise ConfigurationError(
                f"{self.name} policy dispatches single requests"
            )
        if self.batch_timeout_s < 0:
            raise ConfigurationError(
                f"batch timeout must be non-negative, got "
                f"{self.batch_timeout_s}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max inflight must be >= 1, got {self.max_inflight}"
            )

    @classmethod
    def fifo(cls, max_inflight: int = 4,
             shed_expired: bool = False) -> "BatchPolicy":
        """One request per dispatch, ``max_inflight`` concurrent."""
        return cls(name="fifo", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @classmethod
    def max_batch_with_timeout(cls, max_batch: int = 8,
                               batch_timeout_s: float = 20e-6,
                               max_inflight: int = 4,
                               shed_expired: bool = False) -> "BatchPolicy":
        """Gather up to ``max_batch`` requests or until the timeout."""
        return cls(name="max-batch", max_batch=max_batch,
                   batch_timeout_s=batch_timeout_s,
                   max_inflight=max_inflight, shed_expired=shed_expired)

    @classmethod
    def edf(cls, max_inflight: int = 4,
            shed_expired: bool = False) -> "BatchPolicy":
        """Earliest-deadline-first single-request dispatch."""
        return cls(name="edf", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @classmethod
    def priority(cls, max_inflight: int = 4,
                 shed_expired: bool = False) -> "BatchPolicy":
        """Model-priority single-request dispatch (higher first)."""
        return cls(name="priority", max_batch=1, max_inflight=max_inflight,
                   shed_expired=shed_expired)

    @property
    def label(self) -> str:
        base = (
            f"max-batch({self.max_batch})" if self.name == "max-batch"
            else self.name
        )
        return base + "+shed" if self.shed_expired else base


@dataclass
class RequestHandle:
    """Public handle for one submitted request.

    Returned by :meth:`RequestScheduler.submit`: carries the submit
    time, the model the request targets, the deadline assigned from the
    model's SLO (``None`` when the model has none) and the optional
    completion event the submitter may wait on.  ``node`` is the
    cluster node index the router placed the request on (``None`` on a
    single-node scheduler); ``dropped`` flips when the scheduler sheds
    the request, so a waiter on ``done`` can tell shed from served;
    ``record`` is the closing :class:`RequestRecord` once one exists.
    """

    request_id: int
    model: str
    submit_s: float
    deadline_s: float | None = None
    done: Event | None = field(default=None)
    node: int | None = None
    dropped: bool = False
    record: RequestRecord | None = None

    @property
    def arrival_s(self) -> float:
        """Alias: submission is arrival, in scheduler terms."""
        return self.submit_s

    def remaining_s(self, now: float) -> float:
        """Time left until the deadline, clamped at zero.

        Backdated arrivals (a request rerouted after a node failure
        keeps its original ``arrival_s``) can place the deadline in the
        past, so the raw difference may be negative — and a negative
        value handed to a timer would crash the kernel's backwards-time
        guard.  ``inf`` when the request has no deadline.
        """
        if self.deadline_s is None:
            return float("inf")
        return max(0.0, self.deadline_s - now)


@dataclass(frozen=True)
class _ModelEntry:
    """One served model: its mapping and service-level parameters."""

    name: str
    mapping: ModelMapping
    slo_s: float | None = None
    priority: int = 0


class RequestScheduler:
    """Streams requests from an arrival process through a platform.

    Build one per serving simulation: it owns the queue, the dispatcher
    process, the admission semaphore and the shared
    :class:`ExecutionTrace` that accumulates operation counts (for the
    energy ledger) and per-request records (for latency aggregation).
    """

    def __init__(
        self,
        sim: PlatformSimulation,
        mapping: ModelMapping,
        model_name: str,
        policy: BatchPolicy | None = None,
        residency: WeightResidency | None = None,
        trace: ExecutionTrace | None = None,
        record_timings: bool = False,
        slo_s: float | None = None,
        priority: int = 0,
    ):
        self.sim = sim
        self.env = sim.env
        self.mapping = mapping
        self.model_name = model_name
        self.policy = policy or BatchPolicy.fifo()
        self.residency = (
            residency if residency is not None
            else WeightResidency(sim.env)
        )
        self.trace = trace or ExecutionTrace()
        self.record_timings = record_timings
        self.compute = ComputeOccupancy(sim.env)
        self._models: dict[str, _ModelEntry] = {}
        self._register(model_name, mapping, slo_s, priority)

        self._queue: deque[RequestHandle] = deque()
        self._arrival_signal: Event | None = None
        self._admission = Resource(sim.env,
                                   capacity=self.policy.max_inflight)
        self.records: list[RequestRecord] = []
        self.requests_injected = 0
        self.requests_completed = 0
        self.requests_shed = 0
        self.requests_evicted = 0
        self.requests_cancelled = 0
        self.batches_dispatched = 0
        self.on_request_closed: Callable[[RequestHandle], None] | None = None
        self._injection_done = False
        self._drained = sim.env.event()
        self._next_id = 0
        self._served = False
        self._paused = False
        self._resume_signal: Event | None = None
        self.env.process(self._dispatch_loop())

    # -- served models ------------------------------------------------------------

    def _register(self, name: str, mapping: ModelMapping,
                  slo_s: float | None, priority: int) -> None:
        if name in self._models:
            raise ConfigurationError(f"model {name!r} is already served")
        if slo_s is not None and slo_s <= 0:
            raise ConfigurationError(
                f"SLO must be positive, got {slo_s} for {name!r}"
            )
        self._models[name] = _ModelEntry(
            name=name, mapping=mapping, slo_s=slo_s, priority=priority
        )

    def add_model(self, name: str, mapping: ModelMapping,
                  slo_s: float | None = None, priority: int = 0) -> None:
        """Register another tenant model to serve from the same fabric."""
        self._register(name, mapping, slo_s, priority)

    @property
    def served_models(self) -> tuple[str, ...]:
        """Names of every registered tenant, registration order."""
        return tuple(self._models)

    def slos(self) -> dict[str, float | None]:
        """Per-model latency SLOs (None where unset)."""
        return {name: entry.slo_s for name, entry in self._models.items()}

    # -- queue plumbing -----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for dispatch."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Accepted requests not yet completed (queued + in flight)."""
        return (
            self.requests_injected
            - self.requests_completed
            - self.requests_shed
        )

    def submit(self, done: Event | None = None,
               model: str | None = None,
               arrival_s: float | None = None) -> RequestHandle:
        """Enqueue one request arriving now; returns its public handle.

        ``model`` defaults to the primary model the scheduler was built
        with; the handle's deadline is assigned from the model's SLO.
        ``arrival_s`` backdates the arrival (and therefore the deadline
        base): the cluster router uses it when re-enqueueing a request
        evicted from a failed node, so the user-visible latency and SLO
        clock keep running from the original submission.
        """
        name = self.model_name if model is None else model
        try:
            entry = self._models[name]
        except KeyError:
            raise UnknownNameError(
                "served model", name, tuple(self._models)
            ) from None
        now = self.env.now if arrival_s is None else arrival_s
        request = RequestHandle(
            request_id=self._next_id, model=name, submit_s=now,
            deadline_s=None if entry.slo_s is None else now + entry.slo_s,
            done=done,
        )
        self._next_id += 1
        self._queue.append(request)
        self.requests_injected += 1
        signal = self._arrival_signal
        if signal is not None and not signal.triggered:
            signal.succeed()
        return request

    def cancel(self, handle: RequestHandle) -> bool:
        """Withdraw one still-queued request (lifecycle cancellation).

        Matches by handle identity *or* by shared completion event —
        after a failed node's queue is rerouted the caller's handle is
        stale, but the re-submitted copy carries the same ``done``
        event.  Returns ``False`` when the request already dispatched
        (in-flight work cannot be recalled) or was shed; the injected
        counter is rolled back exactly like :meth:`evict_queued` so the
        drain invariant keeps holding.
        """
        for index, request in enumerate(self._queue):
            if request is handle or (
                handle.done is not None and request.done is handle.done
            ):
                del self._queue[index]
                self.requests_injected -= 1
                self.requests_cancelled += 1
                self._check_drained()
                return True
        return False

    def pause(self) -> None:
        """Stop dispatching (a failed node under health-checked routing).

        Queued requests stay queued and in-flight batches finish;
        nothing new dispatches until :meth:`resume`.  The omniscient
        legacy path never pauses, so its behavior is untouched.
        """
        self._paused = True

    def resume(self) -> None:
        """Resume dispatching after a :meth:`pause` (node repair)."""
        if not self._paused:
            return
        self._paused = False
        signal = self._resume_signal
        if signal is not None and not signal.triggered:
            signal.succeed()

    def _wait_resume(self) -> Event:
        event = self.env.event()
        self._resume_signal = event
        return event

    def evict_queued(self) -> list[RequestHandle]:
        """Withdraw every request still waiting for dispatch.

        Returns the evicted handles in queue order so a caller (the
        cluster router, when this scheduler's node fails) can re-enqueue
        them elsewhere.  In-flight batches are unaffected; the injected
        counter is rolled back so the drain invariant
        ``injected == completed + shed + outstanding`` keeps holding.
        """
        evicted = list(self._queue)
        self._queue.clear()
        self.requests_injected -= len(evicted)
        self.requests_evicted += len(evicted)
        self._check_drained()
        return evicted

    def _wait_arrival(self) -> Event:
        event = self.env.event()
        self._arrival_signal = event
        return event

    # -- dispatcher ------------------------------------------------------------------

    def _select_index(self) -> int:
        """Queue index the policy dispatches next (queue non-empty)."""
        queue = self._queue
        if self.policy.name == "edf":
            return min(
                range(len(queue)),
                key=lambda i: (
                    float("inf") if queue[i].deadline_s is None
                    else queue[i].deadline_s,
                    i,
                ),
            )
        if self.policy.name == "priority":
            return min(
                range(len(queue)),
                key=lambda i: (-self._models[queue[i].model].priority, i),
            )
        return 0  # fifo / max-batch: arrival order

    def _expired(self, request: RequestHandle) -> bool:
        """Whether dispatching ``request`` now should shed it instead."""
        return (
            self.policy.shed_expired
            and request.deadline_s is not None
            and self.env.now > request.deadline_s
        )

    def _next_dispatch(self) -> RequestHandle | None:
        """Pop the next live request, shedding expired ones if asked."""
        while self._queue:
            index = self._select_index()
            request = self._queue[index]
            del self._queue[index]
            if self._expired(request):
                self._shed(request)
                continue
            return request
        return None

    def _pop_match(self, model: str) -> RequestHandle | None:
        """Pop the oldest queued request for ``model`` (batch filling)."""
        queue = self._queue
        if len(self._models) == 1:
            return queue.popleft() if queue else None
        for index, request in enumerate(queue):
            if request.model == model:
                del queue[index]
                return request
        return None

    def _dispatch_loop(self):
        policy = self.policy
        while True:
            while self._paused:
                yield self._wait_resume()
            while not self._queue:
                yield self._wait_arrival()
                if self._paused:
                    break
            if self._paused or not self._queue:
                continue
            # Back-pressure: only open a batch once an execution slot is
            # free, so under load batches fill instead of fragmenting.
            yield self._admission.request()
            if self._paused:
                self._admission.release()
                continue
            head = self._next_dispatch()
            if head is None:
                # Everything queued was shed; give the slot back.
                self._admission.release()
                continue
            batch = [head]
            if policy.name == "max-batch" and policy.max_batch > 1:
                deadline = self.env.now + policy.batch_timeout_s
                while len(batch) < policy.max_batch:
                    candidate = self._pop_match(head.model)
                    if candidate is not None:
                        if self._expired(candidate):
                            self._shed(candidate)
                        else:
                            batch.append(candidate)
                        continue
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        break
                    yield self.env.any_of([
                        self._wait_arrival(),
                        self.env.timeout(remaining),
                    ])
            self.batches_dispatched += 1
            self.env.process(self._execute(batch))

    def _shed(self, request: RequestHandle) -> None:
        """Drop an expired request without executing it."""
        now = self.env.now
        record = RequestRecord(
            request_id=request.request_id,
            model=request.model,
            arrival_s=request.submit_s,
            dispatch_s=now,
            finish_s=now,
            batch_size=0,
            deadline_s=request.deadline_s,
            dropped=True,
        )
        self.records.append(record)
        self.trace.request_records.append(record)
        request.dropped = True
        request.record = record
        if request.done is not None:
            request.done.succeed()
        self.requests_shed += 1
        if self.on_request_closed is not None:
            self.on_request_closed(request)
        self._check_drained()

    def _execute(self, batch: list[RequestHandle]):
        """Run one dispatched batch as a single batched inference."""
        entry = self._models[batch[0].model]
        fabric = self.sim.fabric
        dispatch_s = self.env.now
        for _ in batch:
            fabric.request_started()
        execution = RequestExecution(
            self.env, self.sim.platform.config, fabric, entry.mapping,
            self.trace, mac_rate_hz=self.sim.mac_rate_hz,
            batch_size=len(batch), residency=self.residency,
            compute=self.compute, model_name=entry.name,
            record_timings=self.record_timings,
        )
        yield execution.start()
        self._admission.release()
        finish_s = self.env.now
        for request in batch:
            fabric.request_finished()
            record = RequestRecord(
                request_id=request.request_id,
                model=request.model,
                arrival_s=request.submit_s,
                dispatch_s=dispatch_s,
                finish_s=finish_s,
                batch_size=len(batch),
                deadline_s=request.deadline_s,
            )
            self.records.append(record)
            self.trace.request_records.append(record)
            request.record = record
            if request.done is not None:
                request.done.succeed()
            if self.on_request_closed is not None:
                self.on_request_closed(request)
        self.requests_completed += len(batch)
        self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self.requests_completed + self.requests_shed
            == self.requests_injected
            and not self._drained.triggered
        ):
            self._drained.succeed()

    # -- injection -------------------------------------------------------------------

    def _next_model(self,
                    models: Iterator[str] | None) -> str | None:
        return None if models is None else next(models)

    def _open_loop_injector(self, arrivals, duration_s: float,
                            models: Iterator[str] | None = None):
        """Inject an open-loop gap stream for the duration window."""
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            self.submit(model=self._next_model(models))

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float,
                            models: Iterator[str] | None = None):
        """One closed-loop client: think, request, await completion."""
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            request = self.submit(done=self.env.event(),
                                  model=self._next_model(models))
            yield request.done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def _inject_cohort(self, arrivals, duration_s: float,
                       models: Iterator[str] | None) -> None:
        """Vectorized open-loop injection: the whole arrival cohort is
        precomputed (batched RNG draws) and bulk-scheduled as plain
        callbacks — no generator frame or per-gap timeout per request.
        Arrival times and submission order match the event-driven
        injector exactly (same seeded stream, same times)."""
        times = arrivals.arrival_times(duration_s)

        def _submit_one(_at_s: float) -> None:
            self.submit(model=self._next_model(models))

        def _mark_done(_at_s: float) -> None:
            self._injection_done = True
            self._check_drained()

        if len(times) == 0:
            self._injection_done = True
            self._check_drained()
            return
        self.env.schedule_calls(times, _submit_one)
        # Scheduled after the cohort at the final arrival time, so its
        # larger sequence number fires it after the last submission.
        self.env.schedule_calls((float(times[-1]),), _mark_done)

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S,
              models: Iterator[str] | None = None,
              vectorized: bool = False) -> None:
        """Run the full serving window: inject, dispatch, drain.

        ``arrivals`` is any open-loop process exposing ``gaps()`` (e.g.
        :class:`~repro.sim.traffic.PoissonArrivals`,
        :class:`~repro.sim.traffic.MMPPArrivals`) or a
        :class:`~repro.sim.traffic.ClosedLoopClients` population.
        ``models`` optionally names the target model of each injected
        request (an infinite iterator, e.g. a seeded traffic-mix
        sampler); by default everything targets the primary model.
        ``vectorized`` precomputes the whole open-loop arrival cohort
        and bulk-schedules it (same times, same order, fewer kernel
        events); arrival processes without a vectorized sampler fall
        back to the event-driven injector.  Returns once every injected
        request completed (or was shed); per-request records are on
        :attr:`records` and the shared trace.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            # The drained barrier and injection flags are one-shot;
            # reuse would silently simulate nothing.
            raise SimulationError(
                "RequestScheduler.serve() is single-shot; build a new "
                "scheduler for another serving window"
            )
        self._served = True
        if (
            vectorized
            and not isinstance(arrivals, ClosedLoopClients)
            and hasattr(arrivals, "arrival_times")
        ):
            self._inject_cohort(arrivals, duration_s, models)
        elif isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s,
                                             models)
                )
                for index in range(arrivals.n_clients)
            ]
            self.env.process(self._watch_injection(injectors))
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s, models)
                )
            ]
            self.env.process(self._watch_injection(injectors))
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"serving run did not drain: {self.requests_completed}/"
                f"{self.requests_injected} requests completed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
