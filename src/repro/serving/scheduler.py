"""Request admission and dynamic batching over a shared platform.

The scheduler closes the loop between an arrival process
(:mod:`repro.sim.traffic`) and the re-entrant execution path
(:class:`~repro.core.engine.RequestExecution`): requests queue as they
arrive, a dispatcher groups them according to a :class:`BatchPolicy`,
and each group executes as one batched inference over the platform's
**shared** fabric — weights stay resident per model
(:class:`~repro.mapping.residency.WeightResidency`), activations stream
per request, and contention between overlapping requests emerges from
the fabric's channels.

Two policies:

* ``fifo``      — every request dispatches alone, in arrival order;
  ``max_inflight`` caps concurrent executions (admission control).
* ``max-batch`` — the dispatcher opens a batch when an execution slot
  is free, then gathers up to ``max_batch`` requests or until
  ``batch_timeout_s`` elapses since the batch opened, whichever is
  first — classic dynamic batching with a latency bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.accelerator import PlatformSimulation
from ..core.engine import ComputeOccupancy, ExecutionTrace, RequestExecution
from ..errors import ConfigurationError, SimulationError
from ..mapping.mapper import ModelMapping
from ..mapping.residency import WeightResidency
from ..sim.core import Event
from ..sim.resources import Resource
from ..sim.traffic import ClosedLoopClients
from .metrics import RequestRecord

DEFAULT_DRAIN_LIMIT_S = 1.0
"""Simulated-time hang guard for draining in-flight requests after
injection stops (generous: serving windows are µs–ms scale)."""


@dataclass(frozen=True)
class BatchPolicy:
    """Admission + dynamic-batching configuration of the dispatcher."""

    name: str = "fifo"
    max_batch: int = 1
    batch_timeout_s: float = 20e-6
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.name not in ("fifo", "max-batch"):
            raise ConfigurationError(
                f"unknown batch policy {self.name!r}; "
                "choose 'fifo' or 'max-batch'"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max batch must be >= 1, got {self.max_batch}"
            )
        if self.name == "fifo" and self.max_batch != 1:
            raise ConfigurationError("fifo policy dispatches single requests")
        if self.batch_timeout_s < 0:
            raise ConfigurationError(
                f"batch timeout must be non-negative, got "
                f"{self.batch_timeout_s}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max inflight must be >= 1, got {self.max_inflight}"
            )

    @classmethod
    def fifo(cls, max_inflight: int = 4) -> "BatchPolicy":
        """One request per dispatch, ``max_inflight`` concurrent."""
        return cls(name="fifo", max_batch=1, max_inflight=max_inflight)

    @classmethod
    def max_batch_with_timeout(cls, max_batch: int = 8,
                               batch_timeout_s: float = 20e-6,
                               max_inflight: int = 4) -> "BatchPolicy":
        """Gather up to ``max_batch`` requests or until the timeout."""
        return cls(name="max-batch", max_batch=max_batch,
                   batch_timeout_s=batch_timeout_s,
                   max_inflight=max_inflight)

    @property
    def label(self) -> str:
        if self.name == "fifo":
            return "fifo"
        return f"max-batch({self.max_batch})"


@dataclass
class _Request:
    """One queued request (internal)."""

    request_id: int
    arrival_s: float
    done: Event | None = field(default=None)


class RequestScheduler:
    """Streams requests from an arrival process through a platform.

    Build one per serving simulation: it owns the queue, the dispatcher
    process, the admission semaphore and the shared
    :class:`ExecutionTrace` that accumulates operation counts (for the
    energy ledger) and per-request records (for latency aggregation).
    """

    def __init__(
        self,
        sim: PlatformSimulation,
        mapping: ModelMapping,
        model_name: str,
        policy: BatchPolicy | None = None,
        residency: WeightResidency | None = None,
        trace: ExecutionTrace | None = None,
        record_timings: bool = False,
    ):
        self.sim = sim
        self.env = sim.env
        self.mapping = mapping
        self.model_name = model_name
        self.policy = policy or BatchPolicy.fifo()
        self.residency = (
            residency if residency is not None
            else WeightResidency(sim.env)
        )
        self.trace = trace or ExecutionTrace()
        self.record_timings = record_timings
        self.compute = ComputeOccupancy(sim.env)

        self._queue: deque[_Request] = deque()
        self._arrival_signal: Event | None = None
        self._admission = Resource(sim.env,
                                   capacity=self.policy.max_inflight)
        self.records: list[RequestRecord] = []
        self.requests_injected = 0
        self.requests_completed = 0
        self.batches_dispatched = 0
        self._injection_done = False
        self._drained = sim.env.event()
        self._next_id = 0
        self._served = False
        self.env.process(self._dispatch_loop())

    # -- queue plumbing -----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for dispatch."""
        return len(self._queue)

    def submit(self, done: Event | None = None) -> _Request:
        """Enqueue one request arriving now; returns its handle."""
        request = _Request(
            request_id=self._next_id, arrival_s=self.env.now, done=done
        )
        self._next_id += 1
        self._queue.append(request)
        self.requests_injected += 1
        signal = self._arrival_signal
        if signal is not None and not signal.triggered:
            signal.succeed()
        return request

    def _wait_arrival(self) -> Event:
        event = self.env.event()
        self._arrival_signal = event
        return event

    # -- dispatcher ------------------------------------------------------------------

    def _dispatch_loop(self):
        policy = self.policy
        while True:
            while not self._queue:
                yield self._wait_arrival()
            # Back-pressure: only open a batch once an execution slot is
            # free, so under load batches fill instead of fragmenting.
            yield self._admission.request()
            batch = [self._queue.popleft()]
            if policy.name == "max-batch" and policy.max_batch > 1:
                deadline = self.env.now + policy.batch_timeout_s
                while len(batch) < policy.max_batch:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        break
                    yield self.env.any_of([
                        self._wait_arrival(),
                        self.env.timeout(remaining),
                    ])
            self.batches_dispatched += 1
            self.env.process(self._execute(batch))

    def _execute(self, batch: list[_Request]):
        """Run one dispatched batch as a single batched inference."""
        fabric = self.sim.fabric
        dispatch_s = self.env.now
        for _ in batch:
            fabric.request_started()
        execution = RequestExecution(
            self.env, self.sim.platform.config, fabric, self.mapping,
            self.trace, mac_rate_hz=self.sim.mac_rate_hz,
            batch_size=len(batch), residency=self.residency,
            compute=self.compute, model_name=self.model_name,
            record_timings=self.record_timings,
        )
        yield execution.start()
        self._admission.release()
        finish_s = self.env.now
        for request in batch:
            fabric.request_finished()
            record = RequestRecord(
                request_id=request.request_id,
                model=self.model_name,
                arrival_s=request.arrival_s,
                dispatch_s=dispatch_s,
                finish_s=finish_s,
                batch_size=len(batch),
            )
            self.records.append(record)
            self.trace.request_records.append(record)
            if request.done is not None:
                request.done.succeed()
        self.requests_completed += len(batch)
        self._check_drained()

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self.requests_completed == self.requests_injected
            and not self._drained.triggered
        ):
            self._drained.succeed()

    # -- injection -------------------------------------------------------------------

    def _open_loop_injector(self, arrivals, duration_s: float):
        """Inject an open-loop gap stream for the duration window."""
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            self.submit()

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float):
        """One closed-loop client: think, request, await completion."""
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            request = self.submit(done=self.env.event())
            yield request.done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S) -> None:
        """Run the full serving window: inject, dispatch, drain.

        ``arrivals`` is any open-loop process exposing ``gaps()`` (e.g.
        :class:`~repro.sim.traffic.PoissonArrivals`,
        :class:`~repro.sim.traffic.MMPPArrivals`) or a
        :class:`~repro.sim.traffic.ClosedLoopClients` population.
        Returns once every injected request completed; per-request
        records are on :attr:`records` and the shared trace.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            # The drained barrier and injection flags are one-shot;
            # reuse would silently simulate nothing.
            raise SimulationError(
                "RequestScheduler.serve() is single-shot; build a new "
                "scheduler for another serving window"
            )
        self._served = True
        if isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s)
                )
                for index in range(arrivals.n_clients)
            ]
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s)
                )
            ]
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        self.env.process(self._watch_injection(injectors))
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"serving run did not drain: {self.requests_completed}/"
                f"{self.requests_injected} requests completed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
