"""Per-request latency records and serving-level aggregates.

The scheduler stamps a :class:`RequestRecord` for every completed
request (these travel on the shared
:class:`~repro.core.engine.ExecutionTrace`); a finished run aggregates
them into a :class:`ServingResult` — tail-latency percentiles, goodput
and fabric-utilization-under-load — which is what serving studies
cache, export and plot as latency–throughput curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from ..sim.resources import ChannelStat


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed (or shed) request.

    Sequence (autoregressive) requests additionally carry their token
    counts, the first-token completion time (prefill end) and the gaps
    between consecutive decoded tokens; single-shot requests keep the
    zero defaults, so every pre-transformer record is unchanged.
    """

    request_id: int
    model: str
    arrival_s: float
    dispatch_s: float
    finish_s: float
    batch_size: int = 1
    deadline_s: float | None = None
    dropped: bool = False
    prompt_tokens: int = 0
    output_tokens: int = 0
    first_token_s: float | None = None
    token_gaps: tuple[float, ...] = ()

    @property
    def is_sequence(self) -> bool:
        """Whether this request was served as prefill + decode steps."""
        return self.output_tokens > 0

    @property
    def ttft_s(self) -> float | None:
        """Arrival-to-first-token latency (None for single-shot)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (what the user experiences)."""
        return self.finish_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent queued/batched before execution started."""
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Time spent executing on the fabric."""
        return self.finish_s - self.dispatch_s

    @property
    def slo_violated(self) -> bool:
        """Shed, or completed after the assigned deadline."""
        if self.dropped:
            return True
        return self.deadline_s is not None and self.finish_s > self.deadline_s


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (deterministic, no
    interpolation); 0.0 for an empty sample set."""
    if not 0.0 <= q <= 100.0:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyProfile:
    """Latency distribution summary of one serving run."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyProfile":
        if not samples:
            return cls(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0,
                       p99_s=0.0, max_s=0.0)
        return cls(
            count=len(samples),
            mean_s=sum(samples) / len(samples),
            p50_s=percentile(samples, 50.0),
            p95_s=percentile(samples, 95.0),
            p99_s=percentile(samples, 99.0),
            max_s=max(samples),
        )


@dataclass(frozen=True)
class ModelServingStats:
    """Per-tenant serving outcome: one model of a (possibly mixed) run."""

    model: str
    slo_s: float | None
    completed: int
    shed: int
    slo_violations: int
    latency: LatencyProfile
    goodput_rps: float
    quota_denied: int = 0

    @property
    def submitted(self) -> int:
        """Requests this model received (completed + shed)."""
        return self.completed + self.shed

    @property
    def slo_attainment(self) -> float:
        """Fraction of submitted requests served within their deadline
        (1.0 when the model has no SLO and nothing was shed)."""
        if self.submitted == 0:
            return 1.0
        return 1.0 - self.slo_violations / self.submitted


def per_model_stats(
    records: list[RequestRecord],
    elapsed_s: float,
    slos: dict[str, float | None] | None = None,
    quota_denied: dict[str, int] | None = None,
) -> tuple[ModelServingStats, ...]:
    """Group request records by model into per-tenant SLO stats.

    ``slos`` optionally names each model's SLO (from the scheduler);
    otherwise it is inferred from the records' assigned deadlines.
    ``quota_denied`` optionally carries per-model admission-quota
    denial counts (those requests were shed at submit time, so their
    records are in ``records`` too — the counter says *why*).
    Models appear in first-record order, so output is deterministic.
    """
    order: list[str] = []
    grouped: dict[str, list[RequestRecord]] = {}
    for record in records:
        if record.model not in grouped:
            grouped[record.model] = []
            order.append(record.model)
        grouped[record.model].append(record)
    stats = []
    for model in order:
        group = grouped[model]
        served = [r for r in group if not r.dropped]
        slo = (slos or {}).get(model)
        if slo is None:
            deadlines = [
                r.deadline_s - r.arrival_s for r in group
                if r.deadline_s is not None
            ]
            slo = deadlines[0] if deadlines else None
        stats.append(ModelServingStats(
            model=model,
            slo_s=slo,
            completed=len(served),
            shed=len(group) - len(served),
            slo_violations=sum(1 for r in group if r.slo_violated),
            latency=LatencyProfile.from_samples(
                [r.latency_s for r in served]
            ),
            goodput_rps=(
                len(served) / elapsed_s if elapsed_s > 0 else 0.0
            ),
            quota_denied=(quota_denied or {}).get(model, 0),
        ))
    return tuple(stats)


def sequence_stats(
    records: list[RequestRecord],
    elapsed_s: float,
) -> tuple[LatencyProfile | None, LatencyProfile | None, int, float]:
    """(TTFT profile, per-token-gap profile, tokens generated, tokens/s).

    Aggregates the completed sequence requests of a run; all four
    values are ``None``/zero when the run served no sequences, so
    single-shot (CNN) results are untouched.
    """
    sequences = [
        r for r in records
        if r.is_sequence and not r.dropped and r.first_token_s is not None
    ]
    if not sequences:
        return None, None, 0, 0.0
    ttft = LatencyProfile.from_samples(
        [r.first_token_s - r.arrival_s for r in sequences]
    )
    gaps = [gap for r in sequences for gap in r.token_gaps]
    token_latency = LatencyProfile.from_samples(gaps)
    tokens = sum(r.output_tokens for r in sequences)
    tokens_per_s = tokens / elapsed_s if elapsed_s > 0 else 0.0
    return ttft, token_latency, tokens, tokens_per_s


@dataclass(frozen=True)
class WindowStats:
    """Serving outcome of one time window of a run.

    Fault-injected runs report one of these per phase — ``before`` the
    first hazard strikes, ``during`` the fault window, and ``after``
    the last hazard clears — so degradation and recovery are directly
    measurable instead of being averaged into the run totals.
    Requests belong to the window their *arrival* falls in: those are
    the users who experienced the degraded (or recovered) service.
    """

    label: str
    start_s: float
    end_s: float
    completed: int
    shed: int
    slo_violations: int
    latency: LatencyProfile
    goodput_rps: float

    @property
    def submitted(self) -> int:
        return self.completed + self.shed

    @property
    def slo_attainment(self) -> float:
        """Fraction of the window's requests served within deadline."""
        if self.submitted == 0:
            return 1.0
        return 1.0 - self.slo_violations / self.submitted


def windowed_stats(
    records: list[RequestRecord],
    fault_start_s: float,
    fault_end_s: float,
    elapsed_s: float,
) -> tuple[WindowStats, ...]:
    """before/during/after-fault windows over one run's records.

    The during window is ``[fault_start_s, fault_end_s)`` clamped to
    the run; zero-span windows (a fault starting at t=0, or one that
    outlives the run) are omitted.
    """
    if fault_end_s < fault_start_s:
        raise SimulationError(
            f"fault window must be ordered, got "
            f"[{fault_start_s}, {fault_end_s}]"
        )
    start = min(fault_start_s, elapsed_s)
    end = min(fault_end_s, elapsed_s)
    spans = (
        ("before", 0.0, start),
        ("during", start, end),
        ("after", end, elapsed_s),
    )
    windows = []
    for label, span_start, span_end in spans:
        if span_end <= span_start:
            continue
        group = [
            r for r in records
            if span_start <= r.arrival_s < span_end
            or (label == "after" and r.arrival_s >= span_end)
        ]
        served = [r for r in group if not r.dropped]
        windows.append(WindowStats(
            label=label,
            start_s=span_start,
            end_s=span_end,
            completed=len(served),
            shed=len(group) - len(served),
            slo_violations=sum(1 for r in group if r.slo_violated),
            latency=LatencyProfile.from_samples(
                [r.latency_s for r in served]
            ),
            goodput_rps=len(served) / (span_end - span_start),
        ))
    return tuple(windows)


# ---------------------------------------------------------------------------
# Resilience accounting: the request lifecycle and fleet availability.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResilienceStats:
    """Request-lifecycle accounting of one resilient serving run.

    Plain picklable data stamped by
    :class:`~repro.serving.lifecycle.LifecycleDriver`: ``requests``
    counts *logical* requests (what the client sees), ``attempts``
    every physical submission including retries and hedges.
    ``cancelled`` counts attempts withdrawn from a queue before
    dispatch, ``timeouts`` attempt timeouts observed, ``gave_up``
    logical requests abandoned after exhausting retries (or the retry
    budget — ``budget_denied`` counts denials).  ``retry_causes``
    tallies retries by trigger (``timeout`` / ``shed``), sorted by
    cause name for determinism.
    """

    requests: int = 0
    attempts: int = 0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    timeouts: int = 0
    cancelled: int = 0
    gave_up: int = 0
    budget_denied: int = 0
    retry_causes: tuple[tuple[str, int], ...] = ()

    @property
    def retry_amplification(self) -> float:
        """Physical attempts per logical request (1.0 = no extra work)."""
        if self.requests == 0:
            return 1.0
        return self.attempts / self.requests

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of hedged attempts that beat their primary."""
        if self.hedges == 0:
            return 0.0
        return self.hedge_wins / self.hedges

    @property
    def wasted_attempts(self) -> int:
        """Attempts that produced no user-visible response: cancelled,
        timed out in flight, or lost a hedge race."""
        return self.attempts - (self.requests - self.gave_up)


@dataclass(frozen=True)
class IncidentRecord:
    """One node outage: from failure through detection to restoration.

    ``start_s`` is when the node actually failed, ``detected_s`` when
    the router ejected it from the routable view (equal to ``start_s``
    under omniscient failure detection; later under probe-based
    detection), and ``end_s`` when it returned to rotation (``None`` =
    unresolved at window end).
    """

    node: int
    start_s: float
    detected_s: float | None = None
    end_s: float | None = None

    @property
    def resolved(self) -> bool:
        return self.end_s is not None

    @property
    def repair_s(self) -> float | None:
        """Time to restore (MTTR numerator); None while unresolved."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    @property
    def detection_lag_s(self) -> float | None:
        """Failure-to-ejection lag (0 under omniscient detection)."""
        if self.detected_s is None:
            return None
        return self.detected_s - self.start_s


def mean_time_to_repair(incidents: tuple[IncidentRecord, ...]) -> float:
    """Mean repair time over the resolved incidents (0.0 when none)."""
    repairs = [
        incident.repair_s for incident in incidents if incident.resolved
    ]
    if not repairs:
        return 0.0
    return sum(repairs) / len(repairs)


@dataclass(frozen=True)
class FidelityReport:
    """How a hybrid-fidelity cell was actually simulated, and how well.

    Attached to results produced under an armed fidelity policy.
    ``mode_used`` is ``"fluid"`` when the fluid fast path produced the
    result and ``"des-fallback"`` when the calibration error exceeded
    the budget (or the calibration produced no usable profile) and the
    cell re-ran through full DES.  The relative errors compare the
    fluid model's prediction of the calibration window against the
    short DES measurement of that same window — recorded either way, so
    fidelity loss is always visible in exports.  ``warm_forked`` marks
    cells that reused a memoised calibration checkpoint (the warm-state
    fork) instead of re-simulating the warm-up phase.
    """

    mode_requested: str
    mode_used: str
    error_budget: float
    calibration_s: float
    calibration_requests: int
    p50_rel_err: float
    p99_rel_err: float
    goodput_rel_err: float
    warm_forked: bool = False
    ttft_rel_err: float | None = None
    """Relative error of the fluid TTFT p99 prediction against the
    calibration DES measurement; ``None`` for single-step workloads."""
    token_p99_rel_err: float | None = None
    """Relative error of the fluid per-token-latency p99 prediction;
    ``None`` for single-step workloads."""

    @property
    def within_budget(self) -> bool:
        """Whether every tracked error stayed within the budget."""
        return (
            self.p50_rel_err <= self.error_budget
            and self.p99_rel_err <= self.error_budget
            and self.goodput_rel_err <= self.error_budget
            and (self.ttft_rel_err is None
                 or self.ttft_rel_err <= self.error_budget)
            and (self.token_p99_rel_err is None
                 or self.token_p99_rel_err <= self.error_budget)
        )


@dataclass(frozen=True)
class ServingResult:
    """Complete outcome of one request-serving simulation.

    Picklable plain data: serving studies cache these through the same
    on-disk :class:`~repro.experiments.runner.ResultCache` as inference
    results, and the export layer serialises them to JSON/CSV.
    """

    platform: str
    model: str
    controller: str
    policy: str
    arrival_kind: str
    offered_rps: float
    duration_s: float
    elapsed_s: float
    requests_injected: int
    requests_completed: int
    latency: LatencyProfile
    queue_delay: LatencyProfile
    mean_batch_size: float
    mean_inflight: float
    mean_compute_utilization: float
    reconfigurations: int
    network_energy_j: float
    compute_energy_j: float
    channel_stats: tuple[ChannelStat, ...] = ()
    requests_shed: int = 0
    per_model: tuple[ModelServingStats, ...] = ()
    windows: tuple[WindowStats, ...] = ()
    hazard_events: tuple = ()
    time_degraded_s: float = 0.0
    resilience: ResilienceStats | None = None
    availability: float = 1.0
    mttr_s: float = 0.0
    incidents: tuple = ()
    fidelity: FidelityReport | None = None
    ttft: LatencyProfile | None = None
    token_latency: LatencyProfile | None = None
    tokens_generated: int = 0
    tokens_per_s: float = 0.0
    kv_refusals: int = 0
    kv_peak_bits: float = 0.0
    decode_remaps: int = 0
    telemetry: "object | None" = None
    """Frozen :class:`~repro.obs.session.TelemetrySummary` when the
    cell ran with telemetry armed; appended last (and read with
    ``getattr``) so pre-telemetry pickles keep loading."""

    @property
    def is_sequence_run(self) -> bool:
        """Whether any request was served as prefill + decode steps."""
        return self.tokens_generated > 0

    @property
    def retry_amplification(self) -> float:
        """Attempts per logical request (1.0 on the classic path)."""
        if self.resilience is None:
            return 1.0
        return self.resilience.retry_amplification

    @property
    def hedge_win_rate(self) -> float:
        if self.resilience is None:
            return 0.0
        return self.resilience.hedge_win_rate

    @property
    def wasted_attempts(self) -> int:
        if self.resilience is None:
            return 0
        return self.resilience.wasted_attempts

    @property
    def goodput_rps(self) -> float:
        """Completed requests per second of simulated time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.requests_completed / self.elapsed_s

    @property
    def achieved_rps(self) -> float:
        """Realized injection rate over the arrival window (sampling
        makes this differ from the configured ``offered_rps``)."""
        if self.duration_s <= 0:
            return 0.0
        return self.requests_injected / self.duration_s

    @property
    def saturated(self) -> bool:
        """Whether service failed to keep pace with realized arrivals.

        Every injected request completes eventually (the run drains),
        so saturation shows up as the drain outliving the arrival
        window: goodput well below the achieved injection rate.
        """
        return self.goodput_rps < 0.9 * self.achieved_rps

    @property
    def total_energy_j(self) -> float:
        return self.network_energy_j + self.compute_energy_j

    @property
    def energy_per_request_j(self) -> float:
        if self.requests_completed <= 0:
            return 0.0
        return self.total_energy_j / self.requests_completed

    @property
    def slo_violations(self) -> int:
        """Shed plus late completions, summed across tenants."""
        return sum(stats.slo_violations for stats in self.per_model)

    @property
    def slo_attainment(self) -> float:
        """Fraction of all submitted requests served within deadline."""
        submitted = sum(stats.submitted for stats in self.per_model)
        if submitted == 0:
            return 1.0
        return 1.0 - self.slo_violations / submitted

    @property
    def peak_channel_utilization(self) -> float:
        """Highest per-channel utilization over the run (bottleneck)."""
        if not self.channel_stats:
            return 0.0
        return max(stat.utilization for stat in self.channel_stats)

    @property
    def mean_channel_utilization(self) -> float:
        """Average utilization across every fabric channel."""
        if not self.channel_stats:
            return 0.0
        return sum(stat.utilization for stat in self.channel_stats) / len(
            self.channel_stats
        )

    def summary_row(self) -> str:
        """One formatted latency–throughput line."""
        return (
            f"{self.platform:<28}{self.policy:<12}"
            f"{self.offered_rps:>12.0f}"
            f"{self.goodput_rps:>12.0f}"
            f"{self.latency.p50_s * 1e6:>11.1f}"
            f"{self.latency.p95_s * 1e6:>11.1f}"
            f"{self.latency.p99_s * 1e6:>11.1f}"
            f"{self.peak_channel_utilization:>8.2f}"
            f"{'  SAT' if self.saturated else ''}"
        )


# ---------------------------------------------------------------------------
# Fleet-level results: one router, many nodes, one shared environment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeStats:
    """Serving outcome of one node of a cluster run.

    ``state`` is the node's final router-visible state (``up`` /
    ``draining`` / ``failed``); ``rerouted_away`` counts requests the
    router withdrew from this node's queue after a failure and
    re-enqueued elsewhere.
    """

    node: str
    state: str
    requests_completed: int
    requests_shed: int
    rerouted_away: int
    latency: LatencyProfile
    goodput_rps: float
    mean_compute_utilization: float

    @property
    def submitted(self) -> int:
        return self.requests_completed + self.requests_shed


@dataclass(frozen=True)
class ClusterResult:
    """Complete outcome of one fleet-serving simulation.

    Plain picklable data, like :class:`ServingResult`: cluster cells
    cache these through the same on-disk result cache, and the export
    layer serialises them to JSON/CSV.  ``latency``/``queue_delay`` and
    the request counters aggregate over every node; ``per_node`` splits
    them per replica, and ``load_imbalance`` (max/mean node compute
    utilization) is the headline routing-quality figure.
    """

    platform: str
    model: str
    controller: str
    router: str
    policy: str
    arrival_kind: str
    n_nodes: int
    offered_rps: float
    duration_s: float
    elapsed_s: float
    requests_injected: int
    requests_completed: int
    latency: LatencyProfile
    queue_delay: LatencyProfile
    per_node: tuple[NodeStats, ...]
    requests_shed: int = 0
    requests_rerouted: int = 0
    per_model: tuple[ModelServingStats, ...] = ()
    node_events: tuple = ()
    network_energy_j: float = 0.0
    compute_energy_j: float = 0.0
    windows: tuple[WindowStats, ...] = ()
    resilience: ResilienceStats | None = None
    availability: float = 1.0
    mttr_s: float = 0.0
    incidents: tuple[IncidentRecord, ...] = ()
    fidelity: FidelityReport | None = None
    telemetry: "object | None" = None
    """Frozen telemetry summary when armed; see
    :attr:`ServingResult.telemetry`."""

    @property
    def retry_amplification(self) -> float:
        """Attempts per logical request (1.0 on the classic path)."""
        if self.resilience is None:
            return 1.0
        return self.resilience.retry_amplification

    @property
    def hedge_win_rate(self) -> float:
        if self.resilience is None:
            return 0.0
        return self.resilience.hedge_win_rate

    @property
    def wasted_attempts(self) -> int:
        if self.resilience is None:
            return 0
        return self.resilience.wasted_attempts

    @property
    def goodput_rps(self) -> float:
        """Completed requests per second of simulated time, fleet-wide."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.requests_completed / self.elapsed_s

    @property
    def load_imbalance(self) -> float:
        """Max/mean node compute utilization (1.0 = perfectly even).

        0.0 when no node did any compute — an idle fleet is not
        imbalanced.
        """
        utilizations = [
            stats.mean_compute_utilization for stats in self.per_node
        ]
        mean = sum(utilizations) / len(utilizations) if utilizations else 0.0
        if mean <= 0.0:
            return 0.0
        return max(utilizations) / mean

    @property
    def total_energy_j(self) -> float:
        return self.network_energy_j + self.compute_energy_j

    @property
    def energy_per_request_j(self) -> float:
        if self.requests_completed <= 0:
            return 0.0
        return self.total_energy_j / self.requests_completed

    @property
    def slo_violations(self) -> int:
        return sum(stats.slo_violations for stats in self.per_model)

    @property
    def slo_attainment(self) -> float:
        submitted = sum(stats.submitted for stats in self.per_model)
        if submitted == 0:
            return 1.0
        return 1.0 - self.slo_violations / submitted

    def summary_row(self) -> str:
        """One formatted fleet latency–throughput line."""
        return (
            f"{self.platform:<28}{self.router:<18}{self.n_nodes:>6}"
            f"{self.offered_rps:>12.0f}"
            f"{self.goodput_rps:>12.0f}"
            f"{self.latency.p50_s * 1e6:>11.1f}"
            f"{self.latency.p99_s * 1e6:>11.1f}"
            f"{self.load_imbalance:>10.2f}"
            f"{self.requests_rerouted:>9}"
        )


def aggregate(records: list[RequestRecord]) -> tuple[LatencyProfile,
                                                     LatencyProfile, float]:
    """(latency profile, queue-delay profile, mean batch size).

    Shed requests are excluded — they never executed, so they have no
    meaningful latency sample or batch size.
    """
    served = [record for record in records if not record.dropped]
    latencies = [record.latency_s for record in served]
    delays = [record.queue_delay_s for record in served]
    mean_batch = (
        sum(record.batch_size for record in served) / len(served)
        if served else 0.0
    )
    return (
        LatencyProfile.from_samples(latencies),
        LatencyProfile.from_samples(delays),
        mean_batch,
    )
