"""Per-request latency records and serving-level aggregates.

The scheduler stamps a :class:`RequestRecord` for every completed
request (these travel on the shared
:class:`~repro.core.engine.ExecutionTrace`); a finished run aggregates
them into a :class:`ServingResult` — tail-latency percentiles, goodput
and fabric-utilization-under-load — which is what serving studies
cache, export and plot as latency–throughput curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError
from ..sim.resources import ChannelStat


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one completed request."""

    request_id: int
    model: str
    arrival_s: float
    dispatch_s: float
    finish_s: float
    batch_size: int = 1

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (what the user experiences)."""
        return self.finish_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        """Time spent queued/batched before execution started."""
        return self.dispatch_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Time spent executing on the fabric."""
        return self.finish_s - self.dispatch_s


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (deterministic, no
    interpolation); 0.0 for an empty sample set."""
    if not 0.0 <= q <= 100.0:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyProfile:
    """Latency distribution summary of one serving run."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyProfile":
        if not samples:
            return cls(count=0, mean_s=0.0, p50_s=0.0, p95_s=0.0,
                       p99_s=0.0, max_s=0.0)
        return cls(
            count=len(samples),
            mean_s=sum(samples) / len(samples),
            p50_s=percentile(samples, 50.0),
            p95_s=percentile(samples, 95.0),
            p99_s=percentile(samples, 99.0),
            max_s=max(samples),
        )


@dataclass(frozen=True)
class ServingResult:
    """Complete outcome of one request-serving simulation.

    Picklable plain data: serving studies cache these through the same
    on-disk :class:`~repro.experiments.runner.ResultCache` as inference
    results, and the export layer serialises them to JSON/CSV.
    """

    platform: str
    model: str
    controller: str
    policy: str
    arrival_kind: str
    offered_rps: float
    duration_s: float
    elapsed_s: float
    requests_injected: int
    requests_completed: int
    latency: LatencyProfile
    queue_delay: LatencyProfile
    mean_batch_size: float
    mean_inflight: float
    mean_compute_utilization: float
    reconfigurations: int
    network_energy_j: float
    compute_energy_j: float
    channel_stats: tuple[ChannelStat, ...] = ()

    @property
    def goodput_rps(self) -> float:
        """Completed requests per second of simulated time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.requests_completed / self.elapsed_s

    @property
    def achieved_rps(self) -> float:
        """Realized injection rate over the arrival window (sampling
        makes this differ from the configured ``offered_rps``)."""
        if self.duration_s <= 0:
            return 0.0
        return self.requests_injected / self.duration_s

    @property
    def saturated(self) -> bool:
        """Whether service failed to keep pace with realized arrivals.

        Every injected request completes eventually (the run drains),
        so saturation shows up as the drain outliving the arrival
        window: goodput well below the achieved injection rate.
        """
        return self.goodput_rps < 0.9 * self.achieved_rps

    @property
    def total_energy_j(self) -> float:
        return self.network_energy_j + self.compute_energy_j

    @property
    def energy_per_request_j(self) -> float:
        if self.requests_completed <= 0:
            return 0.0
        return self.total_energy_j / self.requests_completed

    @property
    def peak_channel_utilization(self) -> float:
        """Highest per-channel utilization over the run (bottleneck)."""
        if not self.channel_stats:
            return 0.0
        return max(stat.utilization for stat in self.channel_stats)

    @property
    def mean_channel_utilization(self) -> float:
        """Average utilization across every fabric channel."""
        if not self.channel_stats:
            return 0.0
        return sum(stat.utilization for stat in self.channel_stats) / len(
            self.channel_stats
        )

    def summary_row(self) -> str:
        """One formatted latency–throughput line."""
        return (
            f"{self.platform:<28}{self.policy:<12}"
            f"{self.offered_rps:>12.0f}"
            f"{self.goodput_rps:>12.0f}"
            f"{self.latency.p50_s * 1e6:>11.1f}"
            f"{self.latency.p95_s * 1e6:>11.1f}"
            f"{self.latency.p99_s * 1e6:>11.1f}"
            f"{self.peak_channel_utilization:>8.2f}"
            f"{'  SAT' if self.saturated else ''}"
        )


def aggregate(records: list[RequestRecord]) -> tuple[LatencyProfile,
                                                     LatencyProfile, float]:
    """(latency profile, queue-delay profile, mean batch size)."""
    latencies = [record.latency_s for record in records]
    delays = [record.queue_delay_s for record in records]
    mean_batch = (
        sum(record.batch_size for record in records) / len(records)
        if records else 0.0
    )
    return (
        LatencyProfile.from_samples(latencies),
        LatencyProfile.from_samples(delays),
        mean_batch,
    )
