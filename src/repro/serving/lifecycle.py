"""Fault-tolerant request lifecycle: timeouts, retries and hedging.

The classic serving path submits a request once and waits forever; a
request caught on a failing node is simply lost time.  This module
wraps any submission target — a single-node
:class:`~repro.serving.scheduler.RequestScheduler` or a fleet-level
:class:`~repro.cluster.router.ClusterRouter` — in a **lifecycle
process** per logical request:

* **Timeout**: each *attempt* is bounded by ``timeout_s``; on expiry
  the attempt is cancelled (if still queued — in-flight work cannot be
  recalled) and the request moves to the retry path.
* **Retry**: up to ``max_retries`` re-submissions with exponential
  backoff ``retry_backoff_s * 2**(n-1)`` plus deterministic seeded
  jitter, all under a fleet-wide **retry budget** (a fraction of
  logical requests started) so a retry storm cannot amplify an outage.
* **Hedge**: after ``hedge_delay_s`` with the primary attempt still
  pending, a duplicate is submitted to a *different* node;
  first-completion-wins and the loser is cancelled.

Every attempt is backdated to the logical request's original arrival
(``arrival_s``), so deadlines and user-visible latency keep running
from first submission — retries never reset the SLO clock.  The driver
synthesizes one logical :class:`~repro.serving.metrics.RequestRecord`
per request (what the client experienced) and a
:class:`~repro.serving.metrics.ResilienceStats` ledger of attempts,
retries, hedge wins and wasted work.
"""

from __future__ import annotations

import numpy as np
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError, SimulationError
from ..sim.traffic import ClosedLoopClients
from .metrics import RequestRecord, ResilienceStats
from .scheduler import DEFAULT_DRAIN_LIMIT_S, RequestHandle

_JITTER_STREAM = 613
"""Seed-tuple tag for the retry-jitter RNG (decorrelates it from the
arrival and traffic-mix streams)."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Runtime twin of the spec-level resilience knobs.

    Lives in the serving layer (the spec layer stays simulator-free,
    mirroring :class:`~repro.serving.scheduler.BatchPolicy` /
    ``SchedulerSpec``) and is plain picklable data, so cells can carry
    it through the process pool and fold it into cache keys.
    """

    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 50e-6
    retry_jitter: float = 0.0
    retry_budget: float | None = None
    hedge_delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"request timeout must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry backoff must be non-negative, got "
                f"{self.retry_backoff_s}"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigurationError(
                f"retry jitter must be in [0, 1], got {self.retry_jitter}"
            )
        if self.retry_budget is not None and self.retry_budget <= 0:
            raise ConfigurationError(
                f"retry budget must be positive, got {self.retry_budget}"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ConfigurationError(
                f"hedge delay must be positive, got {self.hedge_delay_s}"
            )

    def __bool__(self) -> bool:
        """True when any lifecycle mechanism is armed."""
        return (
            self.timeout_s is not None
            or self.max_retries > 0
            or self.hedge_delay_s is not None
        )

    @property
    def label(self) -> str:
        """Compact human-readable knob summary (tables, dry runs)."""
        parts = []
        if self.timeout_s is not None:
            parts.append(f"timeout={self.timeout_s * 1e6:.0f}us")
        if self.max_retries > 0:
            parts.append(f"retries={self.max_retries}")
            if self.retry_budget is not None:
                parts.append(f"budget={self.retry_budget:g}")
        if self.hedge_delay_s is not None:
            parts.append(f"hedge={self.hedge_delay_s * 1e6:.0f}us")
        return "+".join(parts) if parts else "passthrough"


class LifecycleDriver:
    """Runs a serving window with every request wrapped in a lifecycle.

    ``target`` is duck-typed: anything exposing ``submit(done=, model=,
    arrival_s=, ...)`` and ``cancel(handle)`` in one
    :class:`~repro.sim.core.Environment` works — the single-node
    scheduler and the cluster router both do.  The driver owns the
    injection processes and the drain barrier over *logical* requests
    (a request is open until it completes, is given up on, or exhausts
    its retries), replacing the target's own ``serve``.
    """

    def __init__(self, target, policy: ResiliencePolicy, seed: int = 0):
        self.target = target
        self.policy = policy
        self.env = target.env
        # The router routes across nodes (hedges need `exclude`); the
        # single-node scheduler has no node concept.
        self._is_router = hasattr(target, "routable_nodes")
        self.records: list[RequestRecord] = []
        self._rng = np.random.default_rng((seed, _JITTER_STREAM))
        self._counts = {
            "requests": 0, "attempts": 0, "retries": 0, "hedges": 0,
            "hedge_wins": 0, "timeouts": 0, "cancelled": 0,
            "gave_up": 0, "budget_denied": 0,
        }
        self._retry_causes: dict[str, int] = {}
        # Telemetry hook (attached post-construction by the study
        # layer): lifecycle decisions land as instants on a shared
        # ``lifecycle`` track; the attempts themselves are traced by the
        # target scheduler under their own request tracks.
        self.obs_trace = None
        self._next_logical_id = 0
        self._requests_open = 0
        self._injection_done = False
        self._drained = self.env.event()
        self._served = False

    # -- accounting ---------------------------------------------------------------

    @property
    def requests_injected(self) -> int:
        return self._counts["requests"]

    @property
    def requests_completed(self) -> int:
        return self._counts["requests"] - self._counts["gave_up"]

    @property
    def requests_gave_up(self) -> int:
        return self._counts["gave_up"]

    def stats(self) -> ResilienceStats:
        """The run's lifecycle ledger (stable field order)."""
        return ResilienceStats(
            retry_causes=tuple(sorted(self._retry_causes.items())),
            **self._counts,
        )

    # -- the lifecycle ------------------------------------------------------------

    def _submit(self, model: str | None, done, arrival_s: float,
                exclude: tuple[int, ...]) -> RequestHandle:
        if self._is_router:
            return self.target.submit(
                done=done, model=model, arrival_s=arrival_s,
                exclude=exclude,
            )
        return self.target.submit(
            done=done, model=model, arrival_s=arrival_s
        )

    def _budget_allows(self) -> bool:
        budget = self.policy.retry_budget
        if budget is None:
            return True
        spent = self._counts["retries"]
        return spent + 1 <= budget * self._counts["requests"]

    def _run_round(self, model: str | None, arrival_s: float):
        """One attempt plus its optional hedge, raced against the
        timeout; returns ``(winner, failure_cause, attempts)``."""
        env, policy = self.env, self.policy
        attempts: list[RequestHandle] = []

        def submit(exclude: tuple[int, ...] = ()) -> RequestHandle:
            done = env.event()
            handle = self._submit(model, done, arrival_s, exclude)
            attempts.append(handle)
            self._counts["attempts"] += 1
            return handle

        submit()
        timeout_ev = (
            env.timeout(policy.timeout_s)
            if policy.timeout_s is not None else None
        )
        hedge_ev = (
            env.timeout(policy.hedge_delay_s)
            if policy.hedge_delay_s is not None else None
        )
        # NB: a Timeout is `triggered` (scheduled) from creation in this
        # kernel; `processed` is what means "has fired".  Completion
        # events flip `triggered` only at succeed(), so it is the right
        # check for attempts.
        while True:
            waits = [h.done for h in attempts if not h.done.triggered]
            if hedge_ev is not None and not hedge_ev.processed:
                waits.append(hedge_ev)
            if timeout_ev is not None and not timeout_ev.processed:
                waits.append(timeout_ev)
            yield env.any_of(waits)
            winner = next(
                (h for h in attempts
                 if h.done.triggered and not h.dropped),
                None,
            )
            if winner is not None:
                return winner, None, attempts
            if timeout_ev is not None and timeout_ev.processed:
                return None, "timeout", attempts
            if all(h.done.triggered for h in attempts):
                # Every attempt was shed; a late hedge cannot win a
                # round that already failed.
                return None, "shed", attempts
            if hedge_ev is not None and hedge_ev.processed:
                hedge_ev = None  # one hedge per round
                exclude = tuple(
                    h.node for h in attempts if h.node is not None
                )
                submit(exclude=exclude)
                self._counts["hedges"] += 1
                if self.obs_trace is not None:
                    self.obs_trace.instant(
                        "lifecycle", "hedge",
                        args={"attempt": len(attempts)},
                    )

    def _cleanup(self, attempts: list[RequestHandle],
                 winner: RequestHandle | None) -> None:
        """Cancel every losing attempt still waiting in a queue."""
        for handle in attempts:
            if handle is winner or handle.done.triggered:
                continue
            if self.target.cancel(handle):
                self._counts["cancelled"] += 1

    def _request_proc(self, model: str | None = None, client_done=None):
        env, policy = self.env, self.policy
        arrival_s = env.now
        retries = 0
        first_handle: RequestHandle | None = None
        winner: RequestHandle | None = None
        while True:
            winner, cause, attempts = yield from self._run_round(
                model, arrival_s
            )
            if first_handle is None:
                first_handle = attempts[0]
            self._cleanup(attempts, winner)
            if winner is not None:
                if winner is not attempts[0]:
                    self._counts["hedge_wins"] += 1
                break
            if cause == "timeout":
                self._counts["timeouts"] += 1
                if self.obs_trace is not None:
                    self.obs_trace.instant("lifecycle", "timeout")
            if retries >= policy.max_retries:
                break
            if not self._budget_allows():
                self._counts["budget_denied"] += 1
                break
            retries += 1
            self._counts["retries"] += 1
            self._retry_causes[cause] = (
                self._retry_causes.get(cause, 0) + 1
            )
            if self.obs_trace is not None:
                self.obs_trace.instant(
                    "lifecycle", "retry",
                    args={"cause": cause, "retry": retries},
                )
            delay = policy.retry_backoff_s * (2.0 ** (retries - 1))
            if policy.retry_jitter > 0.0:
                delay += delay * policy.retry_jitter * float(
                    self._rng.random()
                )
            if delay > 0.0:
                yield env.timeout(delay)
        now = env.now
        logical_id = self._next_logical_id
        self._next_logical_id += 1
        if winner is not None:
            closing = winner.record
            record = RequestRecord(
                request_id=logical_id,
                model=winner.model,
                arrival_s=arrival_s,
                dispatch_s=(
                    closing.dispatch_s if closing is not None else now
                ),
                finish_s=now,
                batch_size=(
                    closing.batch_size if closing is not None else 1
                ),
                deadline_s=first_handle.deadline_s,
            )
        else:
            self._counts["gave_up"] += 1
            if self.obs_trace is not None:
                self.obs_trace.instant("lifecycle", "gave-up")
            record = RequestRecord(
                request_id=logical_id,
                model=first_handle.model,
                arrival_s=arrival_s,
                dispatch_s=now,
                finish_s=now,
                batch_size=0,
                deadline_s=first_handle.deadline_s,
                dropped=True,
            )
        self.records.append(record)
        if client_done is not None:
            client_done.succeed()
        self._requests_open -= 1
        self._check_drained()

    def _spawn(self, model: str | None = None, client_done=None):
        # Count synchronously at spawn so the drain barrier can never
        # observe injection-done with an uncounted request in flight.
        self._counts["requests"] += 1
        self._requests_open += 1
        return self.env.process(self._request_proc(model, client_done))

    # -- injection and the drain barrier ------------------------------------------

    def _check_drained(self) -> None:
        if (
            self._injection_done
            and self._requests_open == 0
            and not self._drained.triggered
        ):
            self._drained.succeed()

    def _next_model(self, models: Iterator[str] | None) -> str | None:
        return None if models is None else next(models)

    def _open_loop_injector(self, arrivals, duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in arrivals.gaps():
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            self._spawn(model=self._next_model(models))

    def _closed_loop_client(self, clients: ClosedLoopClients, index: int,
                            duration_s: float,
                            models: Iterator[str] | None = None):
        for gap in clients.think_gaps(index):
            yield self.env.timeout(gap)
            if self.env.now > duration_s:
                return
            client_done = self.env.event()
            self._spawn(model=self._next_model(models),
                        client_done=client_done)
            yield client_done

    def _watch_injection(self, injectors):
        yield self.env.all_of(injectors)
        self._injection_done = True
        self._check_drained()

    def serve(self, arrivals, duration_s: float,
              drain_limit_s: float = DEFAULT_DRAIN_LIMIT_S,
              models: Iterator[str] | None = None) -> None:
        """Run the full resilient serving window: inject, race, drain.

        The same contract as
        :meth:`~repro.serving.scheduler.RequestScheduler.serve`, with
        the drain barrier lifted to logical requests: the run ends when
        every injected request completed or was given up on — however
        many attempts that took.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"serving duration must be positive, got {duration_s}"
            )
        if self._served:
            raise SimulationError(
                "LifecycleDriver.serve() is single-shot; build a new "
                "driver for another serving window"
            )
        self._served = True
        if isinstance(arrivals, ClosedLoopClients):
            injectors = [
                self.env.process(
                    self._closed_loop_client(arrivals, index, duration_s,
                                             models)
                )
                for index in range(arrivals.n_clients)
            ]
        elif hasattr(arrivals, "gaps"):
            injectors = [
                self.env.process(
                    self._open_loop_injector(arrivals, duration_s, models)
                )
            ]
        else:
            raise ConfigurationError(
                f"unsupported arrival process {arrivals!r}"
            )
        self.env.process(self._watch_injection(injectors))
        try:
            self.env.run_until_event(
                self._drained, limit=duration_s + drain_limit_s
            )
        except SimulationError as error:
            raise SimulationError(
                f"resilient serving run did not drain: "
                f"{self.requests_completed}/{self.requests_injected} "
                f"logical requests closed within "
                f"{duration_s + drain_limit_s} s — {error}"
            ) from error
