"""Request-serving layer: schedulers, metrics, arrival-driven load.

Turns the one-shot simulator into a request-serving model: arrival
processes feed a :class:`~repro.serving.scheduler.RequestScheduler`
that dispatches batched :class:`~repro.core.engine.RequestExecution`
instances over one shared fabric, and
:mod:`repro.serving.metrics` aggregates the per-request records into
latency/goodput/utilization results — per tenant model when several
share the fabric.
"""

from .lifecycle import LifecycleDriver, ResiliencePolicy
from .metrics import (
    ClusterResult,
    IncidentRecord,
    LatencyProfile,
    ModelServingStats,
    NodeStats,
    RequestRecord,
    ResilienceStats,
    ServingResult,
    WindowStats,
    aggregate,
    mean_time_to_repair,
    per_model_stats,
    percentile,
    windowed_stats,
)
from .scheduler import BatchPolicy, RequestHandle, RequestScheduler

__all__ = [
    "BatchPolicy",
    "ClusterResult",
    "IncidentRecord",
    "LatencyProfile",
    "LifecycleDriver",
    "ModelServingStats",
    "NodeStats",
    "RequestHandle",
    "RequestRecord",
    "RequestScheduler",
    "ResiliencePolicy",
    "ResilienceStats",
    "ServingResult",
    "WindowStats",
    "aggregate",
    "mean_time_to_repair",
    "per_model_stats",
    "percentile",
    "windowed_stats",
]
