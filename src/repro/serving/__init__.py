"""Request-serving layer: schedulers, metrics, arrival-driven load.

Turns the one-shot simulator into a request-serving model: arrival
processes feed a :class:`~repro.serving.scheduler.RequestScheduler`
that dispatches batched :class:`~repro.core.engine.RequestExecution`
instances over one shared fabric, and
:mod:`repro.serving.metrics` aggregates the per-request records into
latency/goodput/utilization results.
"""

from .metrics import (
    LatencyProfile,
    RequestRecord,
    ServingResult,
    aggregate,
    percentile,
)
from .scheduler import BatchPolicy, RequestScheduler

__all__ = [
    "BatchPolicy",
    "LatencyProfile",
    "RequestRecord",
    "RequestScheduler",
    "ServingResult",
    "aggregate",
    "percentile",
]
