"""Inference workload extraction.

Converts a :class:`~repro.dnn.model.Model` into the per-layer records the
accelerator model consumes: MAC counts, dot-product vector shapes, and
the traffic each layer generates on the interposer (weights and input
activations read from the memory chiplet, output activations written
back).  BN / activation / pooling layers are folded into the preceding
compute layer, the standard deployment transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..errors import ShapeError
from .layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    MultiHeadAttention,
    TransformerMLP,
)
from .model import Model
from .quantization import QuantizationConfig


@dataclass(frozen=True)
class LayerWorkload:
    """Everything the accelerator needs to know about one compute layer.

    Attributes
    ----------
    name / kind:
        Identification ("Conv2D", "DepthwiseConv2D", "Dense").
    kernel_size:
        Spatial kernel edge for conv layers (3 for 3x3); 1 for dense.
    dot_length:
        Length of the dot products the layer decomposes into
        (``k*k*C_in`` for convs, input features for dense).
    n_dots:
        Number of such dot products per inference.
    macs:
        Total multiply-accumulates (= ``dot_length * n_dots``).
    weight_bits / input_bits / output_bits:
        Traffic volumes for one inference at the layer's precision.
    """

    index: int
    name: str
    kind: str
    kernel_size: int
    dot_length: int
    n_dots: int
    macs: int
    weight_bits: int
    input_bits: int
    output_bits: int

    @property
    def total_traffic_bits(self) -> int:
        """All interposer traffic this layer generates (bits)."""
        return self.weight_bits + self.input_bits + self.output_bits

    @property
    def is_dense(self) -> bool:
        return self.kind == "Dense"


@dataclass(frozen=True)
class InferenceWorkload:
    """Ordered compute-layer workloads for one model inference.

    ``kv_bits_per_token`` and ``context_tokens`` are populated for
    transformer models only: the KV-cache bits one decoded token
    appends (2 x d_model x activation bits summed over attention
    layers) and the sequence length the model was built at (the
    representative KV span decode-step costs assume).  Both stay 0 for
    CNNs, which keeps every existing workload byte-identical.
    """

    model_name: str
    layers: tuple[LayerWorkload, ...]
    kv_bits_per_token: int = 0
    context_tokens: int = 0

    def __iter__(self) -> Iterator[LayerWorkload]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_traffic_bits(self) -> int:
        return sum(layer.total_traffic_bits for layer in self.layers)

    @property
    def total_weight_bits(self) -> int:
        return sum(layer.weight_bits for layer in self.layers)


def extract_workload(
    model: Model,
    quantization: QuantizationConfig | None = None,
) -> InferenceWorkload:
    """Build the inference workload of ``model`` at a given precision."""
    quant = quantization or QuantizationConfig()
    records = []
    kv_bits_per_token = 0
    context_tokens = 0
    for position, node in enumerate(model.compute_nodes()):
        layer = node.layer
        input_shape = node.parents[0].output_shape
        output_shape = node.output_shape
        weight_bits_per_param = quant.weight_bits_for(position, node.name)
        act_bits = quant.activation_bits

        input_elements = 1
        for dim in input_shape:
            input_elements *= dim
        output_elements = 1
        for dim in output_shape:
            output_elements *= dim

        params = layer.param_count([input_shape])
        macs = layer.mac_count([input_shape])

        if isinstance(layer, Conv2D):
            kernel = layer.kernel_size[0]
            dot_length = (
                kernel * layer.kernel_size[1] * (input_shape[2] // layer.groups)
            )
            n_dots = output_elements
        elif isinstance(layer, DepthwiseConv2D):
            kernel = layer.kernel_size[0]
            dot_length = kernel * layer.kernel_size[1]
            n_dots = output_elements
        elif isinstance(layer, Dense):
            kernel = 1
            dot_length = input_shape[0]
            n_dots = layer.units
        elif isinstance(layer, (MultiHeadAttention, TransformerMLP)):
            # Sequence layers decompose into d_model-length dot
            # products (projections exactly; attention scores to first
            # order), the same shape the dense tiler packs.
            kernel = 1
            dot_length = input_shape[-1]
            n_dots = macs // dot_length
            if isinstance(layer, MultiHeadAttention):
                kv_bits_per_token += 2 * input_shape[-1] * act_bits
                context_tokens = max(context_tokens, input_shape[0])
        else:  # pragma: no cover - compute_nodes() filters to these kinds
            raise ShapeError(f"unexpected compute layer {layer!r}")

        records.append(
            LayerWorkload(
                index=position,
                name=node.name,
                kind=type(layer).__name__,
                kernel_size=kernel,
                dot_length=dot_length,
                n_dots=n_dots,
                macs=macs,
                weight_bits=params * weight_bits_per_param,
                input_bits=input_elements * act_bits,
                output_bits=output_elements * act_bits,
            )
        )
    return InferenceWorkload(
        model_name=model.name,
        layers=tuple(records),
        kv_bits_per_token=kv_bits_per_token,
        context_tokens=context_tokens,
    )


def decode_workload(workload: InferenceWorkload) -> InferenceWorkload:
    """Per-token decode-step workload of a transformer model.

    Divides every layer's dot count and activation traffic by the
    model's context length: one decode step runs each layer for a
    single new token against the full KV span the model was built at,
    so compute and activation traffic scale by ``1/T`` while weight
    traffic is unchanged (the full matrices stream through the MACs for
    any token count).
    """
    tokens = workload.context_tokens
    if tokens <= 0:
        raise ShapeError(
            f"model {workload.model_name!r} has no attention layers; "
            "decode steps need a transformer workload"
        )
    layers = []
    for layer in workload.layers:
        n_dots = max(1, layer.n_dots // tokens)
        layers.append(replace(
            layer,
            n_dots=n_dots,
            macs=layer.dot_length * n_dots,
            input_bits=max(1, layer.input_bits // tokens),
            output_bits=max(1, layer.output_bits // tokens),
        ))
    return InferenceWorkload(
        model_name=workload.model_name,
        layers=tuple(layers),
        kv_bits_per_token=workload.kv_bits_per_token,
        context_tokens=workload.context_tokens,
    )


def widened_workload(workload: InferenceWorkload,
                     width: int) -> InferenceWorkload:
    """Scale a per-token decode workload to a decode batch of ``width``.

    Dot counts and activation traffic scale linearly with the number of
    co-scheduled sequences; weight traffic does not (one weight stream
    feeds the whole batch).  The scheduler remaps the scaled workload
    so chiplet allocation tracks the running batch width.
    """
    if width < 1:
        raise ShapeError(f"decode width must be >= 1, got {width}")
    if width == 1:
        return workload
    layers = []
    for layer in workload.layers:
        layers.append(replace(
            layer,
            n_dots=layer.n_dots * width,
            macs=layer.macs * width,
            input_bits=layer.input_bits * width,
            output_bits=layer.output_bits * width,
        ))
    return InferenceWorkload(
        model_name=workload.model_name,
        layers=tuple(layers),
        kv_bits_per_token=workload.kv_bits_per_token,
        context_tokens=workload.context_tokens,
    )
