"""Model graphs: DAGs of layer descriptions with full accounting.

A :class:`Model` is built functionally — apply layers to nodes — and then
answers the questions the accelerator model needs: per-layer shapes,
parameter counts, MAC counts, conv/FC layer counts (Table 2), and ordered
compute-layer records for mapping onto chiplets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ShapeError
from .layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Input,
    Layer,
    LayerStats,
    MultiHeadAttention,
    Shape,
    TransformerMLP,
)

COMPUTE_LAYER_KINDS = (
    Conv2D, DepthwiseConv2D, Dense, MultiHeadAttention, TransformerMLP
)
"""MAC-bearing layer classes the mapper places onto chiplets."""


@dataclass(frozen=True)
class Node:
    """One placed layer inside a model graph."""

    index: int
    layer: Layer
    parents: tuple["Node", ...]
    output_shape: Shape

    @property
    def name(self) -> str:
        return self.layer.name


@dataclass
class Model:
    """A DAG of layers with shape inference performed at build time.

    Example
    -------
    >>> model = Model("tiny", input_shape=(8, 8, 3))
    >>> x = model.apply(Conv2D(4, 3, name="c1"), model.input)
    >>> model.output_shape
    (8, 8, 4)
    """

    name: str
    input_shape: Shape
    nodes: list[Node] = field(default_factory=list, init=False)
    _names: set[str] = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        input_layer = Input(tuple(self.input_shape))
        node = Node(0, input_layer, (), input_layer.infer_shape(()))
        self.nodes.append(node)
        self._names.add(input_layer.name)

    @property
    def input(self) -> Node:
        """The graph's input node."""
        return self.nodes[0]

    @property
    def output(self) -> Node:
        """The most recently added node (the model output by convention)."""
        return self.nodes[-1]

    @property
    def output_shape(self) -> Shape:
        return self.output.output_shape

    def apply(self, layer: Layer, *parents: Node) -> Node:
        """Place ``layer`` on top of ``parents`` and return the new node."""
        if not parents:
            raise ShapeError(
                f"layer {layer.name!r} must be applied to at least one node"
            )
        if layer.name in self._names:
            raise ShapeError(
                f"duplicate layer name {layer.name!r} in model {self.name!r}"
            )
        input_shapes = [parent.output_shape for parent in parents]
        output_shape = layer.infer_shape(input_shapes)
        node = Node(len(self.nodes), layer, tuple(parents), output_shape)
        self.nodes.append(node)
        self._names.add(layer.name)
        return node

    # -- accounting ------------------------------------------------------------

    def layer_stats(self) -> list[LayerStats]:
        """Per-layer accounting records in topological (insertion) order."""
        records = []
        for node in self.nodes[1:]:
            input_shapes = tuple(p.output_shape for p in node.parents)
            records.append(
                LayerStats(
                    name=node.name,
                    kind=type(node.layer).__name__,
                    input_shapes=input_shapes,
                    output_shape=node.output_shape,
                    params=node.layer.param_count(input_shapes),
                    macs=node.layer.mac_count(input_shapes),
                )
            )
        return records

    @property
    def total_params(self) -> int:
        """Total parameter count (trainable + non-trainable), Keras-style."""
        return sum(record.params for record in self.layer_stats())

    @property
    def total_macs(self) -> int:
        """Total MACs for one inference at batch size 1."""
        return sum(record.macs for record in self.layer_stats())

    @property
    def conv_layer_count(self) -> int:
        """Number of CONV layers as Table 2 counts them (incl. depthwise)."""
        return sum(
            1
            for node in self.nodes
            if isinstance(node.layer, (Conv2D, DepthwiseConv2D))
        )

    @property
    def fc_layer_count(self) -> int:
        """Number of FC layers as Table 2 counts them."""
        return sum(1 for node in self.nodes if isinstance(node.layer, Dense))

    @property
    def attention_layer_count(self) -> int:
        """Number of multi-head attention layers (0 for CNNs)."""
        return sum(
            1 for node in self.nodes
            if isinstance(node.layer, MultiHeadAttention)
        )

    def compute_nodes(self) -> list[Node]:
        """Nodes of MAC-bearing layers (conv / depthwise / dense /
        attention / transformer-MLP) in order."""
        return [
            node
            for node in self.nodes
            if isinstance(node.layer, COMPUTE_LAYER_KINDS)
        ]

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, shape, params, MACs)."""
        lines = [
            f"Model: {self.name}  (input {self.input_shape})",
            f"{'layer':<28}{'kind':<22}{'output':<18}{'params':>12}{'MACs':>14}",
            "-" * 94,
        ]
        for record in self.layer_stats():
            lines.append(
                f"{record.name:<28}{record.kind:<22}"
                f"{str(record.output_shape):<18}"
                f"{record.params:>12,}{record.macs:>14,}"
            )
        lines.append("-" * 94)
        lines.append(
            f"{'total':<68}{self.total_params:>12,}{self.total_macs:>14,}"
        )
        return "\n".join(lines)
