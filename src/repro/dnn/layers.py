"""DNN layer algebra: shape inference, parameter and MAC accounting.

Layers are *descriptions*, not executable kernels: performance modelling
of inference needs layer shapes, parameter counts, MAC counts and
activation volumes — never the weight values themselves.  Shape and
parameter semantics follow Keras (channels-last, ``same``/``valid``
padding), because the paper's Table 2 parameter counts are the Keras
application-model values.

Every layer implements three queries against explicit input shapes:

* :meth:`Layer.infer_shape` — output tensor shape,
* :meth:`Layer.param_count` — trainable + non-trainable parameters,
* :meth:`Layer.mac_count` — multiply-accumulate operations for one
  inference at batch size 1.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ShapeError

Shape = tuple[int, ...]
"""Tensor shape without the batch dimension; conv features are (H, W, C)."""


def _require_hwc(shape: Shape, layer_name: str) -> tuple[int, int, int]:
    """Validate and unpack an (H, W, C) feature-map shape."""
    if len(shape) != 3:
        raise ShapeError(
            f"layer {layer_name!r} expects an (H, W, C) input, got {shape}"
        )
    height, width, channels = shape
    if height < 1 or width < 1 or channels < 1:
        raise ShapeError(
            f"layer {layer_name!r} got non-positive input dims {shape}"
        )
    return height, width, channels


def _conv_output_length(input_length: int, kernel: int, stride: int,
                        padding: str) -> int:
    """Spatial output length under Keras padding semantics."""
    if padding == "same":
        return math.ceil(input_length / stride)
    if padding == "valid":
        if input_length < kernel:
            raise ShapeError(
                f"valid conv kernel {kernel} exceeds input length {input_length}"
            )
        return (input_length - kernel) // stride + 1
    raise ShapeError(f"unknown padding mode {padding!r}")


class Layer(abc.ABC):
    """Base class for all layer descriptions."""

    def __init__(self, name: str | None = None):
        self.name = name if name is not None else type(self).__name__.lower()

    @abc.abstractmethod
    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Output shape for the given input shapes."""

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        """Number of parameters (default: parameter-free layer)."""
        return 0

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        """Multiply-accumulates for one inference (default: none)."""
        return 0

    @property
    def is_conv(self) -> bool:
        """Whether Table 2 would count this layer as a CONV layer."""
        return False

    @property
    def is_fc(self) -> bool:
        """Whether Table 2 would count this layer as an FC layer."""
        return False

    def _single_input(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise ShapeError(
                f"layer {self.name!r} expects exactly one input, "
                f"got {len(input_shapes)}"
            )
        return input_shapes[0]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Input(Layer):
    """Pseudo-layer pinning the model input shape."""

    def __init__(self, shape: Shape, name: str = "input"):
        super().__init__(name)
        self.shape = tuple(shape)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if input_shapes:
            raise ShapeError("Input layer takes no inputs")
        return self.shape


class Conv2D(Layer):
    """Standard 2-D convolution (optionally grouped)."""

    def __init__(
        self,
        filters: int,
        kernel_size: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
        use_bias: bool = True,
        groups: int = 1,
        name: str = "conv",
    ):
        super().__init__(name)
        self.filters = filters
        self.kernel_size = (
            (kernel_size, kernel_size)
            if isinstance(kernel_size, int)
            else tuple(kernel_size)
        )
        self.strides = (
            (strides, strides) if isinstance(strides, int) else tuple(strides)
        )
        self.padding = padding
        self.use_bias = use_bias
        self.groups = groups
        if filters < 1:
            raise ShapeError(f"conv {name!r} needs >= 1 filter")
        if groups < 1 or filters % groups:
            raise ShapeError(f"conv {name!r}: filters must divide into groups")

    @property
    def is_conv(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        height, width, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        if channels % self.groups:
            raise ShapeError(
                f"conv {self.name!r}: input channels {channels} not divisible "
                f"by groups {self.groups}"
            )
        out_h = _conv_output_length(
            height, self.kernel_size[0], self.strides[0], self.padding
        )
        out_w = _conv_output_length(
            width, self.kernel_size[1], self.strides[1], self.padding
        )
        return (out_h, out_w, self.filters)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        _, _, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        kernel_params = (
            self.kernel_size[0]
            * self.kernel_size[1]
            * (channels // self.groups)
            * self.filters
        )
        bias_params = self.filters if self.use_bias else 0
        return kernel_params + bias_params

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        _, _, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        out_h, out_w, out_c = self.infer_shape(input_shapes)
        per_output = (
            self.kernel_size[0] * self.kernel_size[1] * (channels // self.groups)
        )
        return out_h * out_w * out_c * per_output


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (MobileNet-style)."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        strides: int | tuple[int, int] = 1,
        padding: str = "same",
        depth_multiplier: int = 1,
        use_bias: bool = True,
        name: str = "dwconv",
    ):
        super().__init__(name)
        self.kernel_size = (
            (kernel_size, kernel_size)
            if isinstance(kernel_size, int)
            else tuple(kernel_size)
        )
        self.strides = (
            (strides, strides) if isinstance(strides, int) else tuple(strides)
        )
        self.padding = padding
        self.depth_multiplier = depth_multiplier
        self.use_bias = use_bias

    @property
    def is_conv(self) -> bool:
        return True

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        height, width, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        out_h = _conv_output_length(
            height, self.kernel_size[0], self.strides[0], self.padding
        )
        out_w = _conv_output_length(
            width, self.kernel_size[1], self.strides[1], self.padding
        )
        return (out_h, out_w, channels * self.depth_multiplier)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        _, _, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        kernel_params = (
            self.kernel_size[0]
            * self.kernel_size[1]
            * channels
            * self.depth_multiplier
        )
        bias_params = (
            channels * self.depth_multiplier if self.use_bias else 0
        )
        return kernel_params + bias_params

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        out_h, out_w, out_c = self.infer_shape(input_shapes)
        return out_h * out_w * out_c * self.kernel_size[0] * self.kernel_size[1]


class Dense(Layer):
    """Fully connected layer over a flat input."""

    def __init__(self, units: int, use_bias: bool = True, name: str = "dense"):
        super().__init__(name)
        self.units = units
        self.use_bias = use_bias
        if units < 1:
            raise ShapeError(f"dense {name!r} needs >= 1 unit")

    @property
    def is_fc(self) -> bool:
        return True

    def _input_features(self, input_shapes: Sequence[Shape]) -> int:
        shape = self._single_input(input_shapes)
        if len(shape) != 1:
            raise ShapeError(
                f"dense {self.name!r} expects a flat input, got {shape}; "
                "insert Flatten or GlobalAveragePooling first"
            )
        return shape[0]

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        self._input_features(input_shapes)
        return (self.units,)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        features = self._input_features(input_shapes)
        return features * self.units + (self.units if self.use_bias else 0)

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        return self._input_features(input_shapes) * self.units


class BatchNormalization(Layer):
    """Batch normalisation; 4 parameters per channel (Keras total count)."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self._single_input(input_shapes)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        return 4 * self._single_input(input_shapes)[-1]


def _require_td(shape: Shape, layer_name: str) -> tuple[int, int]:
    """Validate and unpack a (tokens, d_model) sequence-feature shape."""
    if len(shape) != 2:
        raise ShapeError(
            f"layer {layer_name!r} expects a (tokens, features) input, "
            f"got {shape}"
        )
    tokens, features = shape
    if tokens < 1 or features < 1:
        raise ShapeError(
            f"layer {layer_name!r} got non-positive input dims {shape}"
        )
    return tokens, features


class LayerNormalization(Layer):
    """Layer normalisation; 2 parameters per feature (gamma + beta)."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self._single_input(input_shapes)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        return 2 * self._single_input(input_shapes)[-1]


class MultiHeadAttention(Layer):
    """Multi-head self-attention over a (tokens, d_model) sequence.

    Parameter count matches the fused Q/K/V/output projections of a
    standard transformer block (``4 * d_model**2`` weights plus four
    bias vectors).  The MAC count at sequence length ``T`` covers the
    four projections (``4 * T * d_model**2``) plus the score and
    context matmuls (``2 * T**2 * d_model`` across all heads) — the
    quadratic term that makes the KV span matter for decode cost.
    """

    def __init__(self, num_heads: int, use_bias: bool = True,
                 name: str = "mha"):
        super().__init__(name)
        if num_heads < 1:
            raise ShapeError(f"attention {name!r} needs >= 1 head")
        self.num_heads = num_heads
        self.use_bias = use_bias

    def _features(self, input_shapes: Sequence[Shape]) -> tuple[int, int]:
        tokens, features = _require_td(
            self._single_input(input_shapes), self.name
        )
        if features % self.num_heads:
            raise ShapeError(
                f"attention {self.name!r}: d_model {features} not divisible "
                f"by {self.num_heads} heads"
            )
        return tokens, features

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        tokens, features = self._features(input_shapes)
        return (tokens, features)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        _, features = self._features(input_shapes)
        bias = 4 * features if self.use_bias else 0
        return 4 * features * features + bias

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        tokens, features = self._features(input_shapes)
        projections = 4 * tokens * features * features
        attention = 2 * tokens * tokens * features
        return projections + attention


class TransformerMLP(Layer):
    """Position-wise feed-forward block: d_model -> d_ff -> d_model."""

    def __init__(self, hidden_units: int, use_bias: bool = True,
                 name: str = "mlp"):
        super().__init__(name)
        if hidden_units < 1:
            raise ShapeError(f"mlp {name!r} needs >= 1 hidden unit")
        self.hidden_units = hidden_units
        self.use_bias = use_bias

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        tokens, features = _require_td(
            self._single_input(input_shapes), self.name
        )
        return (tokens, features)

    def param_count(self, input_shapes: Sequence[Shape]) -> int:
        _, features = _require_td(
            self._single_input(input_shapes), self.name
        )
        weights = 2 * features * self.hidden_units
        bias = (self.hidden_units + features) if self.use_bias else 0
        return weights + bias

    def mac_count(self, input_shapes: Sequence[Shape]) -> int:
        tokens, features = _require_td(
            self._single_input(input_shapes), self.name
        )
        return 2 * tokens * features * self.hidden_units


class Activation(Layer):
    """Elementwise nonlinearity (ReLU, ReLU6, tanh, softmax...)."""

    def __init__(self, function: str = "relu", name: str = "act"):
        super().__init__(name)
        self.function = function

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self._single_input(input_shapes)


class ZeroPadding2D(Layer):
    """Explicit spatial zero padding (Keras-style asymmetric supported)."""

    def __init__(
        self,
        padding: int | tuple[tuple[int, int], tuple[int, int]],
        name: str = "pad",
    ):
        super().__init__(name)
        if isinstance(padding, int):
            self.padding = ((padding, padding), (padding, padding))
        else:
            self.padding = tuple(tuple(pair) for pair in padding)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        height, width, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        (top, bottom), (left, right) = self.padding
        return (height + top + bottom, width + left + right, channels)


class _Pool2D(Layer):
    """Shared spatial pooling implementation."""

    def __init__(
        self,
        pool_size: int | tuple[int, int],
        strides: int | tuple[int, int] | None = None,
        padding: str = "valid",
        name: str = "pool",
    ):
        super().__init__(name)
        self.pool_size = (
            (pool_size, pool_size)
            if isinstance(pool_size, int)
            else tuple(pool_size)
        )
        if strides is None:
            self.strides = self.pool_size
        else:
            self.strides = (
                (strides, strides) if isinstance(strides, int) else tuple(strides)
            )
        self.padding = padding

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        height, width, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        out_h = _conv_output_length(
            height, self.pool_size[0], self.strides[0], self.padding
        )
        out_w = _conv_output_length(
            width, self.pool_size[1], self.strides[1], self.padding
        )
        return (out_h, out_w, channels)


class MaxPooling2D(_Pool2D):
    """Max pooling."""


class AveragePooling2D(_Pool2D):
    """Average pooling."""


class GlobalAveragePooling2D(Layer):
    """Spatial global average pooling to a flat (C,) vector."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        _, _, channels = _require_hwc(
            self._single_input(input_shapes), self.name
        )
        return (channels,)


class Flatten(Layer):
    """Flatten any tensor to a (N,) vector."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._single_input(input_shapes)
        total = 1
        for dim in shape:
            total *= dim
        return (total,)


class Add(Layer):
    """Elementwise sum of identically shaped tensors (residual join)."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ShapeError(f"Add {self.name!r} needs >= 2 inputs")
        first = input_shapes[0]
        for other in input_shapes[1:]:
            if tuple(other) != tuple(first):
                raise ShapeError(
                    f"Add {self.name!r}: mismatched shapes {first} vs {other}"
                )
        return tuple(first)


class Concatenate(Layer):
    """Channel-axis concatenation (DenseNet join)."""

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ShapeError(f"Concatenate {self.name!r} needs >= 2 inputs")
        first = input_shapes[0]
        if len(first) != 3:
            raise ShapeError(
                f"Concatenate {self.name!r} expects (H, W, C) inputs"
            )
        total_channels = 0
        for shape in input_shapes:
            if shape[:2] != first[:2]:
                raise ShapeError(
                    f"Concatenate {self.name!r}: spatial mismatch "
                    f"{first} vs {shape}"
                )
            total_channels += shape[2]
        return (first[0], first[1], total_channels)


@dataclass(frozen=True)
class LayerStats:
    """Accounting record for one layer instance inside a model."""

    name: str
    kind: str
    input_shapes: tuple[Shape, ...]
    output_shape: Shape
    params: int
    macs: int

    @property
    def output_elements(self) -> int:
        """Number of scalar elements in the output tensor."""
        total = 1
        for dim in self.output_shape:
            total *= dim
        return total

    @property
    def input_elements(self) -> int:
        """Total scalar elements across all input tensors."""
        total = 0
        for shape in self.input_shapes:
            count = 1
            for dim in shape:
                count *= dim
            total += count
        return total
