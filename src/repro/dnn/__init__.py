"""DNN workload substrate: layer algebra, model graphs, the Table 2 zoo,
quantisation, and inference-workload extraction."""

from .layers import (
    Activation,
    Add,
    AveragePooling2D,
    BatchNormalization,
    Concatenate,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAveragePooling2D,
    Input,
    Layer,
    LayerStats,
    MaxPooling2D,
    Shape,
    ZeroPadding2D,
)
from .model import Model, Node
from .quantization import QuantizationConfig
from .workload import InferenceWorkload, LayerWorkload, extract_workload

__all__ = [
    "Activation",
    "Add",
    "AveragePooling2D",
    "BatchNormalization",
    "Concatenate",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Flatten",
    "GlobalAveragePooling2D",
    "Input",
    "Layer",
    "LayerStats",
    "MaxPooling2D",
    "Shape",
    "ZeroPadding2D",
    "Model",
    "Node",
    "QuantizationConfig",
    "InferenceWorkload",
    "LayerWorkload",
    "extract_workload",
]
