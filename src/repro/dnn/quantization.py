"""Quantisation configuration.

The CrossLight family quantises parameters for the electro-optic
interface; follow-up work [22] shows per-layer *heterogeneous*
quantisation saves interface power.  The default here is uniform 8-bit
weights and activations; heterogeneous schedules assign different weight
bit-widths per layer (by index or by name pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

DEFAULT_WEIGHT_BITS = 8
DEFAULT_ACTIVATION_BITS = 8


@dataclass(frozen=True)
class QuantizationConfig:
    """Per-model precision assignment.

    Parameters
    ----------
    weight_bits:
        Default weight precision (bits per parameter).
    activation_bits:
        Activation precision (uniform; the interposer carries OOK-framed
        activation words of this width).
    per_layer_weight_bits:
        Optional overrides: mapping from compute-layer index to bits.
    """

    weight_bits: int = DEFAULT_WEIGHT_BITS
    activation_bits: int = DEFAULT_ACTIVATION_BITS
    per_layer_weight_bits: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 1 <= self.weight_bits <= 32:
            raise ConfigurationError(
                f"weight bits must be in [1, 32], got {self.weight_bits}"
            )
        if not 1 <= self.activation_bits <= 32:
            raise ConfigurationError(
                f"activation bits must be in [1, 32], got {self.activation_bits}"
            )
        for index, bits in self.per_layer_weight_bits.items():
            if not 1 <= bits <= 32:
                raise ConfigurationError(
                    f"layer {index} weight bits out of range: {bits}"
                )

    def weight_bits_for(self, layer_index: int, layer_name: str = "") -> int:
        """Weight precision for a given compute-layer index."""
        return self.per_layer_weight_bits.get(layer_index, self.weight_bits)

    @classmethod
    def binary(cls) -> "QuantizationConfig":
        """Fully binarised config (LightBulb [24] style)."""
        return cls(weight_bits=1, activation_bits=1)

    @classmethod
    def heterogeneous_front_heavy(cls, n_layers: int,
                                  front_bits: int = 8,
                                  back_bits: int = 4) -> "QuantizationConfig":
        """A simple heterogeneous schedule: early layers keep high
        precision, later layers drop to ``back_bits`` (the pattern [22]
        reports as accuracy-safe)."""
        split = max(1, n_layers // 2)
        overrides = {index: back_bits for index in range(split, n_layers)}
        return cls(weight_bits=front_bits,
                   per_layer_weight_bits=overrides)
