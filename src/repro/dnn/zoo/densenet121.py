"""DenseNet-121 model description (Keras `keras.applications.DenseNet121`).

120 CONV + 1 FC layers, 8,062,504 parameters (Table 2): a 7x7 stem, four
dense blocks of (6, 12, 24, 16) layers with growth rate 32, and 0.5x
compression transitions.  All convolutions are bias-free; BN carries the
affine parameters.
"""

from __future__ import annotations

from ..layers import (
    Activation,
    AveragePooling2D,
    BatchNormalization,
    Concatenate,
    Conv2D,
    Dense,
    GlobalAveragePooling2D,
    MaxPooling2D,
    ZeroPadding2D,
)
from ..model import Model, Node

GROWTH_RATE = 32
BLOCK_SIZES = (6, 12, 24, 16)


def _dense_layer(model: Model, x: Node, tag: str) -> Node:
    """BN-ReLU-Conv1x1(4k)-BN-ReLU-Conv3x3(k), concatenated to the input."""
    y = model.apply(BatchNormalization(name=f"{tag}_bn1"), x)
    y = model.apply(Activation("relu", name=f"{tag}_relu1"), y)
    y = model.apply(
        Conv2D(4 * GROWTH_RATE, 1, use_bias=False, padding="valid",
               name=f"{tag}_conv1"),
        y,
    )
    y = model.apply(BatchNormalization(name=f"{tag}_bn2"), y)
    y = model.apply(Activation("relu", name=f"{tag}_relu2"), y)
    y = model.apply(
        Conv2D(GROWTH_RATE, 3, use_bias=False, padding="same",
               name=f"{tag}_conv2"),
        y,
    )
    return model.apply(Concatenate(name=f"{tag}_concat"), x, y)


def _transition(model: Model, x: Node, tag: str) -> Node:
    """BN-ReLU-Conv1x1 (0.5x channels) followed by 2x2 average pooling."""
    channels = x.output_shape[2]
    y = model.apply(BatchNormalization(name=f"{tag}_bn"), x)
    y = model.apply(Activation("relu", name=f"{tag}_relu"), y)
    y = model.apply(
        Conv2D(channels // 2, 1, use_bias=False, padding="valid",
               name=f"{tag}_conv"),
        y,
    )
    return model.apply(AveragePooling2D(2, strides=2, name=f"{tag}_pool"), y)


def densenet121(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """Build DenseNet-121 with the classifier head."""
    model = Model("DenseNet121", input_shape=tuple(input_shape))
    x = model.apply(ZeroPadding2D(3, name="stem_pad"), model.input)
    x = model.apply(
        Conv2D(64, 7, strides=2, padding="valid", use_bias=False,
               name="stem_conv"),
        x,
    )
    x = model.apply(BatchNormalization(name="stem_bn"), x)
    x = model.apply(Activation("relu", name="stem_relu"), x)
    x = model.apply(ZeroPadding2D(1, name="pool_pad"), x)
    x = model.apply(MaxPooling2D(3, strides=2, name="stem_pool"), x)

    for block_index, n_layers in enumerate(BLOCK_SIZES, start=1):
        for layer_index in range(1, n_layers + 1):
            x = _dense_layer(model, x, f"block{block_index}_layer{layer_index}")
        if block_index < len(BLOCK_SIZES):
            x = _transition(model, x, f"transition{block_index}")

    x = model.apply(BatchNormalization(name="final_bn"), x)
    x = model.apply(Activation("relu", name="final_relu"), x)
    x = model.apply(GlobalAveragePooling2D(name="avg_pool"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model
