"""Extended model zoo (beyond the paper's Table 2).

Deeper members of the same families, for design-space exploration on
larger workloads than the paper evaluates.  All builders reuse the
Table 2 families' block implementations and reproduce the published
Keras application-model parameter counts exactly
(``tests/test_zoo_extended.py``):

* ResNet-101 — 44,707,176 parameters
* ResNet-152 — 60,419,944 parameters
* DenseNet-169 — 14,307,880 parameters
* DenseNet-201 — 20,242,984 parameters
* VGG-19 — 143,667,240 parameters
"""

from __future__ import annotations

from ..layers import (
    Activation,
    BatchNormalization,
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePooling2D,
    MaxPooling2D,
    ZeroPadding2D,
)
from ..model import Model
from .densenet121 import _dense_layer, _transition
from .resnet50 import _bottleneck

ResNetStage = tuple[int, tuple[int, int, int], int]
"""(blocks, (f1, f2, f3), first-block stride)."""


def _resnet_family(name: str, stages: list[ResNetStage],
                   input_shape, classes: int) -> Model:
    """Generic bottleneck ResNet built from the ResNet-50 blocks."""
    model = Model(name, input_shape=tuple(input_shape))
    x = model.apply(ZeroPadding2D(3, name="conv1_pad"), model.input)
    x = model.apply(
        Conv2D(64, 7, strides=2, padding="valid", name="conv1"), x
    )
    x = model.apply(BatchNormalization(name="conv1_bn"), x)
    x = model.apply(Activation("relu", name="conv1_relu"), x)
    x = model.apply(ZeroPadding2D(1, name="pool1_pad"), x)
    x = model.apply(MaxPooling2D(3, strides=2, name="pool1"), x)
    for stage_index, (n_blocks, filters, first_stride) in enumerate(
        stages, start=2
    ):
        for block_index in range(n_blocks):
            x = _bottleneck(
                model, x, filters,
                stride=first_stride if block_index == 0 else 1,
                project=block_index == 0,
                tag=f"stage{stage_index}_block{block_index + 1}",
            )
    x = model.apply(GlobalAveragePooling2D(name="avg_pool"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model


def resnet101(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """ResNet-101: stages of (3, 4, 23, 3) bottleneck blocks."""
    return _resnet_family(
        "ResNet101",
        [
            (3, (64, 64, 256), 1),
            (4, (128, 128, 512), 2),
            (23, (256, 256, 1024), 2),
            (3, (512, 512, 2048), 2),
        ],
        input_shape, classes,
    )


def resnet152(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """ResNet-152: stages of (3, 8, 36, 3) bottleneck blocks."""
    return _resnet_family(
        "ResNet152",
        [
            (3, (64, 64, 256), 1),
            (8, (128, 128, 512), 2),
            (36, (256, 256, 1024), 2),
            (3, (512, 512, 2048), 2),
        ],
        input_shape, classes,
    )


def _densenet_family(name: str, blocks: tuple[int, ...],
                     input_shape, classes: int) -> Model:
    """Generic DenseNet built from the DenseNet-121 blocks."""
    model = Model(name, input_shape=tuple(input_shape))
    x = model.apply(ZeroPadding2D(3, name="stem_pad"), model.input)
    x = model.apply(
        Conv2D(64, 7, strides=2, padding="valid", use_bias=False,
               name="stem_conv"),
        x,
    )
    x = model.apply(BatchNormalization(name="stem_bn"), x)
    x = model.apply(Activation("relu", name="stem_relu"), x)
    x = model.apply(ZeroPadding2D(1, name="pool_pad"), x)
    x = model.apply(MaxPooling2D(3, strides=2, name="stem_pool"), x)
    for block_index, n_layers in enumerate(blocks, start=1):
        for layer_index in range(1, n_layers + 1):
            x = _dense_layer(
                model, x, f"block{block_index}_layer{layer_index}"
            )
        if block_index < len(blocks):
            x = _transition(model, x, f"transition{block_index}")
    x = model.apply(BatchNormalization(name="final_bn"), x)
    x = model.apply(Activation("relu", name="final_relu"), x)
    x = model.apply(GlobalAveragePooling2D(name="avg_pool"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model


def densenet169(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """DenseNet-169: dense blocks of (6, 12, 32, 32) layers."""
    return _densenet_family("DenseNet169", (6, 12, 32, 32),
                            input_shape, classes)


def densenet201(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """DenseNet-201: dense blocks of (6, 12, 48, 32) layers."""
    return _densenet_family("DenseNet201", (6, 12, 48, 32),
                            input_shape, classes)


def vgg19(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """VGG-19: blocks of (2, 2, 4, 4, 4) convolutions."""
    model = Model("VGG19", input_shape=tuple(input_shape))
    x = model.input
    for block_index, (n_convs, filters) in enumerate(
        [(2, 64), (2, 128), (4, 256), (4, 512), (4, 512)], start=1
    ):
        for conv_index in range(1, n_convs + 1):
            x = model.apply(
                Conv2D(filters, 3, padding="same",
                       name=f"block{block_index}_conv{conv_index}"),
                x,
            )
            x = model.apply(
                Activation("relu",
                           name=f"block{block_index}_relu{conv_index}"),
                x,
            )
        x = model.apply(
            MaxPooling2D(2, strides=2, name=f"block{block_index}_pool"), x
        )
    x = model.apply(Flatten(name="flatten"), x)
    x = model.apply(Dense(4096, name="fc1"), x)
    x = model.apply(Activation("relu", name="fc1_relu"), x)
    x = model.apply(Dense(4096, name="fc2"), x)
    x = model.apply(Activation("relu", name="fc2_relu"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model


EXTENDED_BUILDERS = {
    "ResNet101": resnet101,
    "ResNet152": resnet152,
    "DenseNet169": densenet169,
    "DenseNet201": densenet201,
    "VGG19": vgg19,
}
"""Extended-zoo builders keyed by model name."""

EXTENDED_PARAMS = {
    "ResNet101": 44_707_176,
    "ResNet152": 60_419_944,
    "DenseNet169": 14_307_880,
    "DenseNet201": 20_242_984,
    "VGG19": 143_667_240,
}
"""Published Keras parameter counts for the extended zoo."""
