"""ResNet-50 model description (Keras `keras.applications.ResNet50`).

53 CONV + 1 FC layers, 25,636,712 parameters (Table 2): a 7x7 stem, four
stages of bottleneck blocks (3, 4, 6, 3) with 1x1 projection shortcuts on
the first block of each stage, global average pooling and a 1000-way
classifier.
"""

from __future__ import annotations

from ..layers import (
    Activation,
    Add,
    BatchNormalization,
    Conv2D,
    Dense,
    GlobalAveragePooling2D,
    MaxPooling2D,
    ZeroPadding2D,
)
from ..model import Model
from ..model import Node

_STAGES = [
    (3, (64, 64, 256), 1),
    (4, (128, 128, 512), 2),
    (6, (256, 256, 1024), 2),
    (3, (512, 512, 2048), 2),
]
"""(blocks, (f1, f2, f3), first-block stride) per stage."""


def _bottleneck(
    model: Model,
    x: Node,
    filters: tuple[int, int, int],
    stride: int,
    project: bool,
    tag: str,
) -> Node:
    """One bottleneck residual block (conv or identity variant)."""
    f1, f2, f3 = filters
    shortcut = x
    if project:
        shortcut = model.apply(
            Conv2D(f3, 1, strides=stride, padding="valid", name=f"{tag}_sc_conv"),
            x,
        )
        shortcut = model.apply(
            BatchNormalization(name=f"{tag}_sc_bn"), shortcut
        )
    y = model.apply(
        Conv2D(f1, 1, strides=stride, padding="valid", name=f"{tag}_conv1"), x
    )
    y = model.apply(BatchNormalization(name=f"{tag}_bn1"), y)
    y = model.apply(Activation("relu", name=f"{tag}_relu1"), y)
    y = model.apply(Conv2D(f2, 3, padding="same", name=f"{tag}_conv2"), y)
    y = model.apply(BatchNormalization(name=f"{tag}_bn2"), y)
    y = model.apply(Activation("relu", name=f"{tag}_relu2"), y)
    y = model.apply(Conv2D(f3, 1, padding="valid", name=f"{tag}_conv3"), y)
    y = model.apply(BatchNormalization(name=f"{tag}_bn3"), y)
    y = model.apply(Add(name=f"{tag}_add"), y, shortcut)
    return model.apply(Activation("relu", name=f"{tag}_out"), y)


def resnet50(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """Build ResNet-50 with the classifier head."""
    model = Model("ResNet50", input_shape=tuple(input_shape))
    x = model.apply(ZeroPadding2D(3, name="conv1_pad"), model.input)
    x = model.apply(
        Conv2D(64, 7, strides=2, padding="valid", name="conv1"), x
    )
    x = model.apply(BatchNormalization(name="conv1_bn"), x)
    x = model.apply(Activation("relu", name="conv1_relu"), x)
    x = model.apply(ZeroPadding2D(1, name="pool1_pad"), x)
    x = model.apply(MaxPooling2D(3, strides=2, name="pool1"), x)

    for stage_index, (n_blocks, filters, first_stride) in enumerate(
        _STAGES, start=2
    ):
        for block_index in range(n_blocks):
            tag = f"stage{stage_index}_block{block_index + 1}"
            stride = first_stride if block_index == 0 else 1
            x = _bottleneck(
                model,
                x,
                filters,
                stride=stride,
                project=(block_index == 0),
                tag=tag,
            )

    x = model.apply(GlobalAveragePooling2D(name="avg_pool"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model
