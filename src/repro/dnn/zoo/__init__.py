"""Model zoo: the five DNNs of the paper's Table 2.

Each builder returns a :class:`repro.dnn.model.Model` whose layer census
and total parameter count match Table 2 exactly (verified in
``tests/test_zoo_table2.py``).
"""

from ..model import Model
from .densenet121 import densenet121
from .extended import (
    EXTENDED_BUILDERS,
    EXTENDED_PARAMS,
    densenet169,
    densenet201,
    resnet101,
    resnet152,
    vgg19,
)
from .lenet5 import lenet5
from .mobilenetv2 import mobilenetv2
from .resnet50 import resnet50
from .transformer import (
    TRANSFORMER_BUILDERS,
    TRANSFORMER_PARAMS,
    transformer_base,
    transformer_small,
    transformer_tiny,
)
from .vgg16 import vgg16

MODEL_BUILDERS = {
    "LeNet5": lenet5,
    "ResNet50": resnet50,
    "DenseNet121": densenet121,
    "VGG16": vgg16,
    "MobileNetV2": mobilenetv2,
}
"""Builders keyed by the names Table 2 uses."""

TABLE2_PARAMS = {
    "LeNet5": 62_006,
    "ResNet50": 25_636_712,
    "DenseNet121": 8_062_504,
    "VGG16": 138_357_544,
    "MobileNetV2": 3_538_984,
}
"""Parameter counts as printed in Table 2."""

TABLE2_LAYERS = {
    "LeNet5": (3, 2),
    "ResNet50": (53, 1),
    "DenseNet121": (120, 1),
    "VGG16": (13, 3),
    "MobileNetV2": (52, 1),
}
"""(CONV layers, FC layers) as printed in Table 2."""


def build(name: str) -> Model:
    """Build a zoo model by name (Table 2, extended, or transformer)."""
    if name in MODEL_BUILDERS:
        return MODEL_BUILDERS[name]()
    if name in TRANSFORMER_BUILDERS:
        return TRANSFORMER_BUILDERS[name]()
    return EXTENDED_BUILDERS[name]()


def all_models() -> list[Model]:
    """Build every Table 2 model, in Table 2 order."""
    return [builder() for builder in MODEL_BUILDERS.values()]


__all__ = [
    "MODEL_BUILDERS",
    "EXTENDED_BUILDERS",
    "EXTENDED_PARAMS",
    "TRANSFORMER_BUILDERS",
    "TRANSFORMER_PARAMS",
    "transformer_tiny",
    "transformer_small",
    "transformer_base",
    "resnet101",
    "resnet152",
    "densenet169",
    "densenet201",
    "vgg19",
    "TABLE2_PARAMS",
    "TABLE2_LAYERS",
    "build",
    "all_models",
    "lenet5",
    "resnet50",
    "densenet121",
    "vgg16",
    "mobilenetv2",
]
