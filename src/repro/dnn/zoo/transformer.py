"""Transformer zoo: small decoder-style models for serving studies.

Three pre-norm transformer encoders sized to bracket the CNN zoo
(sub-million to ~19M parameters), built at a fixed context length that
doubles as the representative KV span for decode-step costing.  The
layer census is the standard block: LayerNormalization ->
MultiHeadAttention -> residual Add, LayerNormalization ->
TransformerMLP -> residual Add.

These are serving workloads, not Table 2 reproductions — parameter
counts are pinned in ``TRANSFORMER_PARAMS`` and guarded by tests the
same way the CNN zoo pins Table 2.
"""

from __future__ import annotations

from ..layers import Add, LayerNormalization, MultiHeadAttention, TransformerMLP
from ..model import Model


def _transformer(name: str, d_model: int, num_heads: int, d_ff: int,
                 blocks: int, context: int) -> Model:
    model = Model(name, input_shape=(context, d_model))
    x = model.input
    for index in range(blocks):
        normed = model.apply(
            LayerNormalization(name=f"block{index}_ln1"), x
        )
        attended = model.apply(
            MultiHeadAttention(num_heads, name=f"block{index}_attn"), normed
        )
        x = model.apply(Add(name=f"block{index}_res1"), x, attended)
        normed = model.apply(
            LayerNormalization(name=f"block{index}_ln2"), x
        )
        expanded = model.apply(
            TransformerMLP(d_ff, name=f"block{index}_mlp"), normed
        )
        x = model.apply(Add(name=f"block{index}_res2"), x, expanded)
    return model


def transformer_tiny() -> Model:
    """2 blocks of d_model=128 at context 64 (~0.4M params)."""
    return _transformer("TransformerTiny", d_model=128, num_heads=4,
                        d_ff=512, blocks=2, context=64)


def transformer_small() -> Model:
    """4 blocks of d_model=256 at context 128 (~3.2M params)."""
    return _transformer("TransformerSmall", d_model=256, num_heads=8,
                        d_ff=1024, blocks=4, context=128)


def transformer_base() -> Model:
    """6 blocks of d_model=512 at context 128 (~19M params)."""
    return _transformer("TransformerBase", d_model=512, num_heads=8,
                        d_ff=2048, blocks=6, context=128)


TRANSFORMER_BUILDERS = {
    "TransformerTiny": transformer_tiny,
    "TransformerSmall": transformer_small,
    "TransformerBase": transformer_base,
}
"""Builders keyed by registry name; membership marks a model as a
sequence (autoregressive) workload for spec validation."""

TRANSFORMER_PARAMS = {
    "TransformerTiny": 396_544,
    "TransformerSmall": 3_159_040,
    "TransformerBase": 18_914_304,
}
"""Pinned parameter counts (guarded by tests)."""
