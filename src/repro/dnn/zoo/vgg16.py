"""VGG-16 model description (Keras `keras.applications.VGG16` structure).

13 CONV + 3 FC layers, 138,357,544 parameters (Table 2).
"""

from __future__ import annotations

from ..layers import Activation, Conv2D, Dense, Flatten, MaxPooling2D
from ..model import Model

_BLOCKS = [
    (2, 64),
    (2, 128),
    (3, 256),
    (3, 512),
    (3, 512),
]
"""(conv layers, filters) per VGG block."""


def vgg16(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """Build VGG-16 with the classifier head."""
    model = Model("VGG16", input_shape=tuple(input_shape))
    x = model.input
    for block_index, (n_convs, filters) in enumerate(_BLOCKS, start=1):
        for conv_index in range(1, n_convs + 1):
            x = model.apply(
                Conv2D(
                    filters,
                    3,
                    padding="same",
                    name=f"block{block_index}_conv{conv_index}",
                ),
                x,
            )
            x = model.apply(
                Activation("relu", name=f"block{block_index}_relu{conv_index}"),
                x,
            )
        x = model.apply(
            MaxPooling2D(2, strides=2, name=f"block{block_index}_pool"), x
        )
    x = model.apply(Flatten(name="flatten"), x)
    x = model.apply(Dense(4096, name="fc1"), x)
    x = model.apply(Activation("relu", name="fc1_relu"), x)
    x = model.apply(Dense(4096, name="fc2"), x)
    x = model.apply(Activation("relu", name="fc2_relu"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model
