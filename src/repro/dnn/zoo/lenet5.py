"""LeNet-5 model description.

The paper's Table 2 lists LeNet5 with 3 CONV layers, 2 FC layers and
62,006 parameters.  The canonical grayscale LeNet-5 has 61,706 parameters;
the Table 2 count corresponds exactly to the common CIFAR-style variant
with a 32x32x3 (RGB) input, which adds 300 parameters in C1
(5*5*3*6+6 = 456 instead of 5*5*1*6+6 = 156).  We build that variant.
"""

from __future__ import annotations

from ..layers import (
    Activation,
    AveragePooling2D,
    Conv2D,
    Dense,
    Flatten,
)
from ..model import Model


def lenet5(input_shape=(32, 32, 3), classes: int = 10) -> Model:
    """Build LeNet-5 (C1-S2-C3-S4-C5-F6-output).

    C5 is implemented as its conv form (120 filters of 5x5 over the 5x5x16
    map), matching Table 2's "3 CONV + 2 FC" structure.
    """
    model = Model("LeNet5", input_shape=tuple(input_shape))
    x = model.apply(Conv2D(6, 5, padding="valid", name="c1"), model.input)
    x = model.apply(Activation("tanh", name="c1_act"), x)
    x = model.apply(AveragePooling2D(2, name="s2"), x)
    x = model.apply(Conv2D(16, 5, padding="valid", name="c3"), x)
    x = model.apply(Activation("tanh", name="c3_act"), x)
    x = model.apply(AveragePooling2D(2, name="s4"), x)
    x = model.apply(Conv2D(120, 5, padding="valid", name="c5"), x)
    x = model.apply(Activation("tanh", name="c5_act"), x)
    x = model.apply(Flatten(name="flatten"), x)
    x = model.apply(Dense(84, name="f6"), x)
    x = model.apply(Activation("tanh", name="f6_act"), x)
    x = model.apply(Dense(classes, name="output"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model
