"""MobileNetV2 model description (Keras `keras.applications.MobileNetV2`).

52 CONV + 1 FC layers, 3,538,984 parameters (Table 2): a strided 3x3
stem, 17 inverted-residual bottlenecks (first with expansion 1, the rest
with expansion 6), a 1x1 feature conv to 1280 channels, and the
classifier.  Depthwise convolutions count as CONV layers, matching the
Table 2 layer census.
"""

from __future__ import annotations

from ..layers import (
    Activation,
    Add,
    BatchNormalization,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAveragePooling2D,
    ZeroPadding2D,
)
from ..model import Model, Node

_BOTTLENECKS = [
    # (expansion, out_channels, stride)
    (6, 24, 2),
    (6, 24, 1),
    (6, 32, 2),
    (6, 32, 1),
    (6, 32, 1),
    (6, 64, 2),
    (6, 64, 1),
    (6, 64, 1),
    (6, 64, 1),
    (6, 96, 1),
    (6, 96, 1),
    (6, 96, 1),
    (6, 160, 2),
    (6, 160, 1),
    (6, 160, 1),
    (6, 320, 1),
]


def _inverted_residual(
    model: Model,
    x: Node,
    expansion: int,
    out_channels: int,
    stride: int,
    tag: str,
) -> Node:
    """One MobileNetV2 inverted-residual bottleneck."""
    in_channels = x.output_shape[2]
    y = x
    if expansion != 1:
        y = model.apply(
            Conv2D(expansion * in_channels, 1, use_bias=False,
                   padding="valid", name=f"{tag}_expand"),
            y,
        )
        y = model.apply(BatchNormalization(name=f"{tag}_expand_bn"), y)
        y = model.apply(Activation("relu6", name=f"{tag}_expand_relu"), y)
    if stride == 2:
        y = model.apply(
            ZeroPadding2D(((0, 1), (0, 1)), name=f"{tag}_pad"), y
        )
        y = model.apply(
            DepthwiseConv2D(3, strides=2, padding="valid", use_bias=False,
                            name=f"{tag}_depthwise"),
            y,
        )
    else:
        y = model.apply(
            DepthwiseConv2D(3, padding="same", use_bias=False,
                            name=f"{tag}_depthwise"),
            y,
        )
    y = model.apply(BatchNormalization(name=f"{tag}_depthwise_bn"), y)
    y = model.apply(Activation("relu6", name=f"{tag}_depthwise_relu"), y)
    y = model.apply(
        Conv2D(out_channels, 1, use_bias=False, padding="valid",
               name=f"{tag}_project"),
        y,
    )
    y = model.apply(BatchNormalization(name=f"{tag}_project_bn"), y)
    if stride == 1 and in_channels == out_channels:
        y = model.apply(Add(name=f"{tag}_add"), x, y)
    return y


def mobilenetv2(input_shape=(224, 224, 3), classes: int = 1000) -> Model:
    """Build MobileNetV2 (alpha = 1.0) with the classifier head."""
    model = Model("MobileNetV2", input_shape=tuple(input_shape))
    x = model.apply(
        ZeroPadding2D(((0, 1), (0, 1)), name="conv1_pad"), model.input
    )
    x = model.apply(
        Conv2D(32, 3, strides=2, padding="valid", use_bias=False,
               name="conv1"),
        x,
    )
    x = model.apply(BatchNormalization(name="conv1_bn"), x)
    x = model.apply(Activation("relu6", name="conv1_relu"), x)

    # First bottleneck: expansion factor 1, 16 output channels, stride 1.
    x = _inverted_residual(model, x, expansion=1, out_channels=16, stride=1,
                           tag="block0")
    for index, (expansion, out_channels, stride) in enumerate(
        _BOTTLENECKS, start=1
    ):
        x = _inverted_residual(
            model, x, expansion, out_channels, stride, tag=f"block{index}"
        )

    x = model.apply(
        Conv2D(1280, 1, use_bias=False, padding="valid", name="conv_last"), x
    )
    x = model.apply(BatchNormalization(name="conv_last_bn"), x)
    x = model.apply(Activation("relu6", name="conv_last_relu"), x)
    x = model.apply(GlobalAveragePooling2D(name="avg_pool"), x)
    x = model.apply(Dense(classes, name="predictions"), x)
    model.apply(Activation("softmax", name="softmax"), x)
    return model
