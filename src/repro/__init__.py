"""repro: reproduction of "Machine Learning Accelerators in 2.5D Chiplet
Platforms with Silicon Photonics" (DATE 2023).

Public API highlights:

* :mod:`repro.dnn` — DNN model descriptions and the Table 2 zoo.
* :mod:`repro.photonics` — silicon-photonic device models.
* :mod:`repro.core` — the accelerator platforms (monolithic CrossLight,
  2.5D electrical, 2.5D photonic with ReSiPI).
* :mod:`repro.experiments` — regenerators for every table and figure.
* :mod:`repro.studies` — the declarative scenario API: serializable
  study specs, plugin registries and the ``run_study`` compiler.
"""

from .config import DEFAULT_PLATFORM, PlatformConfig
from .core import (
    CrossLight25DElec,
    CrossLight25DSiPh,
    InferenceResult,
    MonolithicCrossLight,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_PLATFORM",
    "PlatformConfig",
    "CrossLight25DElec",
    "CrossLight25DSiPh",
    "MonolithicCrossLight",
    "InferenceResult",
    "__version__",
]
