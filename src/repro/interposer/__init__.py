"""Interposer networks: floorplan, photonic fabric, electrical mesh."""

from .base import DEFAULT_CHUNK_BITS, InterposerFabric, NetworkEnergyReport
from .topology import ChipletSite, Floorplan, build_floorplan

__all__ = [
    "DEFAULT_CHUNK_BITS",
    "InterposerFabric",
    "NetworkEnergyReport",
    "ChipletSite",
    "Floorplan",
    "build_floorplan",
]
