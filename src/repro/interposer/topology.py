"""Interposer floorplan: chiplet identities, placement and distances.

Both interposer networks share one floorplan: chiplets on a regular grid
(3x3 for the Table 1 platform: 8 compute + 1 memory), the memory chiplet
at the grid center to minimise its average distance.  The photonic
network uses the floorplan for waveguide lengths (propagation delay and
loss); the electrical mesh uses it for hop counts and wire delays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import PlatformConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ChipletSite:
    """One placed chiplet."""

    chiplet_id: str
    kind: str
    grid_x: int
    grid_y: int
    is_memory: bool = False


@dataclass(frozen=True)
class Floorplan:
    """Grid placement of every chiplet on the interposer."""

    sites: tuple[ChipletSite, ...]
    pitch_mm: float
    grid_width: int
    grid_height: int

    def site(self, chiplet_id: str) -> ChipletSite:
        """Look up a chiplet by id."""
        for candidate in self.sites:
            if candidate.chiplet_id == chiplet_id:
                return candidate
        raise ConfigurationError(f"unknown chiplet {chiplet_id!r}")

    @property
    def memory_sites(self) -> tuple[ChipletSite, ...]:
        return tuple(site for site in self.sites if site.is_memory)

    @property
    def compute_sites(self) -> tuple[ChipletSite, ...]:
        return tuple(site for site in self.sites if not site.is_memory)

    def manhattan_hops(self, src: str, dst: str) -> int:
        """Mesh hop count between two chiplets (XY routing)."""
        a, b = self.site(src), self.site(dst)
        return abs(a.grid_x - b.grid_x) + abs(a.grid_y - b.grid_y)

    def manhattan_distance_mm(self, src: str, dst: str) -> float:
        """Physical Manhattan wire distance between two chiplets (mm)."""
        return self.manhattan_hops(src, dst) * self.pitch_mm

    def waveguide_length_m(self, src: str, dst: str) -> float:
        """Routed waveguide length between two chiplet gateways (m).

        Photonic interposer waveguides are routed Manhattan with a small
        detour factor for the routing channels.
        """
        detour = 1.2
        return self.manhattan_distance_mm(src, dst) * 1e-3 * detour

    def broadcast_waveguide_length_m(self, src: str) -> float:
        """Length of an SWMR waveguide visiting every compute chiplet (m).

        A broadcast waveguide snakes from the source past every compute
        site; its length is bounded by the full grid serpentine.
        """
        serpentine_mm = self.pitch_mm * (self.grid_width * self.grid_height)
        return serpentine_mm * 1e-3 * 1.2

    @property
    def xy_path_cache_key(self) -> tuple[int, int]:
        return (self.grid_width, self.grid_height)


def build_floorplan(config: PlatformConfig) -> Floorplan:
    """Place the Table 1 chiplets on the smallest near-square grid.

    Compute chiplets are laid out around the memory chiplet, which takes
    the most central slot.  Chiplet ids follow their MAC group:
    ``3x3 conv-0``, ``dense100-1``, ... and ``mem-0``.
    """
    n_total = config.n_chiplets
    grid_w = math.ceil(math.sqrt(n_total))
    grid_h = math.ceil(n_total / grid_w)

    # All grid slots, sorted by centrality (closest to center first).
    center_x = (grid_w - 1) / 2.0
    center_y = (grid_h - 1) / 2.0
    slots = sorted(
        ((x, y) for y in range(grid_h) for x in range(grid_w)),
        key=lambda xy: (abs(xy[0] - center_x) + abs(xy[1] - center_y),
                        xy[1], xy[0]),
    )

    sites: list[ChipletSite] = []
    slot_iter = iter(slots)
    for memory_index in range(config.n_memory_chiplets):
        x, y = next(slot_iter)
        sites.append(
            ChipletSite(f"mem-{memory_index}", "memory", x, y, is_memory=True)
        )
    for group in config.mac_groups:
        for chiplet_index in range(group.n_chiplets):
            x, y = next(slot_iter)
            sites.append(
                ChipletSite(
                    f"{group.kind}-{chiplet_index}", group.kind, x, y
                )
            )
    return Floorplan(
        sites=tuple(sites),
        pitch_mm=config.chiplet_pitch_mm,
        grid_width=grid_w,
        grid_height=grid_h,
    )
