"""Link-budget construction for interposer photonic paths.

Builds the loss chains for the two channel types of the fabric
(Section V / Fig. 6):

* **SWMR read channels**: a memory-chiplet writer gateway modulates onto
  a waveguide that snakes past every compute chiplet's reader MRG.
* **SWSR write channels**: each compute writer gateway owns a dedicated
  waveguide to one filter row of the memory MRG.

Interposer-scale waveguides are assumed to be lower-loss than on-die
strip waveguides (0.5 dB/cm vs 1 dB/cm); see DESIGN.md calibration notes.
"""

from __future__ import annotations

import math

from ...config import PlatformConfig
from ...photonics import constants as ph
from ...photonics.link_budget import LinkBudget
from ..topology import Floorplan

INTERPOSER_WAVEGUIDE_LOSS_DB_PER_CM = 0.5
"""Propagation loss of interposer routing waveguides (dB/cm)."""


def _common_front_end(budget: LinkBudget) -> LinkBudget:
    """Laser coupling and gateway-activation losses shared by all paths."""
    budget.add("fiber_coupler", ph.GRATING_COUPLER_LOSS_DB)
    budget.add("pcmc", ph.PCMC_INSERTION_LOSS_DB)
    budget.add("modulator_insertion", ph.MR_MODULATION_INSERTION_LOSS_DB)
    return budget


def swmr_read_budget(
    config: PlatformConfig,
    floorplan: Floorplan,
    multicast_degree: int = 1,
) -> LinkBudget:
    """Worst-case budget of a memory->compute SWMR broadcast channel.

    ``multicast_degree`` > 1 models true multicast: each reader taps only
    a fraction of the carrier, so the budget grows by the split factor.
    """
    budget = LinkBudget()
    _common_front_end(budget)
    # Carrier passes the other modulator rings of its own gateway row.
    budget.add(
        "writer_row_passby", ph.MR_THROUGH_LOSS_DB,
        count=max(0, config.n_wavelengths - 1),
    )
    length_m = floorplan.broadcast_waveguide_length_m("mem-0")
    budget.add(
        "waveguide", INTERPOSER_WAVEGUIDE_LOSS_DB_PER_CM * length_m * 100.0
    )
    # Worst-case reader: passes every other compute chiplet's filter row
    # first (one near-resonance ring each).
    budget.add(
        "reader_rows_passby", ph.MR_THROUGH_LOSS_DB,
        count=max(0, len(floorplan.compute_sites) - 1),
    )
    if multicast_degree > 1:
        budget.add("multicast_split", 10.0 * math.log10(multicast_degree))
    budget.add("filter_drop", ph.MR_DROP_LOSS_DB)
    return budget


def swsr_write_budget(
    config: PlatformConfig,
    floorplan: Floorplan,
    chiplet_id: str,
) -> LinkBudget:
    """Budget of a compute->memory SWSR point-to-point channel."""
    budget = LinkBudget()
    _common_front_end(budget)
    budget.add(
        "writer_row_passby", ph.MR_THROUGH_LOSS_DB,
        count=max(0, config.n_wavelengths - 1),
    )
    length_m = floorplan.waveguide_length_m(chiplet_id, "mem-0")
    budget.add(
        "waveguide", INTERPOSER_WAVEGUIDE_LOSS_DB_PER_CM * length_m * 100.0
    )
    budget.add("filter_drop", ph.MR_DROP_LOSS_DB)
    return budget


def worst_case_write_budget(
    config: PlatformConfig, floorplan: Floorplan
) -> LinkBudget:
    """The SWSR budget of the compute chiplet farthest from memory."""
    worst = None
    for site in floorplan.compute_sites:
        budget = swsr_write_budget(config, floorplan, site.chiplet_id)
        if worst is None or budget.total_loss_db > worst.total_loss_db:
            worst = budget
    if worst is None:
        raise ValueError("floorplan has no compute sites")
    return worst
